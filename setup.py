"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so PEP
660 editable installs (which require building a wheel) fail.  This shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
