"""Microbenchmarks of the library's hot kernels (wall-clock, via
pytest-benchmark's normal statistics, unlike the single-shot table benches).

These do not correspond to a paper table; they keep the Python
implementations honest (vectorized, no quadratic surprises) as the library
evolves.
"""

import numpy as np
import pytest

from repro.layouts import blocked_layout, smart_layout, smart_schedule
from repro.localsort import (
    batched_bitonic_merge,
    merge_sorted,
    p_way_merge,
    radix_sort,
    sort_bitonic,
)
from repro.network.sequential import bitonic_sort_network
from repro.remap.plan import build_remap_plan

N_KERNEL = 1 << 16


@pytest.fixture(scope="module")
def keys():
    return np.random.default_rng(0).integers(0, 1 << 31, N_KERNEL, dtype=np.uint32)


@pytest.fixture(scope="module")
def bitonic_seq(keys):
    half = np.sort(keys[: N_KERNEL // 2])
    return np.concatenate([half, np.sort(keys[N_KERNEL // 2:])[::-1]])


def test_radix_sort_kernel(benchmark, keys):
    out = benchmark(radix_sort, keys)
    assert out[0] <= out[-1]


def test_sort_bitonic_kernel(benchmark, bitonic_seq):
    out = benchmark(sort_bitonic, bitonic_seq)
    assert out[0] <= out[-1]


def test_numpy_sort_reference(benchmark, keys):
    """np.sort on the same data, as a floor for the kernels above."""
    benchmark(np.sort, keys)


def test_batched_bitonic_merge_kernel(benchmark, bitonic_seq):
    m = bitonic_seq.reshape(64, -1)
    # Each row of the reshaped bitonic sequence is itself bitonic.
    benchmark(batched_bitonic_merge, m, True, 1)


def test_merge_sorted_kernel(benchmark, keys):
    x = np.sort(keys[: N_KERNEL // 2])
    y = np.sort(keys[N_KERNEL // 2:])
    out = benchmark(merge_sorted, x, y)
    assert out.size == N_KERNEL


def test_p_way_merge_kernel(benchmark, keys):
    runs = [np.sort(chunk) for chunk in np.split(keys, 16)]
    out = benchmark(p_way_merge, runs)
    assert out.size == N_KERNEL


def test_remap_plan_kernel(benchmark):
    old = blocked_layout(1 << 20, 16)
    new = smart_layout(1 << 20, 16, 17, 17)
    plan = benchmark(build_remap_plan, old, new, 3)
    assert plan.elements_sent > 0


def test_schedule_construction_kernel(benchmark):
    sched = benchmark(smart_schedule, 1 << 22, 64)
    assert sched.num_remaps >= 7


def test_sequential_network_kernel(benchmark, keys):
    small = keys[: 1 << 12]
    out = benchmark(bitonic_sort_network, small)
    assert out[0] <= out[-1]
