"""Figure 5.8: bitonic vs radix vs sample sort on 32 processors.

Shape claims reproduced: bitonic still beats radix for smaller
keys/processor, but the gap narrows as n grows — the paper's crossover sits
between 256K and 1M keys/processor, beyond the scaled default sweep (run
with ``REPRO_FULL=1`` to see it; EXPERIMENTS.md records the full-size run).
Sample sort wins at every size.
"""

import os

from conftest import report, run_once

from repro.harness.experiments import figure5_8


def test_figure5_8_thirtytwo_procs(benchmark, sizes):
    result = run_once(benchmark, figure5_8, sizes=sizes)
    report(result)
    rows = list(result.rows.items())
    # Small-n side: bitonic beats radix.
    first_size, (bitonic0, radix0, sample0) = rows[0]
    assert bitonic0 < radix0, f"bitonic must beat radix at {first_size}K on P=32"
    for size, (bitonic, radix, sample) in rows:
        assert sample < bitonic, f"sample sort wins overall at {size}K"
    # The bitonic-vs-radix margin must shrink with n (the crossover trend).
    margins = [radix / bitonic for _, (bitonic, radix, _) in rows]
    assert margins[-1] < margins[0], (
        f"radix must close on bitonic as n grows: margins {margins}"
    )
    if os.environ.get("REPRO_FULL", "") not in ("", "0"):
        # At the paper's largest size the crossover has happened (or is at
        # parity): radix is no longer clearly slower.
        _, (bitonic_last, radix_last, _) = rows[-1]
        assert radix_last < bitonic_last * 1.10
