"""Table 5.3 / Figure 5.5: communication time per key for the short- vs
long-message versions of the smart bitonic sort on 16 processors.

Shape claim reproduced: long messages are roughly an order of magnitude
faster (the paper measures ~12x on the Meiko CS-2's DMA engine).
"""

from conftest import report, run_once

from repro.harness.experiments import table5_3


def test_table5_3_short_vs_long(benchmark, sizes):
    result = run_once(benchmark, table5_3, sizes=sizes, P=16)
    report(result)
    for size, (short, long_) in result.rows.items():
        ratio = short / long_
        assert ratio > 8, (
            f"long messages must be ~an order of magnitude faster; "
            f"got {ratio:.1f}x at {size}K"
        )
        assert short > 10, "short-message comm should be >10 us/key (paper: ~13)"
