"""Shared helpers for the reproduction benchmarks.

Every module here regenerates one table or figure of the paper (see
DESIGN.md §4).  Each bench

* runs the corresponding harness experiment once under ``pytest-benchmark``
  (timing the simulated run end to end),
* asserts the *shape* claims the paper makes about that table/figure, and
* prints the paper-vs-measured rows so ``pytest benchmarks/
  --benchmark-only -s`` doubles as the reproduction report.

Default workloads are scaled down (keys/processor in the single-digit K
range); set ``REPRO_FULL=1`` to run at the paper's 128K–1M keys/processor
(minutes per table).
"""

from __future__ import annotations

import os

import pytest

#: Scaled-down sweep used by default (keys/proc in K).
BENCH_SIZES = (4, 8, 16)
FULL_SIZES = (128, 256, 512, 1024)


def bench_sizes() -> tuple:
    return FULL_SIZES if os.environ.get("REPRO_FULL", "") not in ("", "0") else BENCH_SIZES


@pytest.fixture
def sizes():
    return bench_sizes()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments execute full parallel sorts; a single round keeps the
    suite fast while still producing a timing row per table/figure.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result) -> None:
    """Print a paper-vs-measured table regardless of capture settings."""
    from repro.harness.report import format_result

    print()
    print(format_result(result))
