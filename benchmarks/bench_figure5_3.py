"""Figure 5.3: total sorting time and speedup for a fixed problem size as
the machine grows from 2 to 32 processors.

Shape claims reproduced: time falls monotonically with P; speedup grows
with P but sub-linearly (communication takes a growing share).
"""

from conftest import report, run_once

from repro.harness.experiments import figure5_3


def test_figure5_3_scaling(benchmark):
    result = run_once(benchmark, figure5_3, total_keys_k=128)
    report(result)
    secs = result.column("total seconds")
    assert secs == sorted(secs, reverse=True), "time must fall as P grows"
    speedups = result.column("speedup vs 1 proc (est)")
    assert speedups == sorted(speedups), "speedup must grow with P"
    procs = list(result.rows)
    # Sub-linear: speedup at 32 procs clearly below the ideal 32.
    assert speedups[-1] < procs[-1]
