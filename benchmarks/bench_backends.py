"""Benchmarks of the SPMD runtime backends (wall-clock, pytest-benchmark).

The threads and procs backends run the identical
:func:`~repro.runtime.spmd_bitonic_sort` program; these benches time them
against each other and against the collectives they are built on.  On a
single-core host the procs backend chiefly measures its launch and
shared-memory overhead; its speedup claims apply to >= 4 usable cores
(see docs/PERFORMANCE.md).  ``repro-bitonic bench`` is the reporting
counterpart that persists a trajectory JSON.
"""

import numpy as np
import pytest

from repro.runtime import run_spmd, spmd_bitonic_sort
from repro.utils.rng import make_keys

N_SORT = 1 << 16
P = 4


@pytest.fixture(scope="module")
def keys():
    return make_keys(N_SORT, seed=7)


def _sort_world(keys, backend):
    n = keys.size // P

    def prog(c):
        return spmd_bitonic_sort(c, keys[c.rank * n : (c.rank + 1) * n])

    return np.concatenate(run_spmd(P, prog, backend=backend))


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_spmd_sort_backend(benchmark, keys, backend):
    out = benchmark.pedantic(
        _sort_world, args=(keys, backend), rounds=3, iterations=1, warmup_rounds=1
    )
    np.testing.assert_array_equal(out, np.sort(keys))


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_alltoallv_collective(benchmark, backend):
    """The raw collective: every rank scatters 64K keys to every peer."""
    bucket = np.arange(1 << 16, dtype=np.uint32)

    def world():
        def prog(c):
            got = c.alltoallv([bucket for _ in range(c.size)])
            return sum(int(x[0]) for x in got)

        return run_spmd(P, prog, backend=backend)

    out = benchmark.pedantic(world, rounds=3, iterations=1, warmup_rounds=1)
    assert out == [0] * P


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_world_launch_overhead(benchmark, backend):
    """Spin up a world that does nothing: the backend's fixed cost."""
    out = benchmark.pedantic(
        run_spmd,
        args=(P, lambda c: c.rank),
        kwargs={"backend": backend},
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert out == list(range(P))
