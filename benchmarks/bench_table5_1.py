"""Table 5.1 / Figure 5.2: execution time per key of the three bitonic sort
implementations (Blocked-Merge, Cyclic-Blocked, Smart) on 32 processors.

Shape claims reproduced: Smart < Cyclic-Blocked < Blocked-Merge at every
size; Blocked-Merge roughly 2-3x Smart; Cyclic-Blocked in between.
"""

from conftest import report, run_once

from repro.harness.experiments import table5_1


def test_table5_1_us_per_key(benchmark, sizes):
    result = run_once(benchmark, table5_1, sizes=sizes, P=32)
    report(result)
    for size, (bm, cb, smart) in result.rows.items():
        assert smart < cb, f"Smart must beat Cyclic-Blocked at {size}K"
        assert cb < bm, f"Cyclic-Blocked must beat Blocked-Merge at {size}K"
        assert 1.5 < bm / smart < 4.0, (
            f"Blocked-Merge/Smart ratio {bm / smart:.2f} out of the paper's "
            f"regime at {size}K"
        )
