"""§3.2.1 / §3.4: the three communication metrics (remaps R, volume V,
messages M) — closed forms vs the simulator's exact counts.

Reproduced claims: theory matches measurement exactly for all three
strategies; smart is optimal on R and V (Theorem 1, §3.4.2); blocked sends
the fewest messages (§3.4.3).
"""

from conftest import report, run_once

from repro.harness.experiments import comm_counts


def test_comm_counts_theory_vs_measured(benchmark):
    result = run_once(benchmark, comm_counts, sizes=(4,), P=16)
    report(result)
    rows = result.rows
    for strategy, (r_t, r_m, v_t, v_m, m_t, m_m) in rows.items():
        assert (r_t, v_t, m_t) == (r_m, v_m, m_m), f"{strategy}: theory != measured"
    assert rows["smart"][0] <= rows["cyclic-blocked"][0] <= rows["blocked"][0]
    assert rows["smart"][2] <= rows["cyclic-blocked"][2] < rows["blocked"][2]
    assert rows["blocked"][4] <= rows["smart"][4] <= rows["cyclic-blocked"][4]
