"""Figure 5.4: breakdown of the smart bitonic sort into communication and
computation phases on 16 processors.

Shape claim reproduced: as keys/processor grows, the computation share of
the total time grows (per-remap communication overheads amortize away and,
at full sizes, cache misses inflate the local phases), and the
communication share correspondingly shrinks.
"""

from conftest import report, run_once

from repro.harness.experiments import figure5_4


def test_figure5_4_breakdown(benchmark, sizes):
    result = run_once(benchmark, figure5_4, sizes=sizes, P=16)
    report(result)
    comp_pct = result.column("comp %")
    comm_pct = result.column("comm %")
    assert comp_pct == sorted(comp_pct), "computation share grows with n"
    assert comm_pct == sorted(comm_pct, reverse=True)
    for c, m in zip(comp_pct, comm_pct):
        assert abs(c + m - 100.0) < 0.5
