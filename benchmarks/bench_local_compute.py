"""Chapter 4 ablation: what each local-computation optimization buys.

Four smart-sort variants are compared: merge-based computation with fused
pack/unpack (the paper's "Smart"), merge-based unfused, simulated
compare-exchange with fused pack, and simulated unfused (closest to a
naive remap-based implementation).

Reproduced claims: merge-based computation beats step simulation (Lemma 9:
linear vs O(n lg n) per phase), fusing pack/unpack into the sorts removes
most of the remaining communication overhead (§4.3), and the fully
optimized variant is the fastest.
"""

from conftest import report, run_once

from repro.harness.experiments import local_compute_ablation


def test_local_compute_ablation(benchmark):
    result = run_once(benchmark, local_compute_ablation, sizes=(8,), P=16)
    report(result)
    totals = {k: v[0] for k, v in result.rows.items()}
    comp = {k: v[1] for k, v in result.rows.items()}
    assert totals["merge+fused (Smart)"] == min(totals.values())
    assert comp["merge+fused (Smart)"] < comp["simulate+fused"]
    assert totals["merge, unfused"] < totals["simulate, unfused"]
