"""Figure 5.7: bitonic vs radix vs sample sort on 16 processors.

Shape claims reproduced: on 16 processors our bitonic sort beats parallel
radix sort at every size in the sweep, while sample sort remains the
overall winner (§5.5).
"""

from conftest import report, run_once

from repro.harness.experiments import figure5_7


def test_figure5_7_sixteen_procs(benchmark, sizes):
    result = run_once(benchmark, figure5_7, sizes=sizes)
    report(result)
    for size, (bitonic, radix, sample) in result.rows.items():
        assert bitonic < radix, f"bitonic must beat radix on P=16 at {size}K"
        assert sample < bitonic, f"sample sort wins overall at {size}K"
