"""Chapter 6 comparison: column sort [Lei85] vs the smart bitonic sort.

The paper positions column sort as bitonic sort's closest structural
relative (4 sorts + 4 redistributions, two of them the blocked↔cyclic
remaps) with a stricter applicability bound.  Reproduced claims: column
sort runs correctly wherever ``r >= 2(s-1)**2``, performs exactly 4
communication steps, and its 4+ full local sorts make it computation-
heavier than the merge-based smart bitonic sort at these sizes.
"""

from conftest import report, run_once

from repro.harness.experiments import column_sort_comparison


def test_column_sort_comparison(benchmark, sizes):
    result = run_once(benchmark, column_sort_comparison, sizes=sizes, P=8)
    report(result)
    for size, (column, bitonic, sample) in result.rows.items():
        assert column == column, f"column sort inapplicable at {size}K?"  # not NaN
        assert sample < bitonic < column, (
            f"expected sample < smart bitonic < column sort at {size}K"
        )
