"""Table 5.2 / Figure 5.1: total execution time (seconds) of the three
bitonic sort implementations on 32 processors.

Shape claims reproduced: same ordering as Table 5.1, and total time grows
roughly linearly in the keys per processor (doubling the input roughly
doubles the time — the per-key tables are nearly flat).
"""

from conftest import report, run_once

from repro.harness.experiments import table5_2


def test_table5_2_total_seconds(benchmark, sizes):
    result = run_once(benchmark, table5_2, sizes=sizes, P=32)
    report(result)
    for bm, cb, smart in result.rows.values():
        assert smart < cb < bm
    smart_col = result.column("Smart")
    for prev, cur in zip(smart_col, smart_col[1:]):
        assert 1.5 < cur / prev < 2.5, "total time should ~double per size step"
