"""Table 5.4 / Figure 5.6: breakdown of the long-message communication phase
into packing, transfer and unpacking, on 16 processors.

Shape claim reproduced: pack+unpack is the dominant share of the unfused
long-message communication time ("approximately 80%", §5.4) — which is what
motivates fusing them into the local sorts (§4.3).
"""

from conftest import report, run_once

from repro.harness.experiments import table5_4


def test_table5_4_breakdown(benchmark, sizes):
    result = run_once(benchmark, table5_4, sizes=sizes, P=16)
    report(result)
    for size, (pack, transfer, unpack) in result.rows.items():
        share = (pack + unpack) / (pack + transfer + unpack)
        assert 0.6 < share < 0.95, (
            f"pack+unpack share {share:.0%} at {size}K outside the paper's "
            "~70-85% regime"
        )
        assert pack > unpack, "packing costs more than unpacking (Table 5.4)"
