"""Algorithm 2 ablation: the O(log n) bitonic minimum (Lemma 8) vs the
linear scan it replaces.

Reproduced claims: comparisons grow logarithmically with sequence length
for duplicate-free input, and the logarithmic version beats the linear scan
by orders of magnitude at scale.
"""

import numpy as np

from conftest import report, run_once

from repro.harness.experiments import bitonic_min_scaling
from repro.localsort.bitonic_min import argmin_bitonic, argmin_bitonic_linear


def _bitonic(n: int, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vals = rng.choice(np.arange(4 * n, dtype=np.int64), size=n, replace=False)
    peak = n // 3
    return np.roll(
        np.concatenate([np.sort(vals[:peak]), np.sort(vals[peak:])[::-1]]), n // 7
    )


def test_algorithm2_scaling(benchmark):
    result = run_once(benchmark, bitonic_min_scaling)
    report(result)
    comps = result.column("comparisons")
    lengths = list(result.rows)
    # Logarithmic growth: constant additive increment per fixed size ratio.
    increments = [b - a for a, b in zip(comps, comps[1:])]
    assert max(increments) <= 6
    assert lengths[-1] // lengths[0] >= 1 << 12


def test_logarithmic_min_wallclock(benchmark):
    seq = _bitonic(1 << 18)
    idx = benchmark(argmin_bitonic, seq)
    assert seq[idx] == seq.min()


def test_linear_min_wallclock_reference(benchmark):
    seq = _bitonic(1 << 18)
    idx = benchmark(argmin_bitonic_linear, seq)
    assert seq[idx] == seq.min()
