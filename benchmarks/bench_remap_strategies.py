"""Lemma 5 ablation: transferred volume of the Head / Tail / Middle remap
placements.

Reproduced claims: V_tail <= V_head < V_middle1 and V_tail <= V_middle2,
with all placements using the same remap count except Middle1 (one extra).
"""

from conftest import report, run_once

from repro.harness.experiments import remap_strategies


def test_remap_placements(benchmark):
    # P=32, 4K keys/proc: lgP(lgP+1)/2 = 15, lg n = 12 -> remainder 3 > 0,
    # so all four placements are constructible.
    result = run_once(benchmark, remap_strategies, sizes=(4,), P=32)
    report(result)
    vols = {k: v[1] for k, v in result.rows.items() if isinstance(v[1], int)}
    remaps = {k: v[0] for k, v in result.rows.items() if isinstance(v[0], int)}
    assert {"head", "tail", "middle1", "middle2"} <= set(vols)
    assert vols["tail"] <= vols["head"] < vols["middle1"]
    assert vols["tail"] <= vols["middle2"]
    assert remaps["middle1"] == remaps["head"] + 1
    assert remaps["middle2"] == remaps["head"]
