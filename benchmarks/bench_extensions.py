"""Benchmarks for the paper's future-work extensions (Chapter 7).

Not table/figure reproductions — these quantify the three generalizations
the thesis proposes and this library implements:

* FFT on the remap framework (one blocked→cyclic remap for n >= P);
* communication/computation overlap via the Elan-style DMA offload;
* the memory-hierarchy re-reading of the remap technique (tiled
  butterfly: slow-memory traffic shrinks by ~lg C).
"""

from dataclasses import replace

import numpy as np
import pytest

from conftest import run_once

from repro.fft import ParallelFFT
from repro.hierarchy import (
    naive_butterfly_traffic,
    tiled_butterfly_traffic,
    tiled_fft,
)
from repro.model.machines import MEIKO_CS2
from repro.records import sort_records
from repro.sorts import SmartBitonicSort
from repro.utils.bits import ilog2
from repro.utils.rng import make_keys


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(1)
    return rng.normal(size=1 << 16) + 1j * rng.normal(size=1 << 16)


def test_parallel_fft(benchmark, signal):
    res = run_once(benchmark, lambda: ParallelFFT().run(signal, 16, verify=True))
    # [CKP+93]: one remap, each processor keeps n/P of its points.
    assert res.stats.remaps == 1
    n = signal.size // 16
    assert res.stats.volume_per_proc == n - n // 16


def test_dma_offload_overlap(benchmark):
    keys = make_keys(16 * 16384, seed=4)
    dma_spec = replace(MEIKO_CS2, dma_offload=True)

    def both():
        plain = SmartBitonicSort().run(keys, 16).stats
        dma = SmartBitonicSort(spec=dma_spec).run(keys, 16).stats
        return plain, dma

    plain, dma = run_once(benchmark, both)
    print(f"\nDMA offload: transfer busy {plain.per_key('transfer'):.3f} -> "
          f"{dma.per_key('transfer'):.3f} us/key; makespan "
          f"{plain.us_per_key:.3f} -> {dma.us_per_key:.3f} us/key")
    assert dma.mean_breakdown.times["transfer"] < plain.mean_breakdown.times["transfer"]
    assert dma.elapsed_us <= plain.elapsed_us


def test_hierarchy_traffic_reduction(benchmark, signal):
    cap = 1 << 10

    def run():
        return tiled_fft(signal, cap)

    res = run_once(benchmark, run)
    naive = naive_butterfly_traffic(signal.size, cap)
    tiled = tiled_butterfly_traffic(signal.size, cap)
    assert res.traffic.total_traffic == tiled
    ratio = naive / tiled
    print(f"\nTiled butterfly: {naive:,} -> {tiled:,} slow-memory words "
          f"({ratio:.1f}x less; lg C = {ilog2(cap)})")
    assert ratio >= ilog2(cap) * 0.8
    np.testing.assert_allclose(res.output, np.fft.fft(signal), rtol=1e-9, atol=1e-6)


def test_record_sort(benchmark):
    keys = make_keys(8 * 8192, seed=6)
    values = np.arange(keys.size)
    res = run_once(
        benchmark,
        lambda: sort_records(SmartBitonicSort(), keys, values, P=8, verify=True),
    )
    assert res.stats.remaps > 0
