"""repro — a reproduction of *Optimizing Parallel Bitonic Sort*
(Ionescu & Schauser, IPPS 1997).

The package implements the paper's smart-layout parallel bitonic sort —
the remap-minimal data layout (Definition 7, Theorem 1), the pack/unpack
long-message remap machinery (§3.3), and the merge-based local computation
(Chapter 4, including Algorithm 2's O(log n) bitonic minimum) — together
with every substrate the evaluation needs: a LogP/LogGP-costed simulated
distributed-memory machine standing in for the 64-node Meiko CS-2, the
Blocked-Merge and Cyclic-Blocked baselines, and long-message parallel radix
and sample sorts for the cross-algorithm comparison.

Quickstart — one front door over every substrate::

    from repro import make_keys, sort

    keys = make_keys(1 << 20)                 # 1M uniform 31-bit keys
    report = sort(keys, P=32)                 # LogGP-simulated Meiko CS-2
    print(report.stats.us_per_key, "simulated us/key")

    report = sort(keys, P=8, backend="threads", trace=True)  # real SPMD
    print(report.phases.describe())           # measured/simulated/predicted

The class-per-algorithm interface underneath
(``SmartBitonicSort().run(keys, P)`` etc.) remains available for
fine-grained control over message modes and machine specs.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.api import SORT_ALGORITHMS, SORT_BACKENDS, SortReport, sort
from repro.errors import (
    CommunicationError,
    ConfigurationError,
    CorruptPayloadError,
    LayoutError,
    PeerFailedError,
    ReproError,
    ScheduleError,
    SizeError,
    SpmdTimeoutError,
    VerificationError,
)
from repro.faults import (
    ChaosReport,
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    ReliableComm,
    run_chaos_sort,
)
from repro.harness import run_experiment
from repro.layouts import (
    blocked_layout,
    build_schedule,
    cyclic_layout,
    smart_layout,
    smart_schedule,
)
from repro.machine import Machine, RunStats
from repro.model import GENERIC_CLUSTER, MEIKO_CS2, LogGPParams, LogPParams, MachineSpec
from repro.sorts import (
    BlockedMergeBitonicSort,
    CyclicBlockedBitonicSort,
    ParallelRadixSort,
    ParallelSampleSort,
    SmartBitonicSort,
    SortResult,
)
from repro.fft import ParallelFFT
from repro.records import sort_records
from repro.runtime import BackendOptions
from repro.theory import best_algorithm, counts_for, predict
from repro.trace import PhaseReport, Tracer, build_phase_report, write_chrome_trace
from repro.utils.rng import make_keys

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the front door
    "sort",
    "SortReport",
    "SORT_ALGORITHMS",
    "SORT_BACKENDS",
    "BackendOptions",
    # tracing & observability
    "Tracer",
    "PhaseReport",
    "build_phase_report",
    "write_chrome_trace",
    # errors
    "ReproError",
    "ConfigurationError",
    "SizeError",
    "LayoutError",
    "ScheduleError",
    "CommunicationError",
    "PeerFailedError",
    "SpmdTimeoutError",
    "CorruptPayloadError",
    "VerificationError",
    # fault injection & tolerance
    "FaultPlan",
    "FaultInjector",
    "ReliableComm",
    "CheckpointStore",
    "ChaosReport",
    "run_chaos_sort",
    # machine & model
    "Machine",
    "RunStats",
    "MachineSpec",
    "LogPParams",
    "LogGPParams",
    "MEIKO_CS2",
    "GENERIC_CLUSTER",
    # layouts
    "blocked_layout",
    "cyclic_layout",
    "smart_layout",
    "smart_schedule",
    "build_schedule",
    # sorts
    "SmartBitonicSort",
    "CyclicBlockedBitonicSort",
    "BlockedMergeBitonicSort",
    "ParallelRadixSort",
    "ParallelSampleSort",
    "SortResult",
    # extensions
    "ParallelFFT",
    "sort_records",
    # analysis & harness
    "counts_for",
    "best_algorithm",
    "predict",
    "run_experiment",
    "make_keys",
]
