"""Parameter sweeps over (P, n) grids, with ASCII heatmap rendering.

The evaluation chapter's figures are one-dimensional slices; this utility
runs an algorithm (or compares two) over a full grid of machine and
problem sizes, which is how one actually answers "when should I use the
smart bitonic sort?" on a new machine.  Simulated runs are cheap enough to
grid-search; the closed-form predictors (:mod:`repro.theory.predict`) make
the bitonic grid essentially free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.metrics import RunStats
from repro.sorts.base import ParallelSort
from repro.utils.rng import make_keys

__all__ = ["SweepResult", "run_sweep", "compare_sweep", "render_heatmap"]

Cell = Tuple[int, int]  # (P, n)


@dataclass
class SweepResult:
    """A metric evaluated over a (P, n) grid."""

    metric: str
    procs: Tuple[int, ...]
    keys_per_proc: Tuple[int, ...]
    values: Dict[Cell, float] = field(default_factory=dict)

    def row(self, P: int) -> List[float]:
        return [self.values[(P, n)] for n in self.keys_per_proc]


def run_sweep(
    algorithm: ParallelSort,
    procs: Sequence[int],
    keys_per_proc: Sequence[int],
    metric: Callable[[RunStats], float] = lambda st: st.us_per_key,
    metric_name: str = "us/key",
    seed: int = 0,
    verify: bool = True,
) -> SweepResult:
    """Run ``algorithm`` at every grid point and record ``metric``."""
    if not procs or not keys_per_proc:
        raise ConfigurationError("sweep needs at least one P and one n")
    result = SweepResult(
        metric=f"{algorithm.name}: {metric_name}",
        procs=tuple(procs),
        keys_per_proc=tuple(keys_per_proc),
    )
    for P in procs:
        for n in keys_per_proc:
            keys = make_keys(P * n, seed=seed)
            stats = algorithm.run(keys, P, verify=verify).stats
            result.values[(P, n)] = metric(stats)
    return result


def compare_sweep(
    a: ParallelSort,
    b: ParallelSort,
    procs: Sequence[int],
    keys_per_proc: Sequence[int],
    seed: int = 0,
) -> SweepResult:
    """Grid of time ratios ``b / a`` (> 1 where ``a`` wins)."""
    ra = run_sweep(a, procs, keys_per_proc, seed=seed)
    rb = run_sweep(b, procs, keys_per_proc, seed=seed)
    out = SweepResult(
        metric=f"{b.name} / {a.name} time ratio (>1: {a.name} wins)",
        procs=ra.procs,
        keys_per_proc=ra.keys_per_proc,
    )
    for cell, va in ra.values.items():
        out.values[cell] = rb.values[cell] / va if va else float("inf")
    return out


#: Shading ramp for the heatmap, light to dark.
_RAMP = " .:-=+*#%@"


def render_heatmap(result: SweepResult, cell_width: int = 7) -> str:
    """Render the grid as a table with a shade character per cell
    (normalized to the grid's min..max range)."""
    vals = [v for v in result.values.values() if np.isfinite(v)]
    if not vals:
        raise ConfigurationError("sweep produced no finite values")
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0

    def shade(v: float) -> str:
        if not np.isfinite(v):
            return "?"
        idx = int((v - lo) / span * (len(_RAMP) - 1))
        return _RAMP[idx]

    header = f"{result.metric}  (shade: light=low {lo:.3g}, dark=high {hi:.3g})"
    lines = [header]
    cols = "".join(f"{n:>{cell_width}}" for n in result.keys_per_proc)
    corner = "P \\ n"
    lines.append(f"{corner:>6} {cols}")
    for P in result.procs:
        cells = "".join(
            f"{result.values[(P, n)]:>{cell_width - 1}.3g}{shade(result.values[(P, n)])}"
            for n in result.keys_per_proc
        )
        lines.append(f"{P:>6} {cells}")
    return "\n".join(lines)
