"""The paper's reported numbers (Chapter 5), for paper-vs-measured reports.

Tables 5.1–5.4 are transcribed exactly.  The figures without backing tables
(5.1–5.8) are represented by the *shape constraints* the reproduction must
satisfy — orderings, approximate ratios, crossovers — because the thesis
prints them only as plots.

All per-key times are µs; totals are seconds.  "Keys/proc" sweep points are
in units of 1024 keys (the paper's "K").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["PAPER", "PaperTable", "ShapeExpectation"]


@dataclass(frozen=True)
class PaperTable:
    """One table of the paper: row label -> column label -> value."""

    ident: str
    caption: str
    unit: str
    columns: Tuple[str, ...]
    rows: Dict[int, Tuple[float, ...]]  # keys/proc (in K) -> values


@dataclass(frozen=True)
class ShapeExpectation:
    """A qualitative claim a figure makes, checked by the benches."""

    ident: str
    claim: str


TABLE_5_1 = PaperTable(
    ident="table5.1",
    caption=(
        "Execution time per key (µs) for different implementations of the "
        "bitonic sort algorithm on 32 processors"
    ),
    unit="us/key",
    columns=("Blocked-Merge", "Cyclic-Blocked", "Smart"),
    rows={
        128: (1.07, 0.68, 0.52),
        256: (1.19, 0.75, 0.51),
        512: (1.26, 0.89, 0.53),
        1024: (1.25, 0.86, 0.59),
    },
)

TABLE_5_2 = PaperTable(
    ident="table5.2",
    caption=(
        "Total execution time (s) for different implementations of the "
        "bitonic sort algorithm on 32 processors"
    ),
    unit="seconds",
    columns=("Blocked-Merge", "Cyclic-Blocked", "Smart"),
    rows={
        128: (5.52, 2.85, 2.18),
        256: (10.04, 6.35, 4.26),
        512: (21.14, 14.96, 8.95),
        1024: (42.03, 28.58, 20.01),
    },
)

TABLE_5_3 = PaperTable(
    ident="table5.3",
    caption=(
        "Communication time per key (µs) for the short- and long-message "
        "versions of the bitonic sort algorithm on 16 processors"
    ),
    unit="us/key",
    columns=("Short Messages", "Long Messages"),
    rows={
        128: (13.23, 0.98),
        256: (13.25, 1.09),
        512: (13.26, 1.12),
        1024: (13.74, 1.21),
    },
)

TABLE_5_4 = PaperTable(
    ident="table5.4",
    caption=(
        "Breakdown of the communication time per key (µs) for the "
        "long-message version on 16 processors"
    ),
    unit="us/key",
    columns=("Packing", "Transfer", "Unpacking"),
    rows={
        128: (0.35, 0.15, 0.15),
        256: (0.37, 0.15, 0.15),
        512: (0.38, 0.16, 0.14),
        1024: (0.38, 0.16, 0.13),
    },
)

FIGURE_SHAPES: Dict[str, List[ShapeExpectation]] = {
    "figure5.1": [
        ShapeExpectation(
            "figure5.1",
            "total time ordering Smart < Cyclic-Blocked < Blocked-Merge at "
            "every size on 32 processors",
        )
    ],
    "figure5.2": [
        ShapeExpectation(
            "figure5.2",
            "per-key ordering Smart < Cyclic-Blocked < Blocked-Merge; "
            "Blocked-Merge roughly 2x Smart, Cyclic-Blocked 1.3-1.8x Smart",
        )
    ],
    "figure5.3": [
        ShapeExpectation(
            "figure5.3",
            "for 1M total keys the sorting time falls as P grows from 2 to "
            "32; speedup grows with P but sub-linearly",
        )
    ],
    "figure5.4": [
        ShapeExpectation(
            "figure5.4",
            "computation share of total time grows with keys/processor "
            "(cache misses), communication share shrinks",
        )
    ],
    "figure5.5": [
        ShapeExpectation(
            "figure5.5",
            "short messages are roughly an order of magnitude (about 12x) "
            "slower per key than long messages",
        )
    ],
    "figure5.6": [
        ShapeExpectation(
            "figure5.6",
            "packing+unpacking is roughly 70-85% of the unfused long-message "
            "communication time",
        )
    ],
    "figure5.7": [
        ShapeExpectation(
            "figure5.7",
            "on 16 processors bitonic beats radix at every size; sample sort "
            "is the overall winner",
        )
    ],
    "figure5.8": [
        ShapeExpectation(
            "figure5.8",
            "on 32 processors bitonic beats radix only for smaller "
            "keys/processor (a crossover exists); sample sort wins overall",
        )
    ],
}


@dataclass(frozen=True)
class _Paper:
    tables: Dict[str, PaperTable] = field(
        default_factory=lambda: {
            t.ident: t
            for t in (TABLE_5_1, TABLE_5_2, TABLE_5_3, TABLE_5_4)
        }
    )
    shapes: Dict[str, List[ShapeExpectation]] = field(
        default_factory=lambda: dict(FIGURE_SHAPES)
    )


PAPER = _Paper()
