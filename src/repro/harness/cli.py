"""Command-line entry point.

``repro-bitonic`` exposes the library's main functions without writing
Python:

``repro-bitonic experiment <id> [--full]``
    Reproduce one of the paper's tables/figures (or ``all`` / ``list``).
    For backwards compatibility a bare experiment id also works:
    ``repro-bitonic table5.1``.
``repro-bitonic sort --keys 1048576 --procs 32 [--algorithm smart] ...``
    Run one parallel sort and print its simulated statistics.
``repro-bitonic schedule --keys 256 --procs 16``
    Print the smart remap schedule, patterns and metrics (Figure 3.3/3.4).
``repro-bitonic predict --keys 33554432 --procs 32``
    Closed-form time predictions for the three bitonic algorithms.
``repro-bitonic fft --points 65536 --procs 16``
    Run the parallel FFT generalization and verify it against NumPy.
``repro-bitonic chaos --keys 4096 --procs 4 --drop 0.05``
    Run the real SPMD sort on the threads backend through an adversarial
    network (seeded drop/duplication/corruption/delay, optional rank
    crash) and report the recovery cost; the ``chaos-sweep`` experiment
    is the simulator-side counterpart.
``repro-bitonic bench [--quick] [--out BENCH.json]``
    Time the real SPMD sort end-to-end across runtime backends (threads
    vs processes) and the kernel hot paths against their legacy
    implementations, verify cross-backend byte-identity, and write the
    machine-readable benchmark trajectory JSON (now with per-phase
    breakdowns from a traced companion run per backend).
``repro-bitonic serve --requests 200 --worlds 2``
    Soak the persistent sort service: push a mixed-shape request stream
    through a warm world pool, verify every output, export sampled
    per-request Chrome traces, and fail on any leaked child process or
    shared-memory segment (the CI ``service-soak`` job).
``repro-bitonic submit --keys 65536 [--backend procs --procs 4]``
    Run one request through the sort service and print the planner's
    decision table alongside the measured latency.
``repro-bitonic trace --keys 262144 --procs 4 --backend threads``
    Run the real SPMD sort with the phase tracer armed, print the
    measured / simulated / predicted per-phase table
    (:class:`~repro.trace.report.PhaseReport`), and write a Chrome-trace
    JSON timeline (open in ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import format_result

__all__ = ["main"]


def _cmd_experiment(args) -> int:
    if args.id == "list":
        for ident in sorted(set(EXPERIMENTS)):
            print(ident)
        return 0
    if args.id == "all":
        seen = set()
        idents = []
        for ident, fn in EXPERIMENTS.items():
            if fn not in seen:
                seen.add(fn)
                idents.append(ident)
    else:
        idents = [args.id]
    for ident in idents:
        print(format_result(run_experiment(ident, full=args.full)))
        print()
    return 0


def _cmd_sort(args) -> int:
    from repro.sorts import (
        BlockedMergeBitonicSort,
        CyclicBlockedBitonicSort,
        ParallelRadixSort,
        ParallelSampleSort,
        SmartBitonicSort,
    )
    from repro.utils.rng import make_keys

    algos = {
        "smart": lambda: SmartBitonicSort(
            mode=args.messages, fused=(args.messages == "long" and not args.unfused)
        ),
        "cyclic-blocked": lambda: CyclicBlockedBitonicSort(mode=args.messages),
        "blocked-merge": lambda: BlockedMergeBitonicSort(mode=args.messages),
        "radix": ParallelRadixSort,
        "sample": ParallelSampleSort,
    }
    if args.algorithm not in algos:
        print(f"unknown algorithm {args.algorithm!r}; choose from {sorted(algos)}",
              file=sys.stderr)
        return 2
    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    algo = algos[args.algorithm]()
    result = algo.run(keys, args.procs, verify=True)
    st = result.stats
    print(f"{algo.name}: sorted and verified {args.keys:,} keys on "
          f"{args.procs} processors")
    print(f"  simulated time   {st.elapsed_us / 1e6:.4f} s  "
          f"({st.us_per_key:.3f} us/key)")
    print(f"  computation      {st.computation_per_key:.3f} us/key")
    print(f"  communication    {st.communication_per_key:.3f} us/key")
    print(f"  remaps R = {st.remaps}   volume V = {st.volume_per_proc:,}/proc   "
          f"messages M = {st.messages_per_proc:,}/proc")
    return 0


def _cmd_schedule(args) -> int:
    from repro.layouts import smart_schedule
    from repro.viz import render_schedule_map

    sched = smart_schedule(args.keys, args.procs)
    print(sched.describe())
    print()
    print(render_schedule_map(sched))
    print()
    print(f"volume  V = {sched.volume_per_processor():,} elements/processor")
    print(f"messages M = {sched.messages_per_processor():,} per processor")
    return 0


def _cmd_predict(args) -> int:
    from repro.theory import predict

    print(f"predicted busy time, N={args.keys:,} keys on P={args.procs} "
          f"(Meiko CS-2 model):")
    for algo in ("smart", "cyclic-blocked", "blocked-merge"):
        pt = predict(algo, args.keys, args.procs)
        print(f"  {algo:<16} {pt.us_per_key:7.3f} us/key  "
              f"(comp {pt.computation / pt.n:.3f}, comm {pt.communication / pt.n:.3f})")
    return 0


def _cmd_gantt(args) -> int:
    from repro.sorts import (
        BlockedMergeBitonicSort,
        ColumnSort,
        CyclicBlockedBitonicSort,
        ParallelRadixSort,
        ParallelSampleSort,
        SmartBitonicSort,
    )
    from repro.utils.rng import make_keys
    from repro.viz import render_gantt

    algos = {
        "smart": SmartBitonicSort,
        "smart-unfused": lambda: SmartBitonicSort(fused=False),
        "cyclic-blocked": CyclicBlockedBitonicSort,
        "blocked-merge": BlockedMergeBitonicSort,
        "radix": ParallelRadixSort,
        "sample": ParallelSampleSort,
        "column": ColumnSort,
    }
    if args.algorithm not in algos:
        print(f"unknown algorithm {args.algorithm!r}; choose from {sorted(algos)}",
              file=sys.stderr)
        return 2
    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    res = algos[args.algorithm]().run(keys, args.procs, verify=True, trace=True)
    print(render_gantt(res.traces, width=args.width))
    print(f"\nmakespan {res.stats.elapsed_us / 1e3:.2f} ms simulated "
          f"({res.stats.us_per_key:.3f} us/key)")
    return 0


def _cmd_fft(args) -> int:
    import numpy as np

    from repro.fft import ParallelFFT

    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=args.points) + 1j * rng.normal(size=args.points)
    res = ParallelFFT().run(x, args.procs, verify=True)
    st = res.stats
    print(f"parallel FFT of {args.points:,} points on {args.procs} processors "
          f"— verified against np.fft.fft")
    print(f"  remaps R = {st.remaps}   volume V = {st.volume_per_proc:,} "
          f"points/proc   {st.us_per_key:.3f} simulated us/point")
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultPlan, run_chaos_sort
    from repro.utils.rng import make_keys

    plan = FaultPlan(
        seed=args.seed,
        drop=args.drop,
        duplicate=args.duplicate,
        corrupt=args.corrupt,
        delay=args.delay,
        crash_rank=args.crash_rank,
        crash_phase=args.crash_phase,
    )
    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    report = run_chaos_sort(
        keys,
        args.procs,
        plan,
        max_restarts=args.max_restarts,
        timeout=args.timeout,
        checkpoint=not args.no_checkpoint,
        backend=args.backend,
    )
    print(report.describe())
    return 0


def _cmd_trace(args) -> int:
    from repro.api import sort
    from repro.errors import ReproError
    from repro.trace import write_chrome_trace
    from repro.utils.rng import make_keys

    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    options = None
    if args.no_fused or args.no_group:
        from repro.runtime import BackendOptions

        options = BackendOptions(
            fused=False if args.no_fused else None,
            grouped=False if args.no_group else None,
        )
    try:
        report = sort(
            keys,
            args.procs,
            backend=args.backend,
            trace=True,
            timeout=args.timeout,
            backend_options=options,
        )
    except ReproError as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    write_chrome_trace(args.out, report.tracers)
    print(f"\nchrome trace written to {args.out} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_bench(args) -> int:
    from repro.errors import ConfigurationError
    from repro.harness.bench import run_bench, write_bench

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    sizes = (
        [int(s) for s in args.sizes.split(",") if s.strip()]
        if args.sizes
        else None
    )
    try:
        payload = run_bench(
            quick=args.quick,
            sizes=sizes,
            procs=args.procs,
            backends=backends,
            reps=args.reps,
            timeout=args.timeout,
        )
    except ConfigurationError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    write_bench(payload, args.out)
    host = payload["host"]
    print(f"benchmark trajectory written to {args.out}")
    print(f"  host: {host['cpu_count']} usable cores, numpy {host['numpy']}")
    for rec in payload["end_to_end"]:
        line = (f"  end-to-end {rec['backend']:>7} "
                f"[{rec.get('variant', 'default'):>13}] "
                f"{rec['keys']:>9,} keys "
                f"x {rec['procs']} ranks: {rec['best_s'] * 1e3:8.1f} ms best")
        phases = rec.get("phases") or {}
        total = sum(phases.values())
        if total > 0:
            top = sorted(phases.items(), key=lambda kv: -kv[1])[:3]
            line += "  [" + ", ".join(
                f"{name} {100.0 * us / total:.0f}%" for name, us in top
            ) + "]"
        print(line)
    for name, by_size in payload["end_to_end_speedup"].items():
        pretty = ", ".join(f"{int(k):,}: {v:.2f}x" for k, v in by_size.items())
        print(f"  speedup {name}: {pretty}")
    for kind in ("radix", "merge", "plan"):
        for rec in payload["kernels"][kind]:
            print(f"  kernel {kind:>5} {rec.get('keys', rec.get('shape'))}: "
                  f"{rec['speedup']:.2f}x vs legacy")
    service = payload.get("service", {})
    for backend, by_size in service.get("warm_over_cold", {}).items():
        pretty = ", ".join(f"{int(k):,}: {v:.2f}x" for k, v in by_size.items())
        print(f"  service warm-over-cold {backend}: {pretty}")
    if service.get("planner_points"):
        print(f"  planner matched best measured config on "
              f"{service['planner_matches']}/{service['planner_points']} "
              f"(backend, size) points")
    return 0


def _service_planner(profile_path):
    """A Planner for the CLI service commands: calibrated profile when
    one is given (or the default path exists), bench history when any
    ``BENCH_pr*.json`` is nearby."""
    from repro.service import BenchHistory, HostProfile, Planner

    profile = None
    if profile_path:
        profile = HostProfile.load(profile_path)
    return Planner(profile=profile, history=BenchHistory.load())


def _shm_segments() -> set:
    """Names of live SPMD shared-memory segments (procs arenas)."""
    import glob as _glob
    import os as _os

    if not _os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        return set()
    return {
        _os.path.basename(p) for p in _glob.glob("/dev/shm/rspmd*")
    }


def _cmd_serve(args) -> int:
    """The service soak driver (the CI ``service-soak`` job runs this):
    push a mixed-shape request stream through a small warm pool, verify
    every output, export sampled per-request traces, and fail loudly on
    any leaked process or shared-memory segment."""
    import multiprocessing
    import os

    from repro.errors import AdmissionError, ReproError
    from repro.service import SortService, WorldPool
    from repro.utils.rng import make_keys

    try:
        planner = _service_planner(args.profile)
    except ReproError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    shm_before = _shm_segments()
    # The mixed request shapes: every (size, backend, P) combination the
    # soak cycles through.  P >= 2 shapes exercise real communication;
    # the P chosen freely by the planner exercises the planner.
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    shapes = []
    for size in sizes:
        for backend in backends:
            shapes.append((size, backend, 2))
            shapes.append((size, backend, 4))
            shapes.append((size, backend, None))  # planner's choice of P
    failures = 0
    traced = 0
    rng_seed = 0
    pool = WorldPool(max_idle_per_key=args.worlds)
    svc = SortService(
        planner,
        pool,
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        timeout=args.timeout,
    )
    if args.traces_dir:
        os.makedirs(args.traces_dir, exist_ok=True)
    inflight = []  # sliding window of (ticket, keys, trace_path)
    try:
        for i in range(args.requests):
            size, backend, P = shapes[i % len(shapes)]
            keys = make_keys(size, seed=rng_seed)
            rng_seed += 1
            trace_path = None
            if (
                args.traces_dir
                and args.trace_every
                and i % args.trace_every == 0
                and (P or 0) >= 2
            ):
                trace_path = os.path.join(
                    args.traces_dir, f"request_{i:04d}.json"
                )
            while True:
                try:
                    t = svc.submit(
                        keys, backend=backend, P=P,
                        trace=trace_path is not None,
                    )
                    break
                except AdmissionError:
                    # Queue full: drain the oldest inflight request and
                    # resubmit — the soak applies backpressure instead
                    # of shedding its own load.
                    if not inflight:
                        raise
                    failures += _drain(inflight.pop(0), args)
            inflight.append((t, keys, trace_path))
            if len(inflight) >= args.queue_depth:
                failures += _drain(inflight.pop(0), args)
        while inflight:
            failures += _drain(inflight.pop(0), args)
        traced = sum(
            1 for name in os.listdir(args.traces_dir)
            if name.startswith("request_")
        ) if args.traces_dir else 0
    finally:
        svc.close()
    report = svc.report()
    print(report.describe())
    if traced:
        print(f"  {traced} per-request traces in {args.traces_dir}/")
    # Leak gates: every world closed means every child reaped and every
    # arena unlinked.
    children = multiprocessing.active_children()
    shm_leaked = _shm_segments() - shm_before
    if children:
        print(f"LEAK: {len(children)} child processes still alive: "
              f"{[p.name for p in children]}", file=sys.stderr)
    if shm_leaked:
        print(f"LEAK: {len(shm_leaked)} shared-memory segments left in "
              f"/dev/shm: {sorted(shm_leaked)[:8]}", file=sys.stderr)
    if failures or children or shm_leaked or report.failed:
        print(f"soak FAILED: {failures} bad outputs, {report.failed} "
              f"failed requests, {len(children)} leaked processes, "
              f"{len(shm_leaked)} leaked segments", file=sys.stderr)
        return 1
    print(f"soak ok: {report.served} requests served, zero leaks")
    return 0


def _drain(entry, args) -> int:
    """Await one soak request; verify its output; write its trace.
    Returns 1 on a bad output, 0 otherwise."""
    import numpy as np

    from repro.trace import write_chrome_trace

    ticket, keys, trace_path = entry
    try:
        outcome = ticket.result(args.timeout)
    except Exception as exc:  # noqa: BLE001 — count and continue the soak
        print(f"request {ticket.request_id} failed: {exc}", file=sys.stderr)
        return 1
    if not np.array_equal(outcome.sorted_keys, np.sort(keys)):
        print(f"request {ticket.request_id}: WRONG OUTPUT", file=sys.stderr)
        return 1
    if trace_path and outcome.tracers:
        write_chrome_trace(trace_path, outcome.tracers)
    return 0


def _cmd_submit(args) -> int:
    """One request through a fresh service: plan, run, explain."""
    from repro.errors import ReproError
    from repro.service import SortService
    from repro.trace import write_chrome_trace
    from repro.utils.rng import make_keys

    keys = make_keys(args.keys, distribution=args.distribution,
                     seed=args.seed)
    try:
        planner = _service_planner(args.profile)
        with SortService(planner, verify=True, timeout=args.timeout) as svc:
            outcome = svc.sort(
                keys,
                backend=args.backend,
                P=args.procs,
                trace=args.trace is not None,
            )
    except ReproError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(outcome.decision.explain())
    print(f"sorted {keys.size:,} keys in {outcome.wall_s * 1e3:.1f} ms "
          f"({outcome.queue_wait_s * 1e3:.2f} ms queued, "
          f"{outcome.run_s * 1e3:.1f} ms running), verified")
    if args.trace and outcome.tracers:
        write_chrome_trace(args.trace, outcome.tracers)
        print(f"per-request trace written to {args.trace}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bitonic",
        description=(
            "Reproduction of 'Optimizing Parallel Bitonic Sort' "
            "(Ionescu & Schauser, IPPS 1997) on a LogGP-simulated machine."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("experiment", help="reproduce a paper table/figure")
    p_exp.add_argument("id", help="experiment id, 'all', or 'list'")
    p_exp.add_argument("--full", action="store_true",
                       help="the paper's full sizes (slow)")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_sort = sub.add_parser("sort", help="run one parallel sort")
    p_sort.add_argument("--keys", type=int, default=1 << 20)
    p_sort.add_argument("--procs", type=int, default=32)
    p_sort.add_argument("--algorithm", default="smart")
    p_sort.add_argument("--messages", choices=("long", "short"), default="long")
    p_sort.add_argument("--unfused", action="store_true")
    p_sort.add_argument("--distribution", default="uniform")
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.set_defaults(fn=_cmd_sort)

    p_sched = sub.add_parser("schedule", help="print a smart remap schedule")
    p_sched.add_argument("--keys", type=int, default=256)
    p_sched.add_argument("--procs", type=int, default=16)
    p_sched.set_defaults(fn=_cmd_schedule)

    p_pred = sub.add_parser("predict", help="closed-form time predictions")
    p_pred.add_argument("--keys", type=int, default=1 << 25)
    p_pred.add_argument("--procs", type=int, default=32)
    p_pred.set_defaults(fn=_cmd_predict)

    p_gantt = sub.add_parser("gantt", help="trace a sort and render its timeline")
    p_gantt.add_argument("--keys", type=int, default=1 << 17)
    p_gantt.add_argument("--procs", type=int, default=8)
    p_gantt.add_argument("--algorithm", default="smart")
    p_gantt.add_argument("--distribution", default="uniform")
    p_gantt.add_argument("--width", type=int, default=100)
    p_gantt.add_argument("--seed", type=int, default=0)
    p_gantt.set_defaults(fn=_cmd_gantt)

    p_chaos = sub.add_parser(
        "chaos", help="run the SPMD sort through an adversarial network"
    )
    p_chaos.add_argument("--keys", type=int, default=1 << 12)
    p_chaos.add_argument("--procs", type=int, default=4)
    p_chaos.add_argument("--drop", type=float, default=0.05,
                         help="per-message drop probability")
    p_chaos.add_argument("--duplicate", type=float, default=0.0)
    p_chaos.add_argument("--corrupt", type=float, default=0.0)
    p_chaos.add_argument("--delay", type=float, default=0.0)
    p_chaos.add_argument("--crash-rank", type=int, default=None,
                         help="rank to kill once (recovers from checkpoints)")
    p_chaos.add_argument("--crash-phase", type=int, default=1,
                         help="phase index at which --crash-rank dies")
    p_chaos.add_argument("--max-restarts", type=int, default=2)
    p_chaos.add_argument("--timeout", type=float, default=60.0)
    p_chaos.add_argument("--no-checkpoint", action="store_true",
                         help="disable phase-level checkpoint/restart")
    p_chaos.add_argument("--distribution", default="uniform")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--backend", default="threads",
                         help="SPMD runtime backend (fault injection needs "
                              "'threads'; others require a null fault plan)")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_bench = sub.add_parser(
        "bench", help="benchmark backends and kernels, write trajectory JSON"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-smoke sizes and repetitions")
    p_bench.add_argument("--out", default="BENCH.json",
                         help="output JSON path")
    p_bench.add_argument("--sizes", default=None,
                         help="comma-separated key counts (default by mode)")
    p_bench.add_argument("--procs", type=int, default=8)
    p_bench.add_argument("--backends", default="threads,procs",
                         help="comma-separated runtime backends to compare")
    p_bench.add_argument("--reps", type=int, default=None,
                         help="timed repetitions per measurement")
    p_bench.add_argument("--timeout", type=float, default=300.0,
                         help="per-world SPMD timeout in seconds")
    p_bench.set_defaults(fn=_cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="run the SPMD sort traced; print the phase table, write a "
             "Chrome-trace timeline",
    )
    p_trace.add_argument("--keys", type=int, default=1 << 18)
    p_trace.add_argument("--procs", type=int, default=4)
    p_trace.add_argument("--backend", default="threads",
                         choices=("threads", "procs"),
                         help="SPMD runtime backend to trace")
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome-trace JSON output path")
    p_trace.add_argument("--distribution", default="uniform")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--timeout", type=float, default=120.0)
    p_trace.add_argument("--no-fused", action="store_true",
                         help="disable the fused pack/transfer/unpack "
                              "collective (run the classic 3-phase remap)")
    p_trace.add_argument("--no-group", action="store_true",
                         help="disable Lemma-4 group-scoped exchanges "
                              "(every remap synchronizes the whole world)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="soak the persistent sort service: a mixed-shape request "
             "stream through a warm world pool, with leak gates",
    )
    p_serve.add_argument("--requests", type=int, default=200,
                         help="total requests to push through the service")
    p_serve.add_argument("--worlds", type=int, default=2,
                         help="idle worlds retained per (backend, P) shape")
    p_serve.add_argument("--sizes", default="4096,16384",
                         help="comma-separated request key counts")
    p_serve.add_argument("--backends", default="threads,procs",
                         help="comma-separated SPMD backends to cycle")
    p_serve.add_argument("--queue-depth", type=int, default=16)
    p_serve.add_argument("--batch-max", type=int, default=8)
    p_serve.add_argument("--timeout", type=float, default=120.0)
    p_serve.add_argument("--trace-every", type=int, default=25,
                         help="trace every Nth request (0 disables)")
    p_serve.add_argument("--traces-dir", default=None,
                         help="directory for sampled per-request "
                              "Chrome traces")
    p_serve.add_argument("--profile", default=None,
                         help="calibrated host profile JSON "
                              "(scripts/calibrate_loggp.py)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="run one request through the sort service"
    )
    p_submit.add_argument("--keys", type=int, default=1 << 16)
    p_submit.add_argument("--procs", type=int, default=None,
                          help="force the world size (default: planner)")
    p_submit.add_argument("--backend", default=None,
                          choices=("threads", "procs"),
                          help="force the backend (default: planner)")
    p_submit.add_argument("--trace", default=None,
                          help="write the per-request Chrome trace here")
    p_submit.add_argument("--profile", default=None,
                          help="calibrated host profile JSON")
    p_submit.add_argument("--distribution", default="uniform")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--timeout", type=float, default=120.0)
    p_submit.set_defaults(fn=_cmd_submit)

    p_fft = sub.add_parser("fft", help="run the parallel FFT generalization")
    p_fft.add_argument("--points", type=int, default=1 << 16)
    p_fft.add_argument("--procs", type=int, default=16)
    p_fft.add_argument("--seed", type=int, default=0)
    p_fft.set_defaults(fn=_cmd_fft)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `repro-bitonic table5.1` == `repro-bitonic experiment table5.1`.
    known = {"experiment", "sort", "schedule", "predict", "fft", "gantt",
             "chaos", "bench", "trace", "serve", "submit", "-h", "--help"}
    if argv and argv[0] not in known:
        argv = ["experiment"] + argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
