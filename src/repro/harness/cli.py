"""Command-line entry point.

``repro-bitonic`` exposes the library's main functions without writing
Python:

``repro-bitonic experiment <id> [--full]``
    Reproduce one of the paper's tables/figures (or ``all`` / ``list``).
    For backwards compatibility a bare experiment id also works:
    ``repro-bitonic table5.1``.
``repro-bitonic sort --keys 1048576 --procs 32 [--algorithm smart] ...``
    Run one parallel sort and print its simulated statistics.
``repro-bitonic schedule --keys 256 --procs 16``
    Print the smart remap schedule, patterns and metrics (Figure 3.3/3.4).
``repro-bitonic predict --keys 33554432 --procs 32``
    Closed-form time predictions for the three bitonic algorithms.
``repro-bitonic fft --points 65536 --procs 16``
    Run the parallel FFT generalization and verify it against NumPy.
``repro-bitonic chaos --keys 4096 --procs 4 --drop 0.05``
    Run the real SPMD sort on the threads backend through an adversarial
    network (seeded drop/duplication/corruption/delay, optional rank
    crash) and report the recovery cost; the ``chaos-sweep`` experiment
    is the simulator-side counterpart.
``repro-bitonic bench [--quick] [--out BENCH.json]``
    Time the real SPMD sort end-to-end across runtime backends (threads
    vs processes) and the kernel hot paths against their legacy
    implementations, verify cross-backend byte-identity, and write the
    machine-readable benchmark trajectory JSON (now with per-phase
    breakdowns from a traced companion run per backend).
``repro-bitonic serve --requests 200 --worlds 2``
    Soak the persistent sort service: push a mixed-shape request stream
    through a warm world pool, verify every output, export sampled
    per-request Chrome traces, gate p50/p99 latency against a committed
    baseline (``--baseline SOAK_BASELINE.json``), and fail on any leaked
    child process or shared-memory segment (the CI ``service-soak`` job).
``repro-bitonic serve --listen 127.0.0.1:7070``
    Run the networked sort service in the foreground: an asyncio frame
    server (``repro.service.net``) over a warm world pool, until ^C.
``repro-bitonic submit --keys 65536 [--backend procs --procs 4]``
    Run one request through the sort service and print the planner's
    decision table alongside the measured latency.  With
    ``--connect HOST:PORT`` the request travels the wire to a running
    ``serve --listen`` server instead (deadline, tenant and retries
    apply).
``repro-bitonic chaos-serve --shards 2 --clients 8 --requests 200``
    The serving layer's adversarial soak: several networked shards
    behind a health-checked router, concurrent multi-tenant clients,
    deterministic frame drop/corrupt/delay injection, and one shard
    killed mid-run.  Gates: every request is accounted (completed
    correctly — possibly after failover — or failed with a typed
    error), zero silent losses, zero leaked processes or shm segments,
    and p50/p99 within the committed baseline.
``repro-bitonic trace --keys 262144 --procs 4 --backend threads``
    Run the real SPMD sort with the phase tracer armed, print the
    measured / simulated / predicted per-phase table
    (:class:`~repro.trace.report.PhaseReport`), and write a Chrome-trace
    JSON timeline (open in ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import format_result

__all__ = ["main"]


def _cmd_experiment(args) -> int:
    if args.id == "list":
        for ident in sorted(set(EXPERIMENTS)):
            print(ident)
        return 0
    if args.id == "all":
        seen = set()
        idents = []
        for ident, fn in EXPERIMENTS.items():
            if fn not in seen:
                seen.add(fn)
                idents.append(ident)
    else:
        idents = [args.id]
    for ident in idents:
        print(format_result(run_experiment(ident, full=args.full)))
        print()
    return 0


def _cmd_sort(args) -> int:
    from repro.sorts import (
        BlockedMergeBitonicSort,
        CyclicBlockedBitonicSort,
        ParallelRadixSort,
        ParallelSampleSort,
        SmartBitonicSort,
    )
    from repro.utils.rng import make_keys

    algos = {
        "smart": lambda: SmartBitonicSort(
            mode=args.messages, fused=(args.messages == "long" and not args.unfused)
        ),
        "cyclic-blocked": lambda: CyclicBlockedBitonicSort(mode=args.messages),
        "blocked-merge": lambda: BlockedMergeBitonicSort(mode=args.messages),
        "radix": ParallelRadixSort,
        "sample": ParallelSampleSort,
    }
    if args.algorithm not in algos:
        print(f"unknown algorithm {args.algorithm!r}; choose from {sorted(algos)}",
              file=sys.stderr)
        return 2
    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    algo = algos[args.algorithm]()
    result = algo.run(keys, args.procs, verify=True)
    st = result.stats
    print(f"{algo.name}: sorted and verified {args.keys:,} keys on "
          f"{args.procs} processors")
    print(f"  simulated time   {st.elapsed_us / 1e6:.4f} s  "
          f"({st.us_per_key:.3f} us/key)")
    print(f"  computation      {st.computation_per_key:.3f} us/key")
    print(f"  communication    {st.communication_per_key:.3f} us/key")
    print(f"  remaps R = {st.remaps}   volume V = {st.volume_per_proc:,}/proc   "
          f"messages M = {st.messages_per_proc:,}/proc")
    return 0


def _cmd_schedule(args) -> int:
    from repro.layouts import smart_schedule
    from repro.viz import render_schedule_map

    sched = smart_schedule(args.keys, args.procs)
    print(sched.describe())
    print()
    print(render_schedule_map(sched))
    print()
    print(f"volume  V = {sched.volume_per_processor():,} elements/processor")
    print(f"messages M = {sched.messages_per_processor():,} per processor")
    return 0


def _cmd_predict(args) -> int:
    from repro.theory import predict

    print(f"predicted busy time, N={args.keys:,} keys on P={args.procs} "
          f"(Meiko CS-2 model):")
    for algo in ("smart", "cyclic-blocked", "blocked-merge"):
        pt = predict(algo, args.keys, args.procs)
        print(f"  {algo:<16} {pt.us_per_key:7.3f} us/key  "
              f"(comp {pt.computation / pt.n:.3f}, comm {pt.communication / pt.n:.3f})")
    return 0


def _cmd_gantt(args) -> int:
    from repro.sorts import (
        BlockedMergeBitonicSort,
        ColumnSort,
        CyclicBlockedBitonicSort,
        ParallelRadixSort,
        ParallelSampleSort,
        SmartBitonicSort,
    )
    from repro.utils.rng import make_keys
    from repro.viz import render_gantt

    algos = {
        "smart": SmartBitonicSort,
        "smart-unfused": lambda: SmartBitonicSort(fused=False),
        "cyclic-blocked": CyclicBlockedBitonicSort,
        "blocked-merge": BlockedMergeBitonicSort,
        "radix": ParallelRadixSort,
        "sample": ParallelSampleSort,
        "column": ColumnSort,
    }
    if args.algorithm not in algos:
        print(f"unknown algorithm {args.algorithm!r}; choose from {sorted(algos)}",
              file=sys.stderr)
        return 2
    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    res = algos[args.algorithm]().run(keys, args.procs, verify=True, trace=True)
    print(render_gantt(res.traces, width=args.width))
    print(f"\nmakespan {res.stats.elapsed_us / 1e3:.2f} ms simulated "
          f"({res.stats.us_per_key:.3f} us/key)")
    return 0


def _cmd_fft(args) -> int:
    import numpy as np

    from repro.fft import ParallelFFT

    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=args.points) + 1j * rng.normal(size=args.points)
    res = ParallelFFT().run(x, args.procs, verify=True)
    st = res.stats
    print(f"parallel FFT of {args.points:,} points on {args.procs} processors "
          f"— verified against np.fft.fft")
    print(f"  remaps R = {st.remaps}   volume V = {st.volume_per_proc:,} "
          f"points/proc   {st.us_per_key:.3f} simulated us/point")
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultPlan, run_chaos_sort
    from repro.utils.rng import make_keys

    plan = FaultPlan(
        seed=args.seed,
        drop=args.drop,
        duplicate=args.duplicate,
        corrupt=args.corrupt,
        delay=args.delay,
        crash_rank=args.crash_rank,
        crash_phase=args.crash_phase,
    )
    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    report = run_chaos_sort(
        keys,
        args.procs,
        plan,
        max_restarts=args.max_restarts,
        timeout=args.timeout,
        checkpoint=not args.no_checkpoint,
        backend=args.backend,
    )
    print(report.describe())
    return 0


def _cmd_trace(args) -> int:
    from repro.api import sort
    from repro.errors import ReproError
    from repro.trace import write_chrome_trace
    from repro.utils.rng import make_keys

    keys = make_keys(args.keys, distribution=args.distribution, seed=args.seed)
    options = None
    if args.no_fused or args.no_group or args.overlap:
        from repro.runtime import BackendOptions

        options = BackendOptions(
            fused=False if args.no_fused else None,
            grouped=False if args.no_group else None,
            overlap=True if args.overlap else None,
            chunks=args.chunks if args.overlap else None,
        )
    try:
        report = sort(
            keys,
            args.procs,
            algorithm=args.algorithm,
            backend=args.backend,
            trace=True,
            timeout=args.timeout,
            options=options,
        )
    except ReproError as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    write_chrome_trace(args.out, report.tracers)
    print(f"\nchrome trace written to {args.out} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_bench(args) -> int:
    from repro.errors import ConfigurationError
    from repro.harness.bench import run_bench, write_bench

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    sizes = (
        [int(s) for s in args.sizes.split(",") if s.strip()]
        if args.sizes
        else None
    )
    try:
        payload = run_bench(
            quick=args.quick,
            sizes=sizes,
            procs=args.procs,
            backends=backends,
            reps=args.reps,
            timeout=args.timeout,
        )
    except ConfigurationError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    write_bench(payload, args.out)
    host = payload["host"]
    print(f"benchmark trajectory written to {args.out}")
    print(f"  host: {host['cpu_count']} usable cores, numpy {host['numpy']}")
    for rec in payload["end_to_end"]:
        line = (f"  end-to-end {rec['backend']:>7} "
                f"[{rec.get('variant', 'default'):>13}] "
                f"{rec['keys']:>9,} keys "
                f"x {rec['procs']} ranks: {rec['best_s'] * 1e3:8.1f} ms best")
        phases = rec.get("phases") or {}
        total = sum(phases.values())
        if total > 0:
            top = sorted(phases.items(), key=lambda kv: -kv[1])[:3]
            line += "  [" + ", ".join(
                f"{name} {100.0 * us / total:.0f}%" for name, us in top
            ) + "]"
        print(line)
    for name, by_size in payload["end_to_end_speedup"].items():
        pretty = ", ".join(f"{int(k):,}: {v:.2f}x" for k, v in by_size.items())
        print(f"  speedup {name}: {pretty}")
    for kind in ("radix", "merge", "plan"):
        for rec in payload["kernels"][kind]:
            print(f"  kernel {kind:>5} {rec.get('keys', rec.get('shape'))}: "
                  f"{rec['speedup']:.2f}x vs legacy")
    service = payload.get("service", {})
    for backend, by_size in service.get("warm_over_cold", {}).items():
        pretty = ", ".join(f"{int(k):,}: {v:.2f}x" for k, v in by_size.items())
        print(f"  service warm-over-cold {backend}: {pretty}")
    if service.get("planner_points"):
        print(f"  planner matched best measured config on "
              f"{service['planner_matches']}/{service['planner_points']} "
              f"(backend, size) points")
    algos = service.get("algorithms", {})
    for backend, by_size in algos.get("sample_over_bitonic", {}).items():
        pretty = ", ".join(f"{int(k):,}: {v:.2f}x" for k, v in by_size.items())
        print(f"  sample-over-bitonic {backend} (warm, P="
              f"{algos.get('P')}): {pretty}")
    if algos.get("planner_points"):
        print(f"  planner routed the best measured algorithm on "
              f"{algos['planner_matches']}/{algos['planner_points']} "
              f"(backend, size) shapes")
    return 0


def _cmd_adapt_replay(args) -> int:
    """Record/replay proof of the online-adaptation loop: replay one
    load trace against a frozen-profile service and an adapting one,
    write the BENCH /7 ``adapted_over_static`` table, gate >= min."""
    from repro.harness.adapt_replay import (
        record_load_trace,
        run_adapt_replay,
        save_load_trace,
    )

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    if args.record_out:
        save_load_trace(
            record_load_trace(args.requests, sizes, args.seed),
            args.record_out,
        )
        print(f"load trace recorded to {args.record_out}")
    doc = run_adapt_replay(
        requests=args.requests,
        sizes=sizes,
        seed=args.seed,
        profile_path=args.profile,
        load_path=args.record_out or args.load,
        out=args.out,
        drift=not args.no_drift,
    )
    ar = doc["adapt_replay"]
    ratio = ar["adapted_over_static"]
    print(f"adapt-replay written to {args.out}")
    for side in ("static", "adapted"):
        r = ar[side]
        mix = ", ".join(f"{k} x{v}" for k, v in r["decision_mix"].items())
        print(f"  {side:>7}: {r['requests']} requests, "
              f"sum wall {r['sum_wall_s'] * 1e3:.0f} ms, "
              f"p50 {r['p50_s'] * 1e3:.1f} ms, p99 {r['p99_s'] * 1e3:.1f} ms")
        print(f"           [{mix}]")
    adapt = ar["adapted"].get("adapt", {})
    print(f"  adapter: {adapt.get('updates', 0)} updates, "
          f"factors {adapt.get('factors', {})}, "
          f"overlap eff {adapt.get('overlap_efficiency', {})}")
    print(f"  adapted_over_static: {ratio:.3f}x "
          f"(gate: >= {args.min_ratio})")
    if ratio < args.min_ratio:
        print(f"adapt-replay: adapting service was slower than the frozen "
              f"one ({ratio:.3f}x < {args.min_ratio})", file=sys.stderr)
        return 1
    return 0


def _service_planner(profile_path):
    """A Planner for the CLI service commands: calibrated profile when
    one is given (or the default path exists), bench history when any
    ``BENCH_pr*.json`` is nearby."""
    from repro.service import BenchHistory, HostProfile, Planner

    profile = None
    if profile_path:
        profile = HostProfile.load(profile_path)
    return Planner(profile=profile, history=BenchHistory.load())


def _shm_segments() -> set:
    """Names of live SPMD shared-memory segments (procs arenas)."""
    import glob as _glob
    import os as _os

    if not _os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        return set()
    return {
        _os.path.basename(p) for p in _glob.glob("/dev/shm/rspmd*")
    }


def _spill_dirs() -> set:
    """Names of live external-sort spill directories (the disk twin of
    :func:`_shm_segments` for the soak leak gate)."""
    import os as _os

    from repro.extsort import live_spill_dirs

    return {_os.path.basename(p) for p in live_spill_dirs()}


def _parse_listen(spec: str):
    """``host:port`` / ``:port`` / ``port`` -> ``(host, int(port))``."""
    host, _, port = str(spec).rpartition(":")
    return (host or "127.0.0.1", int(port))


def _load_baseline(path, section):
    """One section of the committed soak baseline, or None."""
    import json
    import os

    if not path or not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh).get(section)


def _gate_percentiles(p50_s, p99_s, baseline, label) -> int:
    """Compare measured p50/p99 to the committed ceiling; 1 on breach."""
    if not baseline:
        return 0
    bad = 0
    for name, got in (("p50_s", p50_s), ("p99_s", p99_s)):
        ceiling = baseline.get(name)
        if ceiling is not None and got > ceiling:
            print(f"{label}: {name} {got:.3f}s exceeds the committed "
                  f"baseline ceiling {ceiling:.3f}s", file=sys.stderr)
            bad = 1
    return bad


def _cmd_listen(args) -> int:
    """Foreground networked service: ``serve --listen HOST:PORT``."""
    import time as _time

    from repro.errors import ReproError
    from repro.service import SortServer, SortService, WorldPool

    try:
        planner = _service_planner(args.profile)
        svc = SortService(
            planner,
            WorldPool(max_idle_per_key=args.worlds),
            queue_depth=args.queue_depth,
            batch_max=args.batch_max,
            timeout=args.timeout,
            memory_budget=args.memory_budget,
            disk_budget=args.disk_budget,
        )
        host, port = _parse_listen(args.listen)
        server = SortServer(svc, host, port, name=args.name,
                            own_service=True)
        addr = server.start()
    except (ReproError, OSError, ValueError) as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    print(f"shard {args.name!r} serving on {addr[0]}:{addr[1]} "
          "(ctrl-C to drain and stop)")
    try:
        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...")
    finally:
        server.close(drain=True)
    report = svc.report()
    print(report.describe())
    return 0


def _cmd_serve(args) -> int:
    """The service soak driver (the CI ``service-soak`` job runs this):
    push a mixed-shape request stream through a small warm pool, verify
    every output, export sampled per-request traces, and fail loudly on
    any leaked process or shared-memory segment."""
    import multiprocessing
    import os

    from repro.errors import AdmissionError, ReproError
    from repro.service import SortService, WorldPool
    from repro.utils.rng import make_keys

    if args.listen:
        return _cmd_listen(args)
    try:
        planner = _service_planner(args.profile)
    except ReproError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    shm_before = _shm_segments()
    spill_before = _spill_dirs()
    # The mixed request shapes: every (size, backend, P) combination the
    # soak cycles through.  P >= 2 shapes exercise real communication;
    # the P chosen freely by the planner exercises the planner.
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    shapes = []
    for size in sizes:
        for backend in backends:
            shapes.append((size, backend, 2))
            shapes.append((size, backend, 4))
            shapes.append((size, backend, None))  # planner's choice of P
    failures = 0
    traced = 0
    rng_seed = 0
    pool = WorldPool(max_idle_per_key=args.worlds)
    svc = SortService(
        planner,
        pool,
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        timeout=args.timeout,
        memory_budget=args.memory_budget,
        disk_budget=args.disk_budget,
    )
    if args.traces_dir:
        os.makedirs(args.traces_dir, exist_ok=True)
    inflight = []  # sliding window of (ticket, keys, trace_path)
    try:
        for i in range(args.requests):
            size, backend, P = shapes[i % len(shapes)]
            keys = make_keys(size, seed=rng_seed)
            rng_seed += 1
            trace_path = None
            if (
                args.traces_dir
                and args.trace_every
                and i % args.trace_every == 0
                and (P or 0) >= 2
            ):
                trace_path = os.path.join(
                    args.traces_dir, f"request_{i:04d}.json"
                )
            while True:
                try:
                    t = svc.submit(
                        keys, backend=backend, P=P,
                        trace=trace_path is not None,
                    )
                    break
                except AdmissionError:
                    # Queue full: drain the oldest inflight request and
                    # resubmit — the soak applies backpressure instead
                    # of shedding its own load.
                    if not inflight:
                        raise
                    failures += _drain(inflight.pop(0), args)
            inflight.append((t, keys, trace_path))
            if len(inflight) >= args.queue_depth:
                failures += _drain(inflight.pop(0), args)
        while inflight:
            failures += _drain(inflight.pop(0), args)
        traced = sum(
            1 for name in os.listdir(args.traces_dir)
            if name.startswith("request_")
        ) if args.traces_dir else 0
    finally:
        svc.close()
    report = svc.report()
    print(report.describe())
    if traced:
        print(f"  {traced} per-request traces in {args.traces_dir}/")
    # Leak gates: every world closed means every child reaped and every
    # arena unlinked.
    children = multiprocessing.active_children()
    shm_leaked = _shm_segments() - shm_before
    spill_leaked = _spill_dirs() - spill_before
    if children:
        print(f"LEAK: {len(children)} child processes still alive: "
              f"{[p.name for p in children]}", file=sys.stderr)
    if shm_leaked:
        print(f"LEAK: {len(shm_leaked)} shared-memory segments left in "
              f"/dev/shm: {sorted(shm_leaked)[:8]}", file=sys.stderr)
    if spill_leaked:
        print(f"LEAK: {len(spill_leaked)} spill directories left on "
              f"disk: {sorted(spill_leaked)[:8]}", file=sys.stderr)
    p50 = report.latency_percentile(0.50)
    p99 = report.latency_percentile(0.99)
    print(f"  latency p50 {p50 * 1e3:.1f} ms   p99 {p99 * 1e3:.1f} ms")
    slow = _gate_percentiles(
        p50, p99, _load_baseline(args.baseline, "service_soak"), "soak"
    )
    if (failures or children or shm_leaked or spill_leaked
            or report.failed or slow):
        print(f"soak FAILED: {failures} bad outputs, {report.failed} "
              f"failed requests, {len(children)} leaked processes, "
              f"{len(shm_leaked)} leaked segments, {len(spill_leaked)} "
              f"leaked spill dirs, {slow} latency-gate breaches",
              file=sys.stderr)
        return 1
    print(f"soak ok: {report.served} requests served, zero leaks")
    return 0


def _drain(entry, args) -> int:
    """Await one soak request; verify its output; write its trace.
    Returns 1 on a bad output, 0 otherwise."""
    import numpy as np

    from repro.trace import write_chrome_trace

    ticket, keys, trace_path = entry
    try:
        outcome = ticket.result(args.timeout)
    except Exception as exc:  # noqa: BLE001 — count and continue the soak
        print(f"request {ticket.request_id} failed: {exc}", file=sys.stderr)
        return 1
    if not np.array_equal(outcome.sorted_keys, np.sort(keys)):
        print(f"request {ticket.request_id}: WRONG OUTPUT", file=sys.stderr)
        return 1
    if trace_path and outcome.tracers:
        write_chrome_trace(trace_path, outcome.tracers)
    return 0


def _cmd_submit(args) -> int:
    """One request through a fresh service: plan, run, explain.  With
    ``--connect`` the request goes over the wire instead."""
    from repro.errors import ReproError
    from repro.service import SortService
    from repro.trace import write_chrome_trace
    from repro.utils.rng import make_keys

    keys = make_keys(args.keys, distribution=args.distribution,
                     seed=args.seed)
    if args.connect:
        return _submit_remote(args, keys)
    try:
        planner = _service_planner(args.profile)
        with SortService(
            planner, verify=True, timeout=args.timeout,
            memory_budget=args.memory_budget,
        ) as svc:
            outcome = svc.sort(
                keys,
                algorithm=(
                    None if args.algorithm in (None, "auto")
                    else args.algorithm
                ),
                backend=args.backend,
                P=args.procs,
                trace=args.trace is not None,
                memory_budget=args.memory_budget,
            )
    except ReproError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(outcome.decision.explain())
    if args.memory_budget is not None:
        # The regime split at this budget: where the planner stops
        # placing worlds and starts spilling.
        print(f"planner decision table at a {args.memory_budget:,}-byte "
              "memory budget:")
        print(planner.decision_table(memory_budget=args.memory_budget))
    print(f"sorted {keys.size:,} keys in {outcome.wall_s * 1e3:.1f} ms "
          f"({outcome.queue_wait_s * 1e3:.2f} ms queued, "
          f"{outcome.run_s * 1e3:.1f} ms running), verified")
    if args.trace and outcome.tracers:
        write_chrome_trace(args.trace, outcome.tracers)
        print(f"per-request trace written to {args.trace}")
    return 0


def _submit_remote(args, keys) -> int:
    """``submit --connect``: one request over the wire, typed end to end."""
    import numpy as np

    from repro.errors import ReproError
    from repro.service import SortClient
    from repro.trace import write_chrome_trace

    try:
        with SortClient(_parse_listen(args.connect)) as client:
            out = client.sort(
                keys,
                deadline_s=args.deadline,
                tenant=args.tenant,
                algorithm=args.algorithm,
                backend=args.backend,
                P=args.procs,
                trace=args.trace is not None,
            )
    except ReproError as exc:
        print(f"submit failed ({type(exc).__name__}): {exc}",
              file=sys.stderr)
        return 1
    verified = np.array_equal(out.sorted_keys, np.sort(keys))
    srv = out.server
    print(f"shard {out.shard!r} sorted {keys.size:,} keys in "
          f"{out.wall_s * 1e3:.1f} ms wall "
          f"({srv.get('queue_wait_s', 0.0) * 1e3:.2f} ms queued, "
          f"{srv.get('run_s', 0.0) * 1e3:.1f} ms running "
          f"{srv.get('algorithm', 'smart')} on "
          f"{srv.get('backend')} x {srv.get('P')}), "
          f"{out.attempts} attempt(s), "
          f"{'shm' if out.via_shm else 'frame'} payload, "
          f"{'verified' if verified else 'WRONG OUTPUT'}")
    if args.trace and out.tracer is not None:
        write_chrome_trace(args.trace, [out.tracer])
        print(f"network trace written to {args.trace}")
    return 0 if verified else 1


def _cmd_chaos_serve(args) -> int:
    """The serving layer's adversarial soak (the CI ``chaos-serve`` job):
    several networked shards behind a health-checked router, concurrent
    multi-tenant clients, deterministic frame faults, and one shard
    killed mid-run.  Every request must end accounted — sorted
    correctly (failover allowed) or failed with a typed error — with
    zero leaks and p50/p99 inside the committed baseline."""
    import multiprocessing
    import threading
    import time as _time

    import numpy as np

    from repro.errors import ReproError
    from repro.faults import FaultPlan, NetFaultInjector
    from repro.service import (
        ShardRouter,
        SortClient,
        SortServer,
        SortService,
        WorldPool,
    )
    from repro.service.net import shm_segments as _net_shm
    from repro.utils.rng import make_keys

    try:
        planner = _service_planner(args.profile)
    except ReproError as exc:
        print(f"chaos-serve failed: {exc}", file=sys.stderr)
        return 1
    shm_before = _shm_segments() | _net_shm()
    plan = FaultPlan(seed=args.seed, drop=args.drop, corrupt=args.corrupt,
                     delay=args.delay)
    injector = NetFaultInjector(plan)
    servers = []
    shards = {}
    for s in range(args.shards):
        svc = SortService(
            planner,
            WorldPool(max_idle_per_key=1),
            queue_depth=args.queue_depth,
            batch_max=args.batch_max,
            timeout=args.timeout,
        )
        name = f"shard{s}"
        server = SortServer(svc, name=name, faults=injector,
                            own_service=True)
        addr = server.start()
        servers.append(server)
        shards[name] = SortClient(
            addr, retries=args.retries, timeout_s=args.attempt_timeout,
            name=f"cli-{name}",
        )
    router = ShardRouter(shards, eject_after=2, cooldown_s=1.0,
                         health_interval_s=0.25)
    router.start_health_checks()

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    tenants = [f"tenant{t}" for t in range(max(1, args.tenants))]
    total = args.requests
    per_worker = [total // args.clients] * args.clients
    for i in range(total % args.clients):
        per_worker[i] += 1
    results = []  # (verdict, wall_s, failovers) — one row per request
    lock = threading.Lock()

    def worker(wid: int, count: int) -> None:
        base = sum(per_worker[:wid])
        for i in range(count):
            idx = base + i
            keys = make_keys(sizes[idx % len(sizes)], seed=idx)
            t0 = _time.monotonic()
            try:
                out = router.sort(
                    keys,
                    deadline_s=args.deadline,
                    tenant=tenants[wid % len(tenants)],
                    backend="threads",
                    P=2,
                )
                verdict = (
                    "ok"
                    if np.array_equal(out.sorted_keys, np.sort(keys))
                    else "WRONG-OUTPUT"
                )
                row = (verdict, _time.monotonic() - t0, out.failovers)
            except ReproError as exc:
                row = (type(exc).__name__, _time.monotonic() - t0, 0)
            except Exception as exc:  # noqa: BLE001 — untyped = a bug
                row = (f"UNTYPED:{type(exc).__name__}",
                       _time.monotonic() - t0, 0)
            with lock:
                results.append(row)

    workers = [
        threading.Thread(target=worker, args=(w, per_worker[w]),
                         name=f"chaos-client-{w}")
        for w in range(args.clients)
    ]
    started_at = _time.monotonic()
    for t in workers:
        t.start()
    killed = None
    if not args.no_kill and args.shards > 1:
        # Kill the last shard once roughly half the load has landed.
        while _time.monotonic() - started_at < args.timeout:
            with lock:
                done = len(results)
            if done >= total // 2:
                break
            _time.sleep(0.05)
        killed = servers[-1].name
        print(f"killing {killed} mid-soak "
              f"({len(results)}/{total} requests resolved)...")
        servers[-1].kill()
    for t in workers:
        t.join()
    router.close()
    for client in shards.values():
        client.close()
    for server in servers:
        server.close(drain=True)

    # -- accounting: zero silent losses -------------------------------
    ok = [r for r in results if r[0] == "ok"]
    wrong = [r for r in results if r[0] == "WRONG-OUTPUT"]
    untyped = [r for r in results if r[0].startswith("UNTYPED")]
    typed = [
        r for r in results
        if r[0] not in ("ok", "WRONG-OUTPUT")
        and not r[0].startswith("UNTYPED")
    ]
    lost = total - len(results)
    failovers = sum(r[2] for r in ok)
    walls = sorted(r[1] for r in ok) or [0.0]
    p50 = walls[int(round(0.50 * (len(walls) - 1)))]
    p99 = walls[int(round(0.99 * (len(walls) - 1)))]
    by_error = {}
    for r in typed:
        by_error[r[0]] = by_error.get(r[0], 0) + 1
    print(f"chaos-serve: {total} requests via {args.clients} clients x "
          f"{len(tenants)} tenants over {args.shards} shards"
          + (f" (killed {killed})" if killed else ""))
    print(f"  completed {len(ok)} ({failovers} failovers), typed "
          f"failures {len(typed)} {by_error or ''}, wrong {len(wrong)}, "
          f"untyped {len(untyped)}, unaccounted {lost}")
    print(f"  fault verdicts: {injector.stats.as_dict()}")
    print(f"  latency p50 {p50 * 1e3:.1f} ms   p99 {p99 * 1e3:.1f} ms")
    children = multiprocessing.active_children()
    shm_leaked = (_shm_segments() | _net_shm()) - shm_before
    slow = _gate_percentiles(
        p50, p99, _load_baseline(args.baseline, "chaos_serve"),
        "chaos-serve",
    )
    bad = (
        lost or wrong or untyped or children or shm_leaked or slow
        or not ok
    )
    if children:
        print(f"LEAK: {len(children)} child processes: "
              f"{[p.name for p in children]}", file=sys.stderr)
    if shm_leaked:
        print(f"LEAK: {len(shm_leaked)} shm segments: "
              f"{sorted(shm_leaked)[:8]}", file=sys.stderr)
    if bad:
        print("chaos-serve FAILED: "
              f"{lost} unaccounted, {len(wrong)} wrong, "
              f"{len(untyped)} untyped, {len(children)} leaked procs, "
              f"{len(shm_leaked)} leaked segments, {slow} latency "
              "breaches", file=sys.stderr)
        return 1
    print("chaos-serve ok: every request accounted (completed or typed), "
          "zero leaks")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bitonic",
        description=(
            "Reproduction of 'Optimizing Parallel Bitonic Sort' "
            "(Ionescu & Schauser, IPPS 1997) on a LogGP-simulated machine."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("experiment", help="reproduce a paper table/figure")
    p_exp.add_argument("id", help="experiment id, 'all', or 'list'")
    p_exp.add_argument("--full", action="store_true",
                       help="the paper's full sizes (slow)")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_sort = sub.add_parser("sort", help="run one parallel sort")
    p_sort.add_argument("--keys", type=int, default=1 << 20)
    p_sort.add_argument("--procs", type=int, default=32)
    p_sort.add_argument("--algorithm", default="smart")
    p_sort.add_argument("--messages", choices=("long", "short"), default="long")
    p_sort.add_argument("--unfused", action="store_true")
    p_sort.add_argument("--distribution", default="uniform")
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.set_defaults(fn=_cmd_sort)

    p_sched = sub.add_parser("schedule", help="print a smart remap schedule")
    p_sched.add_argument("--keys", type=int, default=256)
    p_sched.add_argument("--procs", type=int, default=16)
    p_sched.set_defaults(fn=_cmd_schedule)

    p_pred = sub.add_parser("predict", help="closed-form time predictions")
    p_pred.add_argument("--keys", type=int, default=1 << 25)
    p_pred.add_argument("--procs", type=int, default=32)
    p_pred.set_defaults(fn=_cmd_predict)

    p_gantt = sub.add_parser("gantt", help="trace a sort and render its timeline")
    p_gantt.add_argument("--keys", type=int, default=1 << 17)
    p_gantt.add_argument("--procs", type=int, default=8)
    p_gantt.add_argument("--algorithm", default="smart")
    p_gantt.add_argument("--distribution", default="uniform")
    p_gantt.add_argument("--width", type=int, default=100)
    p_gantt.add_argument("--seed", type=int, default=0)
    p_gantt.set_defaults(fn=_cmd_gantt)

    p_chaos = sub.add_parser(
        "chaos", help="run the SPMD sort through an adversarial network"
    )
    p_chaos.add_argument("--keys", type=int, default=1 << 12)
    p_chaos.add_argument("--procs", type=int, default=4)
    p_chaos.add_argument("--drop", type=float, default=0.05,
                         help="per-message drop probability")
    p_chaos.add_argument("--duplicate", type=float, default=0.0)
    p_chaos.add_argument("--corrupt", type=float, default=0.0)
    p_chaos.add_argument("--delay", type=float, default=0.0)
    p_chaos.add_argument("--crash-rank", type=int, default=None,
                         help="rank to kill once (recovers from checkpoints)")
    p_chaos.add_argument("--crash-phase", type=int, default=1,
                         help="phase index at which --crash-rank dies")
    p_chaos.add_argument("--max-restarts", type=int, default=2)
    p_chaos.add_argument("--timeout", type=float, default=60.0)
    p_chaos.add_argument("--no-checkpoint", action="store_true",
                         help="disable phase-level checkpoint/restart")
    p_chaos.add_argument("--distribution", default="uniform")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--backend", default="threads",
                         help="SPMD runtime backend (fault injection needs "
                              "'threads'; others require a null fault plan)")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_bench = sub.add_parser(
        "bench", help="benchmark backends and kernels, write trajectory JSON"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-smoke sizes and repetitions")
    p_bench.add_argument("--out", default="BENCH.json",
                         help="output JSON path")
    p_bench.add_argument("--sizes", default=None,
                         help="comma-separated key counts (default by mode)")
    p_bench.add_argument("--procs", type=int, default=8)
    p_bench.add_argument("--backends", default="threads,procs",
                         help="comma-separated runtime backends to compare")
    p_bench.add_argument("--reps", type=int, default=None,
                         help="timed repetitions per measurement")
    p_bench.add_argument("--timeout", type=float, default=300.0,
                         help="per-world SPMD timeout in seconds")
    p_bench.set_defaults(fn=_cmd_bench)

    p_ar = sub.add_parser(
        "adapt-replay",
        help="record a load trace, replay it against a frozen-profile "
             "service and an adapting one, gate adapted_over_static",
    )
    p_ar.add_argument("--requests", type=int, default=200,
                      help="requests in a freshly recorded load trace")
    p_ar.add_argument("--sizes", default="4096,16384",
                      help="comma-separated key counts in the trace")
    p_ar.add_argument("--seed", type=int, default=0)
    p_ar.add_argument("--out", default="BENCH_adapt.json",
                      help="BENCH /7 output JSON path")
    p_ar.add_argument("--record-out", default=None,
                      help="also persist the recorded load trace here "
                           "(and replay exactly that file)")
    p_ar.add_argument("--load", default=None,
                      help="replay a previously recorded load trace "
                           "instead of recording a fresh one")
    p_ar.add_argument("--profile", default=None,
                      help="calibrated host profile JSON to start from")
    p_ar.add_argument("--no-drift", action="store_true",
                      help="replay against the undrifted profile (checks "
                           "the adapter does no harm when the model is "
                           "already right)")
    p_ar.add_argument("--min-ratio", type=float, default=1.0,
                      help="fail when adapted_over_static falls below this")
    p_ar.set_defaults(fn=_cmd_adapt_replay)

    p_trace = sub.add_parser(
        "trace",
        help="run the SPMD sort traced; print the phase table, write a "
             "Chrome-trace timeline",
    )
    p_trace.add_argument("--keys", type=int, default=1 << 18)
    p_trace.add_argument("--procs", type=int, default=4)
    p_trace.add_argument("--algorithm", default="smart",
                         choices=("smart", "sample"),
                         help="SPMD sort to trace (sample ignores the "
                              "fused/group/overlap flags)")
    p_trace.add_argument("--backend", default="threads",
                         choices=("threads", "procs"),
                         help="SPMD runtime backend to trace")
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome-trace JSON output path")
    p_trace.add_argument("--distribution", default="uniform")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--timeout", type=float, default=120.0)
    p_trace.add_argument("--no-fused", action="store_true",
                         help="disable the fused pack/transfer/unpack "
                              "collective (run the classic 3-phase remap)")
    p_trace.add_argument("--no-group", action="store_true",
                         help="disable Lemma-4 group-scoped exchanges "
                              "(every remap synchronizes the whole world)")
    p_trace.add_argument("--overlap", action="store_true",
                         help="run each remap as the chunked nonblocking "
                              "pipeline (overlap transfer with unpack/merge)")
    p_trace.add_argument("--chunks", type=int, default=4,
                         help="chunks per overlapped remap (with --overlap)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="soak the persistent sort service: a mixed-shape request "
             "stream through a warm world pool, with leak gates",
    )
    p_serve.add_argument("--requests", type=int, default=200,
                         help="total requests to push through the service")
    p_serve.add_argument("--worlds", type=int, default=2,
                         help="idle worlds retained per (backend, P) shape")
    p_serve.add_argument("--sizes", default="4096,16384",
                         help="comma-separated request key counts")
    p_serve.add_argument("--backends", default="threads,procs",
                         help="comma-separated SPMD backends to cycle")
    p_serve.add_argument("--queue-depth", type=int, default=16)
    p_serve.add_argument("--batch-max", type=int, default=8)
    p_serve.add_argument("--timeout", type=float, default=120.0)
    p_serve.add_argument("--trace-every", type=int, default=25,
                         help="trace every Nth request (0 disables)")
    p_serve.add_argument("--traces-dir", default=None,
                         help="directory for sampled per-request "
                              "Chrome traces")
    p_serve.add_argument("--profile", default=None,
                         help="calibrated host profile JSON "
                              "(scripts/calibrate_loggp.py)")
    p_serve.add_argument("--baseline", default=None,
                         help="committed soak baseline JSON "
                              "(SOAK_BASELINE.json); gates p50/p99")
    p_serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                         help="serve over the wire in the foreground "
                              "instead of running the soak")
    p_serve.add_argument("--name", default="shard0",
                         help="shard name reported on the wire "
                              "(with --listen)")
    p_serve.add_argument("--memory-budget", type=int, default=None,
                         metavar="BYTES",
                         help="per-request in-memory working-set budget; "
                              "oversized requests degrade to the "
                              "out-of-core external sort")
    p_serve.add_argument("--disk-budget", type=int, default=None,
                         metavar="BYTES",
                         help="spill-bytes ceiling for degraded requests; "
                              "requests that cannot fit even on disk are "
                              "rejected with MemoryBudgetError")
    p_serve.set_defaults(fn=_cmd_serve)

    p_cserve = sub.add_parser(
        "chaos-serve",
        help="adversarial serving soak: networked shards, router "
             "failover, frame faults, a mid-run shard kill, and "
             "zero-silent-loss accounting",
    )
    p_cserve.add_argument("--shards", type=int, default=2,
                          help="networked shard servers to run")
    p_cserve.add_argument("--clients", type=int, default=8,
                          help="concurrent client threads")
    p_cserve.add_argument("--requests", type=int, default=200,
                          help="total requests across all clients")
    p_cserve.add_argument("--tenants", type=int, default=2,
                          help="distinct tenants the clients cycle")
    p_cserve.add_argument("--sizes", default="2048,8192",
                          help="comma-separated request key counts")
    p_cserve.add_argument("--drop", type=float, default=0.05,
                          help="per-frame drop probability")
    p_cserve.add_argument("--corrupt", type=float, default=0.05,
                          help="per-frame corruption probability")
    p_cserve.add_argument("--delay", type=float, default=0.0,
                          help="per-frame delay probability")
    p_cserve.add_argument("--deadline", type=float, default=60.0,
                          help="per-request deadline (seconds)")
    p_cserve.add_argument("--retries", type=int, default=4,
                          help="client wire retries per request")
    p_cserve.add_argument("--attempt-timeout", type=float, default=3.0,
                          help="client per-attempt socket budget")
    p_cserve.add_argument("--queue-depth", type=int, default=16)
    p_cserve.add_argument("--batch-max", type=int, default=4)
    p_cserve.add_argument("--timeout", type=float, default=120.0,
                          help="service dispatch timeout / kill-wait cap")
    p_cserve.add_argument("--no-kill", action="store_true",
                          help="do not kill a shard mid-soak")
    p_cserve.add_argument("--seed", type=int, default=0)
    p_cserve.add_argument("--profile", default=None,
                          help="calibrated host profile JSON")
    p_cserve.add_argument("--baseline", default=None,
                          help="committed soak baseline JSON; gates "
                               "p50/p99")
    p_cserve.set_defaults(fn=_cmd_chaos_serve)

    p_submit = sub.add_parser(
        "submit", help="run one request through the sort service"
    )
    p_submit.add_argument("--keys", type=int, default=1 << 16)
    p_submit.add_argument("--algorithm", default="auto",
                          choices=("auto", "smart", "sample", "external"),
                          help="sort algorithm; 'auto' lets the planner "
                               "route between them, 'external' forces "
                               "the out-of-core spill-to-disk path")
    p_submit.add_argument("--procs", type=int, default=None,
                          help="force the world size (default: planner)")
    p_submit.add_argument("--backend", default=None,
                          choices=("threads", "procs"),
                          help="force the backend (default: planner)")
    p_submit.add_argument("--trace", default=None,
                          help="write the per-request Chrome trace here")
    p_submit.add_argument("--profile", default=None,
                          help="calibrated host profile JSON")
    p_submit.add_argument("--distribution", default="uniform")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--timeout", type=float, default=120.0)
    p_submit.add_argument("--connect", default=None, metavar="HOST:PORT",
                          help="send the request to a running "
                               "'serve --listen' server over the wire")
    p_submit.add_argument("--deadline", type=float, default=None,
                          help="end-to-end deadline for --connect "
                               "(propagates to shard admission and "
                               "dispatch)")
    p_submit.add_argument("--tenant", default=None,
                          help="tenant label for --connect (admission "
                               "fairness)")
    p_submit.add_argument("--memory-budget", type=int, default=None,
                          metavar="BYTES",
                          help="in-memory working-set budget; requests "
                               "whose working set exceeds it degrade to "
                               "the out-of-core external sort")
    p_submit.set_defaults(fn=_cmd_submit)

    p_fft = sub.add_parser("fft", help="run the parallel FFT generalization")
    p_fft.add_argument("--points", type=int, default=1 << 16)
    p_fft.add_argument("--procs", type=int, default=16)
    p_fft.add_argument("--seed", type=int, default=0)
    p_fft.set_defaults(fn=_cmd_fft)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `repro-bitonic table5.1` == `repro-bitonic experiment table5.1`.
    known = {"experiment", "sort", "schedule", "predict", "fft", "gantt",
             "chaos", "bench", "trace", "serve", "submit", "chaos-serve",
             "adapt-replay", "-h", "--help"}
    if argv and argv[0] not in known:
        argv = ["experiment"] + argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
