"""The benchmark trajectory harness.

Every performance PR needs a baseline to beat and a record that it beat
it.  :func:`run_bench` measures, on the *host* clock (not the simulated
one):

* **end-to-end** — the real SPMD sorts
  (:func:`~repro.runtime.spmd_bitonic_sort` and
  :func:`~repro.runtime.spmd_sample_sort`) across runtime backends,
  problem sizes, and variants (fused + group-scoped collectives, the
  same run as the chunked nonblocking overlap pipeline, the unfused
  world-wide baseline, and the splitter-driven sample sort),
  cross-checking that every backend × variant produces byte-identical
  output;
* **kernel hot paths** — the local radix sort and the batched bitonic
  merge, each timed against its *legacy* implementation (kept here,
  verbatim, for honest A/B comparison), plus cold-vs-cached remap-plan
  construction;
* **per-phase breakdown** — one extra *traced* (untimed) run per backend
  and size attaches exclusive per-category µs and the world-summed trace
  counters to each end-to-end record, so a perf PR can claim it moved a
  *specific* phase, not just the total.  The timed repetitions themselves
  run untraced — tracing never touches the numbers;
* **service warm vs cold** — the same request through a running
  :class:`~repro.service.SortService` (warm world pool, candidate-P
  sweep) against the cold spawn-per-call front door, with a planner
  audit: does the LogGP planner's chosen ``P`` match the best measured
  one per ``(backend, N)`` point?

The result is a machine-readable JSON document (``BENCH_pr<k>.json`` at
the repo root by convention) with enough host metadata (CPU count,
platform, library versions) to interpret the numbers later: a speedup
measured on a single-core container is not the speedup of the README.
``repro-bitonic bench`` is the CLI face; ``--quick`` shrinks sizes and
repetitions for CI smoke use.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.layouts.schedule import smart_schedule
from repro.localsort.bitonic_merge_sort import batched_bitonic_merge
from repro.localsort.radix import num_passes, radix_sort
from repro.remap.cache import RemapPlanCache
from repro.remap.plan import build_remap_plan
from repro.runtime import run_spmd, spmd_bitonic_sort, spmd_sample_sort
from repro.trace import Tracer, build_phase_report
from repro.utils.rng import make_keys

__all__ = ["run_bench", "write_bench", "BENCH_SCHEMA"]

#: /2 added the per-record ``phases`` + ``trace_counters`` breakdown;
#: /3 added the per-record communication ``variant`` (``fused`` /
#: ``grouped`` flags) and the ``fused_over_unfused`` speedup table;
#: /4 added the ``service`` section: warm-pool vs cold-spawn latency per
#: backend and size (with a candidate-P sweep), the ``warm_over_cold``
#: speedup table, and the planner-vs-measured ``planner_matches`` tally;
#: /5 added the overlapped-communication variant (``overlap`` /
#: ``chunks`` flags, per-record measured ``wait_split``) and the
#: ``overlap_over_sync`` speedup tables;
#: /6 added the per-record ``algorithm`` field, the SPMD sample-sort
#: variant, the ``sample_over_bitonic`` crossover tables, and the
#: service section's cross-algorithm planner audit;
#: /7 added the optional ``adapt_replay`` section (record/replay of a
#: load trace against a frozen-profile service vs an adapting one, with
#: the ``adapted_over_static`` speedup CI gates at >= 1.0) — a /7 doc
#: carries *either* the end-to-end trajectory sections *or* the
#: adapt-replay section, and ``scripts/check_trace.py`` gates whichever
#: is present;
#: /8 added the out-of-core tier: the ``external`` section (spill-to-disk
#: external sort timed at budgets forcing 1 and several merge passes,
#: against the unconstrained in-memory local sort on the same keys) and
#: the ``external_over_inmem`` crossover table CI checks for presence and
#: positivity — where spilling starts to pay is the data, not a floor.
BENCH_SCHEMA = "repro-bitonic-bench/8"

#: World sizes the service section sweeps when measuring warm latency
#: (and the planner's candidate set for the match tally).
SERVICE_CANDIDATE_P = (1, 2, 4)

#: Chunks per overlapped remap in the overlap variant (the sort's own
#: default; the per-chunk 64-element clamp still applies).
BENCH_CHUNKS = 4

#: The variants every backend is benchmarked under
#: (``name, algorithm, fused, grouped, overlap``): the default fused +
#: group-scoped synchronous bitonic path, the same path run as the
#: chunked nonblocking pipeline, the unfused world-wide baseline both
#: replaced, and the splitter-driven sample sort (one redistribution;
#: the bitonic schedule flags do not apply to it).
BENCH_VARIANTS = (
    ("fused+group", "smart", True, True, False),
    ("overlap+chunked", "smart", True, True, True),
    ("unfused+world", "smart", False, False, False),
    ("sample", "sample", True, True, False),
)


# -- legacy kernels, kept verbatim for A/B ---------------------------------


def _legacy_radix_sort(keys, *, ascending=True, key_bits=32, radix_bits=8):
    """The pre-optimization radix sort: stable ``argsort`` per digit."""
    out = keys.copy()
    digit_mask = (1 << radix_bits) - 1
    for p in range(num_passes(key_bits, radix_bits)):
        shift = p * radix_bits
        digit = (out >> shift) & out.dtype.type(digit_mask)
        out = out[np.argsort(digit, kind="stable")]
    if not ascending:
        out = out[::-1].copy()
    return out


def _legacy_batched_merge(m, ascending, axis=1):
    """The pre-optimization batched merge: transposes (full copies) around
    the butterfly for ``axis=0``."""
    work = m.T.copy() if axis == 0 else m.copy()
    lanes, length = work.shape
    asc = np.broadcast_to(np.asarray(ascending, dtype=bool), (lanes,))
    asc_col = asc[:, None]
    size = length
    while size > 1:
        half = size // 2
        blocks = work.reshape(lanes, length // size, size)
        lo = blocks[:, :, :half]
        hi = blocks[:, :, half:]
        small = np.minimum(lo, hi)
        big = np.maximum(lo, hi)
        asc_blk = asc_col[:, :, None]
        lo[...] = np.where(asc_blk, small, big)
        hi[...] = np.where(asc_blk, big, small)
        size = half
    return work.T.copy() if axis == 0 else work


# -- timing ----------------------------------------------------------------


def _time(fn: Callable[[], Any], reps: int) -> Dict[str, float]:
    """Best-of and mean wall-clock seconds over ``reps`` calls (after one
    untimed warmup, which also absorbs lazy allocations and caches)."""
    fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "best_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "reps": reps,
    }


def _bench_end_to_end(
    sizes: Sequence[int],
    procs: int,
    backends: Sequence[str],
    reps: int,
    timeout: float,
) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    for N in sizes:
        keys = make_keys(N, seed=N % 104729)
        n = N // procs

        def rank_sort(c, algorithm, fused, grouped, overlap):
            shard = keys[c.rank * n : (c.rank + 1) * n]
            if algorithm == "sample":
                return spmd_sample_sort(c, shard)
            return spmd_bitonic_sort(
                c, shard, fused=fused, grouped=grouped,
                overlap=overlap, chunks=BENCH_CHUNKS,
            )

        def sort_on(
            backend: str, algorithm: str, fused: bool, grouped: bool,
            overlap: bool,
        ) -> np.ndarray:
            def prog(c):
                return rank_sort(c, algorithm, fused, grouped, overlap)

            return np.concatenate(
                run_spmd(procs, prog, backend=backend, timeout=timeout)
            )

        def traced_phases(
            backend: str, algorithm: str, fused: bool, grouped: bool,
            overlap: bool,
        ) -> Dict[str, Any]:
            # One separate traced run; the timed reps above stay untraced
            # so the span bookkeeping can never contaminate the timings.
            def prog(c):
                c.tracer = Tracer(c.rank)
                rank_sort(c, algorithm, fused, grouped, overlap)
                return c.tracer

            tracers = run_spmd(procs, prog, backend=backend, timeout=timeout)
            rep = build_phase_report(tracers=tracers, P=procs, n=n)
            return {
                "phases": rep.measured_us or {},
                "trace_counters": rep.counters,
                "wait_split": {
                    "transfer_wait_us": rep.measured_transfer_wait_us,
                    "queue_wait_us": rep.measured_queue_wait_us,
                },
            }

        reference: Optional[bytes] = None
        for backend in backends:
            for variant, algorithm, fused, grouped, overlap in BENCH_VARIANTS:
                output = sort_on(backend, algorithm, fused, grouped, overlap)
                if reference is None:
                    reference = output.tobytes()
                    if reference != np.sort(keys).tobytes():
                        raise ConfigurationError(
                            f"bench: backend {backend!r} [{variant}] "
                            f"mis-sorted {N} keys"
                        )
                elif output.tobytes() != reference:
                    raise ConfigurationError(
                        f"bench: backend {backend!r} [{variant}] output "
                        f"differs from the reference on {N} keys x "
                        f"{procs} ranks"
                    )
                timing = _time(
                    lambda: sort_on(backend, algorithm, fused, grouped,
                                    overlap),
                    reps,
                )
                records.append(
                    {
                        "backend": backend,
                        "variant": variant,
                        "algorithm": algorithm,
                        "fused": fused,
                        "grouped": grouped,
                        "overlap": overlap,
                        "chunks": BENCH_CHUNKS if overlap else 1,
                        "keys": N,
                        "procs": procs,
                        **timing,
                        **traced_phases(backend, algorithm, fused, grouped,
                                        overlap),
                    }
                )
    return records


def _bench_kernels(sizes: Sequence[int], reps: int) -> Dict[str, Any]:
    out: Dict[str, Any] = {"radix": [], "merge": [], "plan": []}
    for N in sizes:
        keys = make_keys(N, seed=N % 104729)
        legacy = _time(lambda: _legacy_radix_sort(keys), reps)
        current = _time(lambda: radix_sort(keys), reps)
        np.testing.assert_array_equal(radix_sort(keys), _legacy_radix_sort(keys))
        out["radix"].append(
            {
                "keys": N,
                "legacy_argsort": legacy,
                "counting_scatter": current,
                "speedup": legacy["best_s"] / current["best_s"],
            }
        )
        # Column-lane merge on a square-ish power-of-two matrix: the shape
        # the crossing remap's second computation phase produces.
        length = 1 << (max(N, 4).bit_length() // 2)
        lanes = max(N // length, 1)
        mat = np.sort(
            make_keys(lanes * length, seed=N % 7919).reshape(length, lanes), axis=0
        )[::-1]  # descending columns are (trivially) bitonic
        np.testing.assert_array_equal(
            batched_bitonic_merge(mat, True, axis=0),
            _legacy_batched_merge(mat, True, axis=0),
        )
        legacy = _time(lambda: _legacy_batched_merge(mat, True, axis=0), reps)
        current = _time(lambda: batched_bitonic_merge(mat, True, axis=0), reps)
        out["merge"].append(
            {
                "shape": [length, lanes],
                "axis": 0,
                "legacy_two_copies": legacy,
                "single_copy": current,
                "speedup": legacy["best_s"] / current["best_s"],
            }
        )
        # Plan construction: a fresh build per phase/rank vs a warm cache.
        P = min(32, max(2, N >> 12))
        schedule = smart_schedule(N, P)
        pairs = []
        layout = schedule.initial_layout
        for phase in schedule.phases:
            pairs.append((layout, phase.layout))
            layout = phase.layout

        def build_all() -> None:
            for old, new in pairs:
                for r in range(P):
                    build_remap_plan(old, new, r)

        cache = RemapPlanCache()

        def cached_all() -> None:
            for old, new in pairs:
                for r in range(P):
                    cache.get(old, new, r)

        cold = _time(build_all, reps)
        warm = _time(cached_all, reps)
        out["plan"].append(
            {
                "keys": N,
                "procs": P,
                "phases": len(pairs),
                "rebuild_every_phase": cold,
                "plan_cache_warm": warm,
                "speedup": cold["best_s"] / warm["best_s"],
            }
        )
    return out


def _bench_service(
    sizes: Sequence[int],
    procs: int,
    backends: Sequence[str],
    reps: int,
    timeout: float,
) -> Dict[str, Any]:
    """Warm world pool vs cold spawn-per-call, plus the planner audit.

    For every ``(backend, N)`` point: the *cold* column times the front
    door :func:`repro.api.sort` (one fresh world per call, the pre-service
    behaviour), the *warm* columns time the same request through a
    running :class:`~repro.service.SortService` at every candidate world
    size — byte-identity against ``np.sort`` checked on every shape.
    The planner (default profile, same candidate set) is then audited:
    does its chosen ``P`` match the best *measured* warm config?
    """
    from repro.api import sort as api_sort
    from repro.service import Planner, SortService

    planner = Planner(candidate_P=SERVICE_CANDIDATE_P)
    records: List[Dict[str, Any]] = []
    warm_over_cold: Dict[str, Dict[str, float]] = {}
    matches = 0
    points = 0
    for backend in backends:
        warm_over_cold[backend] = {}
        with SortService(planner, timeout=timeout) as svc:
            for N in sizes:
                keys = make_keys(N, seed=N % 104729)
                expect = np.sort(keys).tobytes()
                cold = _time(
                    lambda: api_sort(
                        keys, procs, backend=backend,
                        verify=False, timeout=timeout,
                    ),
                    reps,
                )
                warm_by_P: Dict[str, Dict[str, float]] = {}
                for P in SERVICE_CANDIDATE_P:
                    if N % P:
                        continue
                    # Pinned to the smart bitonic sort so the warm-vs-cold
                    # and planner-P columns keep their schema-5 meaning;
                    # the algorithms section audits the routing.
                    out = svc.sort(
                        keys, algorithm="smart", backend=backend, P=P
                    )  # warms the world
                    if out.sorted_keys.tobytes() != expect:
                        raise ConfigurationError(
                            f"bench: warm service [{backend} x {P}] "
                            f"mis-sorted {N} keys"
                        )
                    warm_by_P[str(P)] = _time(
                        lambda: svc.sort(
                            keys, algorithm="smart", backend=backend, P=P
                        ),
                        reps,
                    )
                best_P = int(
                    min(warm_by_P, key=lambda p: warm_by_P[p]["best_s"])
                )
                planner_P = planner.plan(
                    N, backend=backend, algorithm="smart"
                ).P
                points += 1
                matches += planner_P == best_P
                warm_best = warm_by_P[str(planner_P)]["best_s"]
                warm_over_cold[backend][str(N)] = cold["best_s"] / warm_best
                records.append(
                    {
                        "backend": backend,
                        "keys": N,
                        "cold_procs": procs,
                        "cold": cold,
                        "warm_by_P": warm_by_P,
                        "best_measured_P": best_P,
                        "planner_P": planner_P,
                        "planner_match": planner_P == best_P,
                    }
                )
    return {
        "candidate_P": list(SERVICE_CANDIDATE_P),
        "records": records,
        "warm_over_cold": warm_over_cold,
        "planner_matches": matches,
        "planner_points": points,
    }


def _bench_algorithms(
    sizes: Sequence[int],
    backends: Sequence[str],
    reps: int,
    timeout: float,
) -> Dict[str, Any]:
    """The cross-algorithm planner audit: smart bitonic vs sample sort.

    For every ``(backend, N)`` shape, both algorithms run warm through a
    service at a *forced* world size (the largest candidate ``P`` — on
    one rank the two are the same local sort and the routing question is
    moot).  The planner is then asked to route the same shape
    (``algorithm`` left free, same forced ``P``) and audited against the
    best *measured* algorithm.  ``sample_over_bitonic`` > 1 means the
    sample sort's single redistribution beat the bitonic remap sequence
    on that shape.
    """
    from repro.service import Planner, SortService

    planner = Planner(candidate_P=SERVICE_CANDIDATE_P)
    audit_P = max(SERVICE_CANDIDATE_P)
    records: List[Dict[str, Any]] = []
    crossover: Dict[str, Dict[str, float]] = {}
    matches = 0
    points = 0
    for backend in backends:
        crossover[backend] = {}
        with SortService(planner, timeout=timeout) as svc:
            for N in sizes:
                if N % audit_P:
                    continue
                keys = make_keys(N, seed=N % 104729)
                expect = np.sort(keys).tobytes()
                by_algo: Dict[str, Dict[str, float]] = {}
                for algo in ("smart", "sample"):
                    out = svc.sort(
                        keys, algorithm=algo, backend=backend, P=audit_P
                    )  # warms the world
                    if out.sorted_keys.tobytes() != expect:
                        raise ConfigurationError(
                            f"bench: warm service [{algo}:{backend} x "
                            f"{audit_P}] mis-sorted {N} keys"
                        )
                    by_algo[algo] = _time(
                        lambda a=algo: svc.sort(
                            keys, algorithm=a, backend=backend, P=audit_P
                        ),
                        reps,
                    )
                best_algo = min(
                    by_algo, key=lambda a: by_algo[a]["best_s"]
                )
                planned = planner.plan(
                    N, backend=backend, P=audit_P
                ).algorithm
                points += 1
                matches += planned == best_algo
                crossover[backend][str(N)] = (
                    by_algo["smart"]["best_s"] / by_algo["sample"]["best_s"]
                )
                records.append(
                    {
                        "backend": backend,
                        "keys": N,
                        "P": audit_P,
                        "by_algorithm": by_algo,
                        "best_measured_algorithm": best_algo,
                        "planner_algorithm": planned,
                        "planner_match": planned == best_algo,
                    }
                )
    return {
        "P": audit_P,
        "records": records,
        "sample_over_bitonic": crossover,
        "planner_matches": matches,
        "planner_points": points,
    }


def _bench_external(sizes: Sequence[int], reps: int) -> Dict[str, Any]:
    """The out-of-core A/B: spill-to-disk external sort vs the in-memory
    local sort on the same keys.

    Each size runs at two constrained budgets — one sized so the input
    splits into runs but merges in a single pass, one with the fan-in
    shrunk to force cascaded merge passes — against the unconstrained
    in-memory sort.  ``external_over_inmem`` < 1 records what a byte
    through the filesystem costs relative to memory; the table is the
    measured twin of :func:`repro.theory.predict_external`'s closed form.
    """
    from repro.extsort import external_sort

    records: List[Dict[str, Any]] = []
    crossover: Dict[str, float] = {}
    for N in sizes:
        keys = make_keys(N, seed=N % 104729)
        expect = np.sort(keys)
        inmem = _time(lambda: np.sort(keys), reps)
        # Budget = nbytes/4: the working set (2x nbytes) splits into ~8
        # runs, well under the default fan-in — a single merge pass.
        budget = max(keys.nbytes // 4, 64)
        out, rep_single = external_sort(keys, budget)
        if out.tobytes() != expect.tobytes():
            raise ConfigurationError(
                f"bench: external sort mis-sorted {N} keys at "
                f"budget {budget}"
            )
        single = _time(lambda: external_sort(keys, budget), reps)
        # Same budget, fan-in 2: every merge level becomes its own pass.
        out, rep_multi = external_sort(keys, budget, fan_in=2)
        if out.tobytes() != expect.tobytes():
            raise ConfigurationError(
                f"bench: multi-pass external sort mis-sorted {N} keys"
            )
        multi = _time(lambda: external_sort(keys, budget, fan_in=2), reps)
        crossover[str(N)] = inmem["best_s"] / single["best_s"]
        records.append(
            {
                "keys": N,
                "budget_bytes": budget,
                "inmem": inmem,
                "single_pass": {
                    **single,
                    "runs": rep_single.runs,
                    "merge_passes": rep_single.merge_passes,
                    "spill_bytes": rep_single.spill_bytes,
                    "peak_resident_bytes": rep_single.peak_resident_bytes,
                },
                "multi_pass": {
                    **multi,
                    "fan_in": 2,
                    "runs": rep_multi.runs,
                    "merge_passes": rep_multi.merge_passes,
                    "spill_bytes": rep_multi.spill_bytes,
                    "peak_resident_bytes": rep_multi.peak_resident_bytes,
                },
            }
        )
    return {"records": records, "external_over_inmem": crossover}


def run_bench(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    procs: int = 8,
    backends: Sequence[str] = ("threads", "procs"),
    reps: Optional[int] = None,
    timeout: float = 300.0,
) -> Dict[str, Any]:
    """Run the benchmark trajectory and return the JSON-ready payload.

    ``quick`` shrinks the defaults to CI-smoke scale.  The cross-backend
    byte-identity check always runs; a mismatch raises
    :class:`~repro.errors.ConfigurationError` rather than recording
    timings for a wrong sort.
    """
    if sizes is None:
        sizes = [1 << 14, 1 << 16] if quick else [1 << 16, 1 << 18, 1 << 20]
    if reps is None:
        reps = 1 if quick else 3
    procs = max(1, procs if not quick else min(procs, 4))
    cpu_count = _usable_cpus()
    end_to_end = _bench_end_to_end(sizes, procs, backends, reps, timeout)
    kernels = _bench_kernels(sizes, reps)
    service = _bench_service(sizes, procs, backends, reps, timeout)
    service["algorithms"] = _bench_algorithms(sizes, backends, reps, timeout)
    external = _bench_external(sizes, reps)
    speedups: Dict[str, Dict[str, float]] = {}
    default_variant = BENCH_VARIANTS[0][0]
    if "threads" in backends:
        threads_best = {
            r["keys"]: r["best_s"]
            for r in end_to_end
            if r["backend"] == "threads" and r["variant"] == default_variant
        }
        for backend in backends:
            if backend == "threads":
                continue
            speedups[f"{backend}_over_threads"] = {
                str(r["keys"]): threads_best[r["keys"]] / r["best_s"]
                for r in end_to_end
                if r["backend"] == backend and r["variant"] == default_variant
            }
    # The fused A/B: fused+group against the unfused world-wide
    # baseline, per backend and size.
    for backend in backends:
        unfused_best = {
            r["keys"]: r["best_s"]
            for r in end_to_end
            if r["backend"] == backend and r["variant"] == "unfused+world"
        }
        speedups[f"{backend}_fused_over_unfused"] = {
            str(r["keys"]): unfused_best[r["keys"]] / r["best_s"]
            for r in end_to_end
            if r["backend"] == backend and r["variant"] == default_variant
        }
    # The overlap A/B: the chunked nonblocking pipeline against its own
    # synchronous twin (same fused+group flags), per backend and size —
    # > 1 means the pipeline hid transfer wait, < 1 means the per-chunk
    # overhead won.
    for backend in backends:
        sync_best = {
            r["keys"]: r["best_s"]
            for r in end_to_end
            if r["backend"] == backend and r["variant"] == default_variant
        }
        speedups[f"{backend}_overlap_over_sync"] = {
            str(r["keys"]): sync_best[r["keys"]] / r["best_s"]
            for r in end_to_end
            if r["backend"] == backend and r["variant"] == "overlap+chunked"
        }
    # The algorithm crossover: the sample sort against the default
    # bitonic path, per backend and size — > 1 where one splitter-driven
    # redistribution beats the bitonic remap sequence, < 1 where the
    # sampling overhead wins.  This is the measured twin of
    # repro.theory.crossover_keys_per_proc.
    for backend in backends:
        bitonic_best = {
            r["keys"]: r["best_s"]
            for r in end_to_end
            if r["backend"] == backend and r["variant"] == default_variant
        }
        speedups[f"{backend}_sample_over_bitonic"] = {
            str(r["keys"]): bitonic_best[r["keys"]] / r["best_s"]
            for r in end_to_end
            if r["backend"] == backend and r["variant"] == "sample"
        }
    return {
        "schema": BENCH_SCHEMA,
        "host": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "note": (
                "speedup targets for the procs backend assume >= 4 usable "
                "cores; on fewer cores its numbers chiefly measure overhead"
            ),
        },
        "config": {
            "quick": quick,
            "sizes": list(sizes),
            "procs": procs,
            "backends": list(backends),
            "reps": reps,
        },
        "end_to_end": end_to_end,
        "end_to_end_speedup": speedups,
        "kernels": kernels,
        "service": service,
        "external": external["records"],
        "external_over_inmem": external["external_over_inmem"],
        "outputs_match": True,  # a mismatch raises before we get here
    }


def _usable_cpus() -> int:
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover — non-Linux
        import os

        return os.cpu_count() or 1


def write_bench(payload: Dict[str, Any], path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
