"""Runners for every table and figure of the paper's evaluation.

Each experiment executes real sorts on the simulated machine and returns an
:class:`ExperimentResult` whose rows mirror the paper's table/figure.  The
default workload sizes are scaled down from the paper's 128K–1M keys per
processor so the whole suite runs in seconds; pass ``full=True`` (or set the
environment variable ``REPRO_FULL=1``) to execute at the paper's exact
sizes.  Simulated times are independent of wall-clock, so scaling changes
only how much the per-remap fixed overheads are amortized, not who wins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.harness.paper_data import PAPER
from repro.layouts.schedule import build_schedule, remaining_steps
from repro.localsort.bitonic_min import BitonicMinStats, argmin_bitonic
from repro.machine.metrics import RunStats
from repro.model.machines import MEIKO_CS2
from repro.sorts import (
    BlockedMergeBitonicSort,
    ColumnSort,
    CyclicBlockedBitonicSort,
    ParallelRadixSort,
    ParallelSampleSort,
    SmartBitonicSort,
)
from repro.theory.counts import STRATEGIES, counts_for
from repro.utils.rng import make_keys

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "default_sizes"]

#: Paper sweep, in K keys per processor.
FULL_SIZES = (128, 256, 512, 1024)
#: Scaled-down default sweep (same number of points, same doubling shape).
QUICK_SIZES = (8, 16, 32, 64)


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure, with the paper's values (when
    the paper prints them) alongside."""

    ident: str
    title: str
    unit: str
    columns: Tuple[str, ...]
    rows: Dict = field(default_factory=dict)  # row label -> tuple of values
    paper_columns: Tuple[str, ...] = ()
    paper_rows: Dict = field(default_factory=dict)
    notes: str = ""

    def column(self, name: str) -> List[float]:
        """All values of one measured column, in row order."""
        i = self.columns.index(name)
        return [vals[i] for vals in self.rows.values()]


def default_sizes(full: Optional[bool] = None) -> Tuple[int, ...]:
    """The keys-per-processor sweep (in K): the paper's sizes under
    ``full`` / ``REPRO_FULL=1``, a scaled sweep otherwise."""
    if full is None:
        full = os.environ.get("REPRO_FULL", "") not in ("", "0")
    return FULL_SIZES if full else QUICK_SIZES


def _keys(P: int, size_k: int, seed: int = 7, distribution: str = "uniform") -> np.ndarray:
    return make_keys(P * size_k * 1024, seed=seed, distribution=distribution)


def _run(algo, P: int, size_k: int, verify: bool = True,
         distribution: str = "uniform") -> RunStats:
    res = algo.run(_keys(P, size_k, distribution=distribution), P, verify=verify)
    return res.stats


# ---------------------------------------------------------------------------
# Tables 5.1 / 5.2 and Figures 5.1 / 5.2: the three bitonic implementations.
# ---------------------------------------------------------------------------


def _three_bitonic(P: int, sizes: Sequence[int]) -> Dict[int, Tuple[RunStats, ...]]:
    algos = (
        BlockedMergeBitonicSort(),
        CyclicBlockedBitonicSort(),
        SmartBitonicSort(),
    )
    return {
        size: tuple(_run(a, P, size) for a in algos) for size in sizes
    }


def table5_1(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
             P: int = 32) -> ExperimentResult:
    """Execution time per key for Blocked-Merge / Cyclic-Blocked / Smart."""
    sizes = tuple(sizes or default_sizes(full))
    runs = _three_bitonic(P, sizes)
    paper = PAPER.tables["table5.1"]
    return ExperimentResult(
        ident="table5.1",
        title=f"us/key, three bitonic implementations, P={P} (Table 5.1 / Fig 5.2)",
        unit="us/key",
        columns=("Blocked-Merge", "Cyclic-Blocked", "Smart"),
        rows={s: tuple(round(st.us_per_key, 3) for st in runs[s]) for s in sizes},
        paper_columns=paper.columns,
        paper_rows=dict(paper.rows),
        notes="Rows are keys/processor in K; paper rows are the CS-2 at 128K-1M.",
    )


def table5_2(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
             P: int = 32) -> ExperimentResult:
    """Total execution time for the three bitonic implementations."""
    sizes = tuple(sizes or default_sizes(full))
    runs = _three_bitonic(P, sizes)
    paper = PAPER.tables["table5.2"]
    return ExperimentResult(
        ident="table5.2",
        title=f"total seconds, three bitonic implementations, P={P} (Table 5.2 / Fig 5.1)",
        unit="seconds",
        columns=("Blocked-Merge", "Cyclic-Blocked", "Smart"),
        rows={s: tuple(round(st.seconds_total, 4) for st in runs[s]) for s in sizes},
        paper_columns=paper.columns,
        paper_rows=dict(paper.rows),
    )


# ---------------------------------------------------------------------------
# Figure 5.3: scaling P for a fixed total problem.
# ---------------------------------------------------------------------------


def figure5_3(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
              total_keys_k: Optional[int] = None) -> ExperimentResult:
    """Total sorting time and speedup for a fixed N, P = 2..32."""
    if total_keys_k is None:
        total_keys_k = 1024 if (full or os.environ.get("REPRO_FULL")) else 128
    N = total_keys_k * 1024
    procs = (2, 4, 8, 16, 32)
    algo = SmartBitonicSort()
    rows: Dict = {}
    base: Optional[float] = None
    for P in procs:
        keys = make_keys(N, seed=7)
        st = algo.run(keys, P, verify=True).stats
        if base is None:
            base = st.seconds_total * 2  # speedup baseline: ideal 1-proc = 2x the 2-proc time
        rows[P] = (round(st.seconds_total, 4), round(base / st.seconds_total, 2))
    return ExperimentResult(
        ident="figure5.3",
        title=f"Smart bitonic sort of {total_keys_k}K keys, P=2..32 (Figure 5.3)",
        unit="seconds / speedup",
        columns=("total seconds", "speedup vs 1 proc (est)"),
        rows=rows,
        notes=(
            "Speedup baseline estimates the 1-processor time as twice the "
            "2-processor time, as a single simulated node runs no "
            "communication phases."
        ),
    )


# ---------------------------------------------------------------------------
# Figure 5.4: communication/computation breakdown.
# ---------------------------------------------------------------------------


def figure5_4(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
              P: int = 16) -> ExperimentResult:
    """Share of time in computation vs communication for the Smart sort."""
    sizes = tuple(sizes or default_sizes(full))
    algo = SmartBitonicSort()
    rows: Dict = {}
    for s in sizes:
        st = _run(algo, P, s)
        comp, comm = st.computation_per_key, st.communication_per_key
        total = comp + comm
        rows[s] = (
            round(comp, 3),
            round(comm, 3),
            round(100 * comp / total, 1),
            round(100 * comm / total, 1),
        )
    return ExperimentResult(
        ident="figure5.4",
        title=f"computation vs communication per key, Smart, P={P} (Figure 5.4)",
        unit="us/key and %",
        columns=("comp us/key", "comm us/key", "comp %", "comm %"),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Tables 5.3 / 5.4 and Figures 5.5 / 5.6: message-size effects.
# ---------------------------------------------------------------------------


def table5_3(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
             P: int = 16) -> ExperimentResult:
    """Communication time per key: short vs (unfused) long messages."""
    sizes = tuple(sizes or default_sizes(full))
    short = SmartBitonicSort(mode="short", fused=False)
    long_ = SmartBitonicSort(mode="long", fused=False)
    paper = PAPER.tables["table5.3"]
    rows: Dict = {}
    for s in sizes:
        st_s = _run(short, P, s)
        st_l = _run(long_, P, s)
        rows[s] = (
            round(st_s.communication_per_key, 2),
            round(st_l.communication_per_key, 2),
        )
    return ExperimentResult(
        ident="table5.3",
        title=f"comm us/key, short vs long messages, P={P} (Table 5.3 / Fig 5.5)",
        unit="us/key",
        columns=("Short Messages", "Long Messages"),
        rows=rows,
        paper_columns=paper.columns,
        paper_rows=dict(paper.rows),
        notes="Long-message version here does NOT fuse pack/unpack (as in §5.4).",
    )


def table5_4(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
             P: int = 16) -> ExperimentResult:
    """Pack / transfer / unpack breakdown of the long-message version."""
    sizes = tuple(sizes or default_sizes(full))
    algo = SmartBitonicSort(mode="long", fused=False)
    paper = PAPER.tables["table5.4"]
    rows: Dict = {}
    for s in sizes:
        st = _run(algo, P, s)
        rows[s] = (
            round(st.per_key("pack"), 3),
            round(st.per_key("transfer"), 3),
            round(st.per_key("unpack"), 3),
        )
    return ExperimentResult(
        ident="table5.4",
        title=f"communication breakdown us/key, long messages, P={P} (Table 5.4 / Fig 5.6)",
        unit="us/key",
        columns=("Packing", "Transfer", "Unpacking"),
        rows=rows,
        paper_columns=paper.columns,
        paper_rows=dict(paper.rows),
    )


# ---------------------------------------------------------------------------
# Figures 5.7 / 5.8: bitonic vs radix vs sample sort.
# ---------------------------------------------------------------------------


def _sort_showdown(P: int, sizes: Sequence[int]) -> ExperimentResult:
    algos = (SmartBitonicSort(), ParallelRadixSort(), ParallelSampleSort())
    rows: Dict = {}
    for s in sizes:
        rows[s] = tuple(round(_run(a, P, s).us_per_key, 3) for a in algos)
    return ExperimentResult(
        ident=f"figure5.{7 if P == 16 else 8}",
        title=f"us/key: bitonic vs radix vs sample sort, P={P} "
        f"(Figure {'5.7' if P == 16 else '5.8'})",
        unit="us/key",
        columns=("Bitonic (Smart)", "Radix", "Sample"),
        rows=rows,
    )


def figure5_7(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None
              ) -> ExperimentResult:
    return _sort_showdown(16, tuple(sizes or default_sizes(full)))


def figure5_8(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None
              ) -> ExperimentResult:
    return _sort_showdown(32, tuple(sizes or default_sizes(full)))


# ---------------------------------------------------------------------------
# Analysis experiments beyond Chapter 5's tables.
# ---------------------------------------------------------------------------


def comm_counts(sizes: Optional[Sequence[int]] = None, full: Optional[bool] = None,
                P: int = 16) -> ExperimentResult:
    """R/V/M closed forms (§3.4) vs the simulator's measured counts."""
    size = (tuple(sizes) if sizes else default_sizes(full))[0]
    n = size * 1024
    N = P * n
    rows: Dict = {}
    measured = {
        "blocked": _run(BlockedMergeBitonicSort(), P, size),
        "cyclic-blocked": _run(CyclicBlockedBitonicSort(), P, size),
        "smart": _run(SmartBitonicSort(), P, size),
    }
    for strat in STRATEGIES:
        c = counts_for(strat, N, P)
        st = measured[strat]
        rows[strat] = (
            c.remaps, st.remaps, c.volume, st.volume_per_proc,
            c.messages, st.messages_per_proc,
        )
    return ExperimentResult(
        ident="comm-counts",
        title=f"communication metrics, theory vs simulator, P={P}, n={n} (§3.4)",
        unit="counts",
        columns=("R theory", "R measured", "V theory", "V measured",
                 "M theory", "M measured"),
        rows=rows,
    )


def remap_strategies(sizes: Optional[Sequence[int]] = None,
                     full: Optional[bool] = None, P: int = 32) -> ExperimentResult:
    """Lemma 5: transferred volume of the Head/Tail/Middle placements."""
    size = (tuple(sizes) if sizes else default_sizes(full))[0]
    n = size * 1024
    N = P * n
    rows: Dict = {}
    rem = remaining_steps(P, n)
    for strat in ("head", "tail", "middle1", "middle2"):
        try:
            sched = build_schedule(N, P, strategy=strat)
        except Exception as exc:  # middle strategies need rem > 0
            rows[strat] = ("n/a", "n/a", str(exc)[:40])
            continue
        rows[strat] = (
            sched.num_remaps,
            sched.volume_per_processor(),
            sched.messages_per_processor(),
        )
    return ExperimentResult(
        ident="remap-strategies",
        title=f"Lemma 5 remap placements, P={P}, n={n}, N_RemainingSteps={rem}",
        unit="counts",
        columns=("remaps", "volume/proc", "messages/proc"),
        rows=rows,
        notes="Lemma 5: V_tail <= V_head < V_middle1 and V_tail <= V_middle2.",
    )


def bitonic_min_scaling(sizes: Optional[Sequence[int]] = None,
                        full: Optional[bool] = None) -> ExperimentResult:
    """Algorithm 2: comparisons grow logarithmically with n (Lemma 8)."""
    lengths = [1 << e for e in range(6, 21, 2)]
    rng = np.random.default_rng(3)
    rows: Dict = {}
    for n in lengths:
        vals = rng.choice(np.arange(4 * n, dtype=np.int64), size=n, replace=False)
        peak = rng.integers(1, n)
        seq = np.concatenate([np.sort(vals[:peak]), np.sort(vals[peak:])[::-1]])
        stats = BitonicMinStats()
        idx = argmin_bitonic(seq, stats=stats)
        assert seq[idx] == seq.min()
        rows[n] = (stats.comparisons, int(np.ceil(np.log2(n))), stats.fallback)
    return ExperimentResult(
        ident="bitonic-min",
        title="Algorithm 2 comparison counts vs sequence length (Lemma 8)",
        unit="comparisons",
        columns=("comparisons", "lg n", "fallback"),
        rows=rows,
    )


def local_compute_ablation(sizes: Optional[Sequence[int]] = None,
                           full: Optional[bool] = None, P: int = 16
                           ) -> ExperimentResult:
    """Chapter 4 ablation: merge-based vs simulated local computation, and
    fused vs unfused pack/unpack."""
    size = (tuple(sizes) if sizes else default_sizes(full))[-1]
    variants = {
        "merge+fused (Smart)": SmartBitonicSort(),
        "merge, unfused": SmartBitonicSort(fused=False),
        "simulate+fused": SmartBitonicSort(local="simulate"),
        "simulate, unfused": SmartBitonicSort(local="simulate", fused=False),
    }
    rows: Dict = {}
    for label, algo in variants.items():
        st = _run(algo, P, size)
        rows[label] = (
            round(st.us_per_key, 3),
            round(st.computation_per_key, 3),
            round(st.communication_per_key, 3),
        )
    return ExperimentResult(
        ident="local-compute",
        title=f"Chapter 4 ablation, P={P}, {size}K keys/proc",
        unit="us/key",
        columns=("total", "computation", "communication"),
        rows=rows,
    )


def column_sort_comparison(sizes: Optional[Sequence[int]] = None,
                           full: Optional[bool] = None, P: int = 8
                           ) -> ExperimentResult:
    """Chapter 6's column sort against the smart bitonic and sample sorts.

    Column sort shares bitonic sort's structure (local sorts alternating
    with redistributions, two of which are the blocked<->cyclic remaps) but
    needs only four of each — at the price of four full local sorts and the
    ``N >= ~2 P**3`` applicability bound.
    """
    sizes = tuple(sizes or default_sizes(full))
    algos = (ColumnSort(), SmartBitonicSort(), ParallelSampleSort())
    rows: Dict = {}
    for s in sizes:
        vals = []
        for a in algos:
            try:
                vals.append(round(_run(a, P, s).us_per_key, 3))
            except Exception:
                vals.append(float("nan"))
        rows[s] = tuple(vals)
    return ExperimentResult(
        ident="column-sort",
        title=f"column sort vs smart bitonic vs sample, P={P} (Ch. 6)",
        unit="us/key",
        columns=("Column", "Bitonic (Smart)", "Sample"),
        rows=rows,
    )


def chaos_sweep(sizes: Optional[Sequence[int]] = None,
                full: Optional[bool] = None, P: int = 8,
                rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.10),
                seed: int = 42) -> ExperimentResult:
    """Fault-rate sweep: the smart sort on a lossy simulated network.

    Each row arms the machine's fault plane with one drop/corrupt/duplicate
    rate (drop at the full rate, corruption and duplication at half) and
    reports the simulated overhead of the reliable transport next to the
    fault-free baseline: makespan inflation, retransmissions, resent
    volume, and the message-count delta.  Rate 0 must be byte-identical to
    the baseline — the fault plane is free when disarmed.
    """
    from repro.faults.plan import FaultInjector, FaultPlan

    size = (tuple(sizes) if sizes else default_sizes(full))[0]
    algo = SmartBitonicSort()
    keys = _keys(P, size)
    base = algo.run(keys, P, verify=True).stats
    rows: Dict = {}
    for rate in rates:
        injector = FaultInjector(FaultPlan(
            seed=seed, drop=rate, corrupt=rate / 2, duplicate=rate / 2,
        ))
        st = algo.run(keys, P, verify=True, injector=injector).stats
        rows[f"{rate:.0%}"] = (
            round(st.us_per_key, 3),
            round(100.0 * (st.elapsed_us / base.elapsed_us - 1.0), 2),
            injector.stats.retries,
            injector.stats.resent_elements,
            st.messages_per_proc - base.messages_per_proc,
        )
    return ExperimentResult(
        ident="chaos-sweep",
        title=f"reliable-transport overhead vs fault rate, P={P}, {size}K keys/proc",
        unit="us/key",
        columns=("total", "overhead %", "retries", "resent elems", "extra msgs/proc"),
        rows=rows,
        notes=(
            "Drop at the row's rate; corruption and duplication at half. "
            "Every run is verified element-exactly against np.sort."
        ),
    )


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "chaos-sweep": chaos_sweep,
    "column-sort": column_sort_comparison,
    "table5.1": table5_1,
    "figure5.2": table5_1,
    "table5.2": table5_2,
    "figure5.1": table5_2,
    "figure5.3": figure5_3,
    "figure5.4": figure5_4,
    "table5.3": table5_3,
    "figure5.5": table5_3,
    "table5.4": table5_4,
    "figure5.6": table5_4,
    "figure5.7": figure5_7,
    "figure5.8": figure5_8,
    "comm-counts": comm_counts,
    "remap-strategies": remap_strategies,
    "bitonic-min": bitonic_min_scaling,
    "local-compute": local_compute_ablation,
}


def run_experiment(ident: str, **kwargs) -> ExperimentResult:
    """Run one experiment by table/figure id (e.g. ``"table5.1"``)."""
    if ident not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {ident!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[ident](**kwargs)
