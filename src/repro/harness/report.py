"""Plain-text rendering of experiment results (paper-vs-measured)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.harness.experiments import ExperimentResult

__all__ = ["format_table", "format_series", "format_result"]


def format_table(
    columns: Sequence[str],
    rows: Dict,
    row_header: str = "keys/proc (K)",
) -> str:
    """Render ``row label -> tuple of values`` as an aligned text table."""
    headers = [row_header] + list(columns)
    body = [[str(label)] + [_fmt(v) for v in vals] for label, vals in rows.items()]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(label: str, xs: Sequence, ys: Sequence[float], width: int = 40) -> str:
    """A one-line-per-point ASCII rendering of a figure series."""
    if not ys:
        return f"{label}: (empty)"
    top = max(ys) or 1.0
    lines = [label]
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(width * y / top))
        lines.append(f"  {str(x):>8}  {y:>10.3f}  {bar}")
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Render one experiment with the paper's values side by side."""
    parts = [f"== {result.ident}: {result.title} [{result.unit}] =="]
    parts.append(format_table(result.columns, result.rows))
    if result.paper_rows:
        parts.append("")
        parts.append(f"-- paper ({result.ident}, Meiko CS-2) --")
        parts.append(format_table(result.paper_columns, result.paper_rows))
    if result.notes:
        parts.append("")
        parts.append(f"note: {result.notes}")
    return "\n".join(parts)


def _fmt(v) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        return f"{v:.3f}".rstrip("0").rstrip(".") if v else "0"
    return str(v)
