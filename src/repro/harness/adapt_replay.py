"""Record/replay proof harness for the online-adaptation loop.

The claim behind :mod:`repro.service.adapt` is operational, not
numerical: *when the calibrated model drifts from the machine, a service
that folds its own measurements back into the planner re-routes and
recovers; a frozen-profile service keeps dispatching into the model's
mistake.*  This harness makes that claim reproducible:

1. **Record** a mixed-shape load trace — a deterministic request
   sequence (sizes, tracing cadence, overlap probes) generated from a
   seed and persisted as JSON, so both replays see byte-identical load.
2. **Drift** the host profile the way real hosts drift from one-shot
   calibration (the BSP sorting studies' observation): the replay
   profile believes the machine has cores to spare and near-free
   intra-world synchronization, which prices wide worlds far below what
   this host delivers.  *Both* services plan from this same drifted
   profile — the only difference between them is the feedback loop.
3. **Replay** the trace twice: once through an adapting service
   (planner + :class:`~repro.service.adapt.RequestAdapter`, autoscaling
   pool), once through a frozen static service (``adapter=None``) —
   and emit a ``repro-bitonic-bench/7`` document whose
   ``adapted_over_static`` ratio (static wall over adapted wall) CI
   gates at >= 1.0.

The adapting replay runs *first*, so interpreter/NumPy warm-up costs
land on the adapted side — the gate is conservative.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.harness.bench import BENCH_SCHEMA, _usable_cpus, write_bench
from repro.service.adapt import RequestAdapter
from repro.service.planner import BenchHistory, Planner
from repro.service.pool import WorldPool
from repro.service.profile import HostProfile
from repro.service.service import SortService

__all__ = [
    "LOAD_SCHEMA",
    "drift_profile",
    "record_load_trace",
    "replay_load_trace",
    "run_adapt_replay",
]

#: Schema of a persisted load trace (the recorded request sequence).
LOAD_SCHEMA = "repro-bitonic-load/1"

#: World sizes the replay planner chooses between.  Kept narrow so the
#: replay is fast and the drift story is crisp: the drifted model prices
#: the widest world cheapest, the machine disagrees, and the adapting
#: service walks back down to the world size the host actually rewards.
_REPLAY_CANDIDATE_P = (1, 2, 8)


def record_load_trace(
    requests: int = 200,
    sizes: Sequence[int] = (4096, 16384),
    seed: int = 0,
    trace_every: int = 5,
    overlap_every: int = 5,
    probe_P: int = 8,
) -> Dict[str, Any]:
    """A deterministic mixed-shape load trace.

    Every ``trace_every``-th request runs traced (feeding the adapter
    phase deviations and wait splits), and every ``overlap_every``-th
    *traced* request becomes an overlap **probe pair**: one forced
    ``overlap=True`` request at ``P=probe_P`` followed by its forced
    synchronous twin at the same shape.  The pair's traced wait splits
    are what give the adapter a measured overlap efficiency without any
    committed BENCH file (wait splits only exist at ``P > 1`` on the
    bitonic pipeline, so probes pin their world size — planner-chosen
    traced requests may well run single-rank).
    """
    rng = np.random.default_rng(seed)
    reqs: List[Dict[str, Any]] = []
    traced_seen = 0
    sync_twin = False
    for i in range(requests):
        traced = trace_every > 0 and i % trace_every == 0
        overlap: Optional[bool] = None
        forced_P: Optional[int] = None
        algorithm: Optional[str] = None
        if sync_twin:
            # The probe's synchronous twin: same shape, same world size,
            # overlap off — the other half of the wait-split pair.
            traced, overlap, forced_P, algorithm = (
                True, False, probe_P, "smart"
            )
            sync_twin = False
        elif traced:
            traced_seen += 1
            if overlap_every > 0 and traced_seen % overlap_every == 0:
                overlap, forced_P, algorithm = True, probe_P, "smart"
                sync_twin = True
        reqs.append(
            {
                "keys": int(sizes[int(rng.integers(len(sizes)))]),
                "seed": int(rng.integers(1 << 31)),
                "trace": traced,
                "overlap": overlap,
                "P": forced_P,
                "algorithm": algorithm,
            }
        )
    return {
        "schema": LOAD_SCHEMA,
        "seed": seed,
        "sizes": [int(s) for s in sizes],
        "requests": reqs,
    }


def save_load_trace(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def load_load_trace(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != LOAD_SCHEMA:
        raise ValueError(
            f"{path}: load-trace schema {doc.get('schema')!r} != "
            f"{LOAD_SCHEMA!r}"
        )
    return doc


def drift_profile(
    profile: Optional[HostProfile] = None, comm_scale: float = 0.05
) -> HostProfile:
    """Simulate calibration drift: the profile believes this host has
    eight cores per actual core and thread synchronization at 5% of its
    calibrated cost.  Both distortions touch only the terms that grow
    with ``P``, so the single-rank price stays honest while wide worlds
    on small shards — overhead-bound on any real host — price *below*
    the single rank: the persistent mispick the static replay keeps
    dispatching into.  The mispricing is deliberately modest (the wide
    world wins statically by ~1.1-1.4x), so the corrections the adapter
    needs to reorder the candidates sit well inside its ``[0.25, 4.0]``
    clamp."""
    profile = profile or HostProfile.default()
    threads = profile.backends["threads"]
    return replace(
        profile,
        cpus=profile.cpus * 8,
        backends={
            **profile.backends,
            "threads": replace(
                threads,
                L=threads.L * comm_scale,
                o=threads.o * comm_scale,
                g=threads.g * comm_scale,
                G=threads.G * comm_scale,
            ),
        },
        source=f"{profile.source}+drift",
    )


def _make_service(
    profile: HostProfile, adapting: bool, trace_default: bool = False
) -> SortService:
    adapter = (
        RequestAdapter(profile, alpha=0.3, decay_s=3600.0)
        if adapting else None
    )
    planner = Planner(
        profile=profile,
        backends=("threads",),
        candidate_P=_REPLAY_CANDIDATE_P,
        history=BenchHistory(()),  # no committed bias: drift vs feedback only
        adapter=adapter,
    )
    pool = WorldPool(
        max_idle_per_key=2,
        idle_ttl_s=30.0,
        autoscale=adapting,
        tick_interval_s=0.25,
        max_worlds_per_key=3,
    )
    return SortService(
        planner=planner,
        pool=pool,
        queue_depth=64,
        batch_max=4,
        trace=trace_default,
    )


def replay_load_trace(
    trace_doc: Dict[str, Any], profile: HostProfile, adapting: bool
) -> Dict[str, Any]:
    """Run the recorded load through one service; measured summary."""
    service = _make_service(profile, adapting)
    walls: List[float] = []
    decision_mix: Dict[str, int] = {}
    started = time.perf_counter()
    try:
        for req in trace_doc["requests"]:
            rng = np.random.default_rng(req["seed"])
            keys = rng.integers(
                0, 1 << 32, size=req["keys"], dtype=np.uint32
            )
            outcome = service.sort(
                keys,
                trace=bool(req.get("trace", False)),
                overlap=req.get("overlap"),
                P=req.get("P"),
                algorithm=req.get("algorithm"),
            )
            walls.append(outcome.wall_s)
            d = outcome.decision
            name = f"{d.algorithm}:{d.backend}x{d.P}" + (
                "+ov" if d.overlap else ""
            )
            decision_mix[name] = decision_mix.get(name, 0) + 1
        total_s = time.perf_counter() - started
        report = service.report()
    finally:
        service.close()
    walls.sort()

    def pct(q: float) -> float:
        if not walls:
            return 0.0
        return walls[min(len(walls) - 1, max(0, round(q * (len(walls) - 1))))]

    return {
        "adapting": adapting,
        "requests": len(walls),
        "total_s": total_s,
        "sum_wall_s": sum(walls),
        "p50_s": pct(0.5),
        "p99_s": pct(0.99),
        "decision_mix": dict(sorted(decision_mix.items())),
        "pool": report.pool,
        "adapt": report.adapt,
    }


def run_adapt_replay(
    requests: int = 200,
    sizes: Sequence[int] = (4096, 16384),
    seed: int = 0,
    profile_path: Optional[str] = None,
    load_path: Optional[str] = None,
    out: Optional[str] = None,
    drift: bool = True,
) -> Dict[str, Any]:
    """Record (or reload) a load trace, replay it adapted and static,
    and return (optionally write) the BENCH_SCHEMA /7 document.

    ``drift=False`` replays against the undrifted profile — useful to
    check the adapter does no harm when the model is already right.
    """
    if load_path:
        trace_doc = load_load_trace(load_path)
    else:
        trace_doc = record_load_trace(requests, sizes, seed)
    base = (
        HostProfile.load(profile_path) if profile_path
        else HostProfile.default()
    )
    profile = drift_profile(base) if drift else base
    # Adapted replay first: interpreter/NumPy warm-up lands on the
    # adapted side, making the >= 1.0 gate conservative.
    adapted = replay_load_trace(trace_doc, profile, adapting=True)
    static = replay_load_trace(trace_doc, profile, adapting=False)
    ratio = (
        static["sum_wall_s"] / adapted["sum_wall_s"]
        if adapted["sum_wall_s"] > 0 else float("inf")
    )
    doc = {
        "schema": BENCH_SCHEMA,
        "host": {
            "cpu_count": _usable_cpus(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "requests": len(trace_doc["requests"]),
            "sizes": trace_doc.get("sizes"),
            "seed": trace_doc.get("seed"),
            "drift": drift,
            "profile_source": profile.source,
            "candidate_P": list(_REPLAY_CANDIDATE_P),
        },
        "adapt_replay": {
            "static": static,
            "adapted": adapted,
            "adapted_over_static": ratio,
        },
    }
    if out:
        write_bench(doc, out)
    return doc
