"""Experiment harness: one runner per table/figure of Chapter 5, paper-value
tables for comparison, and report formatting.  The pytest benchmarks in
``benchmarks/`` are thin wrappers over these runners."""

from repro.harness.paper_data import PAPER
from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.harness.report import format_result, format_series, format_table
from repro.harness.export import dump_result, result_to_dict, stats_to_dict
from repro.harness.sweeps import (
    SweepResult,
    compare_sweep,
    render_heatmap,
    run_sweep,
)

__all__ = [
    "dump_result",
    "result_to_dict",
    "stats_to_dict",
    "SweepResult",
    "run_sweep",
    "compare_sweep",
    "render_heatmap",
    "PAPER",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "format_result",
    "format_series",
    "format_table",
]
