"""Machine-readable export of experiment results and run statistics.

``EXPERIMENTS.md`` is authored from these JSON dumps, and downstream users
get a stable format for regression tracking (the shape of which is pinned
by tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.harness.experiments import ExperimentResult
from repro.machine.metrics import RunStats

__all__ = ["result_to_dict", "stats_to_dict", "dump_result"]


def stats_to_dict(stats: RunStats) -> Dict[str, Any]:
    """Flatten a :class:`RunStats` into plain JSON types."""
    return {
        "P": stats.P,
        "n": stats.n,
        "N": stats.N,
        "elapsed_us": stats.elapsed_us,
        "us_per_key": stats.us_per_key,
        "seconds_total": stats.seconds_total,
        "remaps": stats.remaps,
        "volume_per_proc": stats.volume_per_proc,
        "messages_per_proc": stats.messages_per_proc,
        "computation_per_key": stats.computation_per_key,
        "communication_per_key": stats.communication_per_key,
        "breakdown_us": dict(stats.mean_breakdown.times),
    }


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten an :class:`ExperimentResult` (measured + paper rows)."""
    return {
        "ident": result.ident,
        "title": result.title,
        "unit": result.unit,
        "columns": list(result.columns),
        "rows": {str(k): list(v) for k, v in result.rows.items()},
        "paper_columns": list(result.paper_columns),
        "paper_rows": {str(k): list(v) for k, v in result.paper_rows.items()},
        "notes": result.notes,
    }


def dump_result(
    result: ExperimentResult,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Serialize a result to JSON; optionally also write it to ``path``."""
    text = json.dumps(result_to_dict(result), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
