"""A fault-tolerant transport decorator for any :class:`~repro.runtime.api.Comm`.

:class:`ReliableComm` wraps an unreliable communicator (in practice the
threads backend with a :class:`~repro.faults.plan.FaultInjector` mangling
envelopes) and restores exactly-once, integrity-checked delivery:

* every payload travels in an envelope ``(seq, checksum, data)`` — the
  checksum is computed by the sender over the *true* payload, so in-flight
  corruption is detected on arrival and the copy discarded;
* sequence numbers (one per collective) make retransmission idempotent:
  late and duplicated copies of an already-accepted envelope are dropped;
* delivery runs in collective retry rounds: a control-plane allgather first
  announces who sends how much to whom, then data rounds repeat — with
  capped exponential backoff plus jitter between rounds — until every rank
  has both received everything it was promised and had its own sends
  acknowledged;
* a watchdog converts persistent silence into typed errors: a peer whose
  sends never validate raises :class:`~repro.errors.CorruptPayloadError`, a
  peer that stops acknowledging raises
  :class:`~repro.errors.PeerFailedError`, and a drained retry budget with
  no single culprit raises :class:`~repro.errors.SpmdTimeoutError` — each
  carrying the rank, the phase, and the per-round retry history;
* a collapsed barrier (a peer died mid-collective) is translated from the
  backend's generic :class:`~repro.errors.CommunicationError` into
  :class:`~repro.errors.PeerFailedError` so callers can trigger recovery.

With no injector — or a :class:`~repro.faults.plan.FaultPlan` whose rates
are all zero — every method is a straight passthrough to the wrapped
communicator: zero extra rounds, zero retries, zero overhead.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    CorruptPayloadError,
    PeerFailedError,
    SpmdTimeoutError,
)
from repro.faults.plan import FaultInjector, InjectedCrash, NO_FAULT
from repro.runtime.api import Comm
from repro.trace.recorder import trace_span

__all__ = ["ReliableComm"]

#: (seq, checksum, payload) — what actually travels per message copy.
_Envelope = Tuple[int, int, np.ndarray]


def _checksum(payload: np.ndarray) -> int:
    """CRC-32 over the payload bytes and dtype (dtype confusion is
    corruption too)."""
    return zlib.crc32(str(payload.dtype).encode() + payload.tobytes())


class ReliableComm(Comm):
    """Reliable, integrity-checked view over an unreliable communicator.

    Parameters
    ----------
    inner:
        The transport to wrap (any :class:`~repro.runtime.api.Comm`).
    injector:
        Fault source consulted per envelope per attempt; ``None`` (or a
        null plan) short-circuits every method to a passthrough.
    max_retries:
        Data rounds attempted per collective before the watchdog escalates.
    base_backoff / backoff_cap / jitter:
        Sleep between retry rounds: ``min(cap, base * 2**round)`` scaled by
        ``1 + jitter * U[0,1)`` (seconds).  Tiny by default — the threads
        backend's rounds are already barrier-paced.
    """

    def __init__(
        self,
        inner: Comm,
        injector: Optional[FaultInjector] = None,
        max_retries: int = 16,
        base_backoff: float = 0.0005,
        backoff_cap: float = 0.02,
        jitter: float = 0.5,
    ):
        if (
            injector is not None
            and not injector.plan.is_null
            and not getattr(inner, "in_process", True)
        ):
            # The injector's mutable state and RNG live in one address
            # space; a cross-process backend would fork per-rank copies
            # that draw independent fault streams and report nothing back.
            raise ConfigurationError(
                "fault injection requires an in-process backend (threads): "
                f"{type(inner).__name__} runs ranks in separate processes, "
                "where a shared FaultInjector cannot work — use "
                "backend='threads' or a null fault plan"
            )
        self._inner = inner
        self.rank = inner.rank
        self.size = inner.size
        self._injector = injector
        self._max_retries = max_retries
        self._base_backoff = base_backoff
        self._backoff_cap = backoff_cap
        self._jitter = jitter
        self._phase: Any = "init"
        self._collective = 0
        seed = injector.plan.seed if injector is not None else 0
        self._sleep_rng = random.Random((seed << 8) ^ inner.rank)
        #: Per-instance recovery counters (also mirrored into the injector).
        self.retry_rounds = 0
        self.resent_elements = 0

    @property
    def tracer(self):
        """The wrapped communicator's tracer: spans recorded here and by
        the backend land in one per-rank timeline."""
        return self._inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._inner.tracer = value

    # -- phase bookkeeping ---------------------------------------------

    def set_phase(self, name: Any, index: int) -> None:
        """Label the current algorithm phase (for error reports and fault
        targeting) and honour a planned crash of this rank."""
        self._phase = name
        if self._injector is not None and self._injector.check_crash(
            self.rank, index
        ):
            raise InjectedCrash(self.rank, name)

    @property
    def _armed(self) -> bool:
        return self._injector is not None and not self._injector.plan.is_null

    # -- collectives ----------------------------------------------------

    def barrier(self) -> None:
        self._guarded(self._inner.barrier)

    def allgather(self, value: Any) -> List[Any]:
        return self._guarded(self._inner.allgather, value)

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._guarded(self._inner.bcast, value, root)

    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: alltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        if not self._armed:
            return self._guarded(self._inner.alltoallv, buckets)
        return self._reliable_alltoallv(buckets)

    # -- the retry-round protocol ---------------------------------------

    def _reliable_alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        me, P = self.rank, self.size
        inj = self._injector
        seq = self._collective
        self._collective += 1
        phase = self._phase

        # Control plane (kept fault-free: a real implementation piggybacks
        # these few ints on the barrier): announce per-destination sizes.
        sizes = [
            -1 if (b is None or np.asarray(b).size == 0) else int(np.asarray(b).size)
            for b in buckets
        ]
        meta = self._guarded(self._inner.allgather, sizes)
        expected: Dict[int, int] = {
            p: meta[p][me] for p in range(P)
            if p != me and meta[p][me] >= 0
        }

        pending: Dict[int, Tuple[np.ndarray, int]] = {}  # dst -> (payload, attempt)
        for q in range(P):
            if q != me and sizes[q] >= 0:
                pending[q] = (np.asarray(buckets[q]), 0)

        received: Dict[int, np.ndarray] = {}
        corrupt_from: Dict[int, int] = {}
        history: List[str] = []

        tr = self.tracer
        for round_no in range(self._max_retries + 1):
            rows: List[Optional[List[_Envelope]]] = [None] * P
            for q, (payload, attempt) in list(pending.items()):
                verdict = inj.decide(phase, me, q, seq, attempt)
                pending[q] = (payload, attempt + 1)
                if attempt > 0:
                    inj.note_retry(int(payload.size))
                    self.resent_elements += int(payload.size)
                    if tr is not None:
                        tr.add("resent_elements", int(payload.size))
                if verdict.drop or verdict.delay:
                    continue  # lost (or late): the next round retransmits
                wire = payload
                if verdict.corrupt:
                    wire = inj.corrupt(payload, phase, me, q, seq, attempt)
                env: _Envelope = (seq, _checksum(payload), wire)
                rows[q] = [env, env] if verdict.duplicate else [env]

            # Rounds after the first are pure recovery traffic: span them
            # as ``retransmit`` so phase totals separate first-attempt
            # transfer cost from fault-recovery cost.
            with trace_span(
                tr if round_no > 0 else None, "retransmit", round_no
            ):
                arrivals = self._guarded(self._inner.alltoallv, rows)
            for p in range(P):
                envs = arrivals[p]
                if p == me or not envs:
                    continue
                for got_seq, chk, wire in envs:
                    if p in received or got_seq != seq:
                        continue  # duplicate or stale copy: idempotent drop
                    wire = np.asarray(wire)
                    if _checksum(wire) != chk or wire.size != expected.get(p, -1):
                        corrupt_from[p] = corrupt_from.get(p, 0) + 1
                        continue
                    received[p] = wire

            # Acknowledgements: everyone announces which sources have
            # validated.  Because the size matrix ``meta`` is global
            # knowledge, every rank derives the same global completion
            # verdict from this one allgather — all ranks exit together.
            acks: List[Set[int]] = self._guarded(
                self._inner.allgather, frozenset(received)
            )
            for q in list(pending):
                if me in acks[q]:
                    del pending[q]
            if all(
                s in acks[d]
                for s in range(P)
                for d in range(P)
                if s != d and meta[s][d] >= 0
            ):
                break
            self.retry_rounds += 1
            if tr is not None:
                tr.add("retries")
            history.append(
                f"round {round_no}: got {sorted(received)}/{sorted(expected)}, "
                f"unacked -> {sorted(pending)}, corrupt from "
                f"{ {p: c for p, c in sorted(corrupt_from.items())} }"
            )
            self._sleep(round_no)
        else:
            self._escalate(expected, received, pending, corrupt_from, history)

        out: List[Optional[np.ndarray]] = [None] * P
        out[me] = buckets[me]
        for p, payload in received.items():
            out[p] = payload
        return out

    def _escalate(
        self,
        expected: Dict[int, int],
        received: Dict[int, np.ndarray],
        pending: Dict[int, Tuple[np.ndarray, int]],
        corrupt_from: Dict[int, int],
        history: List[str],
    ) -> None:
        """Retry budget drained: raise the most specific typed error."""
        phase = self._phase
        missing = sorted(set(expected) - set(received))
        for p in missing:
            if corrupt_from.get(p, 0) > 0:
                raise CorruptPayloadError(
                    f"rank {self.rank}: every payload from rank {p} in phase "
                    f"{phase!r} arrived corrupt ({corrupt_from[p]} rejected "
                    f"copies in {self._max_retries + 1} rounds)",
                    rank=p,
                    phase=str(phase),
                    attempts=corrupt_from[p],
                )
        if missing:
            raise PeerFailedError(
                f"rank {self.rank}: rank {missing[0]} went silent in phase "
                f"{phase!r} ({self._max_retries + 1} rounds without a valid "
                "payload)",
                rank=missing[0],
                phase=str(phase),
                retries=history,
            )
        if pending:
            culprit = sorted(pending)[0]
            raise PeerFailedError(
                f"rank {self.rank}: rank {culprit} stopped acknowledging in "
                f"phase {phase!r}",
                rank=culprit,
                phase=str(phase),
                retries=history,
            )
        raise SpmdTimeoutError(
            f"rank {self.rank}: collective in phase {phase!r} did not "
            f"converge within {self._max_retries + 1} rounds",
            rank=self.rank,
            phase=str(phase),
            retries=history,
        )

    # -- helpers --------------------------------------------------------

    def _sleep(self, round_no: int) -> None:
        delay = min(self._backoff_cap, self._base_backoff * (2.0 ** round_no))
        time.sleep(delay * (1.0 + self._jitter * self._sleep_rng.random()))

    def _guarded(self, fn, *args):
        """Run an inner-comm operation, translating a collapsed barrier
        (a peer died mid-collective) into a typed PeerFailedError."""
        try:
            return fn(*args)
        except CommunicationError as exc:
            if isinstance(exc.__cause__, threading.BrokenBarrierError):
                raise PeerFailedError(
                    f"rank {self.rank}: a peer failed during phase "
                    f"{self._phase!r} (barrier collapsed)",
                    rank=None,
                    phase=str(self._phase),
                ) from exc
            raise
