"""Deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` declares *what* can go wrong — per-message drop /
duplication / corruption / delay probabilities, an optional one-shot rank
crash, per-rank slowdown factors — and a :class:`FaultInjector` turns the
plan into reproducible per-message verdicts.  Determinism is the whole
point: every decision is a pure function of ``(seed, phase, src, dst, seq,
attempt)``, hashed into its own :class:`numpy.random.Generator`, so the
same plan injects the *same* faults regardless of thread interleaving,
retry timing, or which substrate (simulator or threads runtime) carries
the messages.  A chaos run that fails can therefore be replayed exactly.

The same injector instance serves both substrates:

* :class:`~repro.machine.simulator.Machine` consults it per simulated
  message and charges LogGP time for the induced retransmissions, so
  injected faults show up in the simulated makespan and the R/V/M metrics;
* :class:`~repro.faults.transport.ReliableComm` consults it per envelope on
  the in-process threads runtime, where the induced retries exercise real
  concurrency.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Union

import numpy as np

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FaultDecision",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "InjectedCrash",
    "NO_FAULT",
    "corrupt_payload",
]

#: Phases are named on the threads runtime ("phase-3") and numbered on the
#: simulator (the remap counter); both hash stably.
PhaseId = Union[int, str]


class InjectedCrash(ReproError):
    """A rank death injected by a :class:`FaultPlan` (never a real bug).

    Raised *inside* the crashing rank; peers observe the collapse as a
    :class:`~repro.errors.PeerFailedError`.  The chaos driver catches this
    to trigger a checkpoint restart.
    """

    def __init__(self, rank: int, phase: PhaseId):
        super().__init__(f"injected crash of rank {rank} at phase {phase!r}")
        self.rank = rank
        self.phase = phase


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one message attempt."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    delay: bool = False

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.corrupt or self.delay)


#: Shared "nothing happens" verdict (the rate-0 fast path allocates nothing).
NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded description of the faults to inject.

    Rates are independent per-message probabilities in ``[0, 1]``; a message
    attempt may suffer several faults at once (e.g. delayed *and*
    duplicated).  ``crash_rank``/``crash_phase`` schedule at most one rank
    death: the first time ``crash_rank`` enters a phase with index >=
    ``crash_phase`` it dies (one-shot — after a restart the plan lets it
    live, modelling a recovered node).  ``slowdown`` multiplies the named
    ranks' simulated compute charges.  ``phases`` (when given) restricts all
    message faults to those phase ids.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    #: Simulated delay magnitude (µs) on the machine; on the threads
    #: runtime a delayed envelope simply arrives one retry round late.
    delay_us: float = 500.0
    crash_rank: Optional[int] = None
    crash_phase: int = 0
    slowdown: Mapping[int, float] = field(default_factory=dict)
    phases: Optional[FrozenSet[PhaseId]] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "delay"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {name}={rate} outside [0, 1]"
                )
        if self.delay_us < 0:
            raise ConfigurationError(f"delay_us must be >= 0, got {self.delay_us}")
        for rank, factor in self.slowdown.items():
            if factor < 1.0:
                raise ConfigurationError(
                    f"slowdown factor for rank {rank} must be >= 1, got {factor}"
                )
        # Freeze the mapping/set fields so the plan is safely shareable.
        object.__setattr__(self, "slowdown", dict(self.slowdown))
        if self.phases is not None:
            object.__setattr__(self, "phases", frozenset(self.phases))

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything — the transports use
        this to take a byte-identical fast path."""
        return (
            self.drop == self.duplicate == self.corrupt == self.delay == 0.0
            and self.crash_rank is None
            and not self.slowdown
        )


@dataclass
class FaultStats:
    """Counters of what an injector actually did (one injector's totals,
    accumulated across restarts)."""

    decisions: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    delayed: int = 0
    crashes: int = 0
    #: Recovery work observed by the transports (they report back here).
    retries: int = 0
    resent_elements: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decisions": self.decisions,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "crashes": self.crashes,
            "retries": self.retries,
            "resent_elements": self.resent_elements,
        }


def _phase_key(phase: PhaseId) -> int:
    if isinstance(phase, int):
        return phase & 0xFFFFFFFF
    return zlib.crc32(str(phase).encode("utf-8"))


def corrupt_payload(payload: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Return a copy of ``payload`` with one bit flipped in one element
    (the classic single-event-upset model).  Empty payloads pass through."""
    bad = np.array(payload, copy=True)
    if bad.size == 0:
        return bad
    pos = int(rng.integers(bad.size))
    flat = bad.reshape(-1).view(np.uint8)
    byte = pos * bad.dtype.itemsize + int(rng.integers(bad.dtype.itemsize))
    flat[byte] ^= np.uint8(1 << int(rng.integers(8)))
    return bad


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically; thread-safe.

    One injector is shared by every rank of a world (threads runtime) or by
    every processor of a :class:`~repro.machine.simulator.Machine`.  All
    mutable state is the statistics and the one-shot crash latch, both
    lock-protected; the fault verdicts themselves are pure functions.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        self._lock = threading.Lock()
        self._crash_pending = plan.crash_rank is not None

    # -- verdicts ------------------------------------------------------

    def decide(
        self, phase: PhaseId, src: int, dst: int, seq: int, attempt: int = 0
    ) -> FaultDecision:
        """The (deterministic) fate of attempt ``attempt`` of message
        ``seq`` from ``src`` to ``dst`` in ``phase``."""
        plan = self.plan
        if plan.is_null:
            return NO_FAULT
        if plan.phases is not None and phase not in plan.phases:
            return NO_FAULT
        rng = self._rng(phase, src, dst, seq, attempt, salt=0)
        u = rng.random(4)
        verdict = FaultDecision(
            drop=bool(u[0] < plan.drop),
            duplicate=bool(u[1] < plan.duplicate),
            corrupt=bool(u[2] < plan.corrupt),
            delay=bool(u[3] < plan.delay),
        )
        with self._lock:
            self.stats.decisions += 1
            self.stats.dropped += verdict.drop
            self.stats.duplicated += verdict.duplicate
            self.stats.corrupted += verdict.corrupt
            self.stats.delayed += verdict.delay
        return verdict

    def corrupt(
        self, payload: np.ndarray, phase: PhaseId, src: int, dst: int,
        seq: int, attempt: int = 0,
    ) -> np.ndarray:
        """Deterministically corrupted copy of ``payload``."""
        return corrupt_payload(
            payload, self._rng(phase, src, dst, seq, attempt, salt=1)
        )

    def check_crash(self, rank: int, phase_index: int) -> bool:
        """One-shot: True exactly once, for the planned victim at (or after)
        the planned phase.  The caller raises :class:`InjectedCrash`."""
        plan = self.plan
        if plan.crash_rank != rank or phase_index < plan.crash_phase:
            return False
        with self._lock:
            if not self._crash_pending:
                return False
            self._crash_pending = False
            self.stats.crashes += 1
            return True

    def slowdown_factor(self, rank: int) -> float:
        return self.plan.slowdown.get(rank, 1.0)

    # -- transport feedback -------------------------------------------

    def note_retry(self, elements: int = 0) -> None:
        """Transports report each retransmission here (for the overhead
        accounting in chaos reports)."""
        with self._lock:
            self.stats.retries += 1
            self.stats.resent_elements += elements

    # -- helpers -------------------------------------------------------

    def _rng(
        self, phase: PhaseId, src: int, dst: int, seq: int, attempt: int,
        salt: int,
    ) -> np.random.Generator:
        ss = np.random.SeedSequence(
            entropy=self.plan.seed,
            spawn_key=(_phase_key(phase), src, dst, seq, attempt, salt),
        )
        return np.random.default_rng(ss)
