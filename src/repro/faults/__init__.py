"""Fault injection and fault tolerance for the communication substrates.

The rest of the package assumes every transfer succeeds and every rank
survives; real coarse-grained machines deliver late, drop, and fail.  This
subpackage makes the communication plane adversarial-by-default testable:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultInjector`:
  seeded, deterministic message drop / duplication / corruption / delay
  plus rank crash and slowdown, replayable bit-for-bit from the seed;
* :mod:`repro.faults.transport` — :class:`ReliableComm`: sequence numbers,
  payload checksums, timeout + capped exponential backoff with jitter,
  idempotent resend, and a watchdog that converts silence into typed
  :class:`~repro.errors.PeerFailedError` / ``SpmdTimeoutError`` /
  ``CorruptPayloadError``;
* :mod:`repro.faults.checkpoint` — :class:`CheckpointStore`: phase-level
  shard snapshots so a crashed run resumes from the last completed stage;
* :mod:`repro.faults.chaos` — :func:`run_chaos_sort`: the driver that
  sorts through an adversarial network, restarting from checkpoints, and
  verifies the result element-exactly;
* :mod:`repro.faults.netchaos` — :class:`NetFaultInjector`: the same
  deterministic verdicts pointed at the serving layer's wire frames
  (drop / corrupt / delay per frame), powering ``chaos-serve``.

The same :class:`FaultInjector` also plugs into the LogGP simulator
(:class:`repro.machine.Machine`), where retransmissions are charged as
simulated time so fault rates show up in the makespan and R/V/M metrics —
see the ``chaos-sweep`` experiment and the ``repro-bitonic chaos`` CLI.
"""

from repro.faults.checkpoint import CheckpointStore
from repro.faults.chaos import ChaosReport, run_chaos_sort
from repro.faults.netchaos import NetFaultInjector, corrupt_frame_bytes
from repro.faults.plan import (
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultStats,
    InjectedCrash,
    corrupt_payload,
)
from repro.faults.transport import ReliableComm

__all__ = [
    "ChaosReport",
    "CheckpointStore",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "InjectedCrash",
    "NetFaultInjector",
    "ReliableComm",
    "corrupt_frame_bytes",
    "corrupt_payload",
    "run_chaos_sort",
]
