"""Frame-level fault injection for the network serving layer.

The PR 1 fault machinery (:mod:`repro.faults.plan`) decides the fate of
*SPMD messages*; this adapter points the same deterministic machinery at
*wire frames* so the networked sort service (:mod:`repro.service.net`)
can be chaos-tested with the exact reproducibility guarantees the
transports enjoy: every verdict is a pure function of
``(seed, direction, connection, frame seq)``, so a failing chaos-serve
run replays bit-for-bit.

Faults modelled, and how each surfaces:

* **drop** — the frame is discarded after decode (inbound) or never
  written (outbound).  The peer observes a missing reply and recovers by
  deadline + retry with the same idempotent request id.
* **corrupt** — one bit of the encoded frame's payload is flipped *after*
  the CRC was computed, so the receiver's checksum rejects it as a typed
  :class:`~repro.errors.FrameCorruptError` — damage is never silent.
* **delay** — the frame is stalled ``delay_s`` before delivery,
  exercising the client's deadline accounting without killing anything.

Crash-style chaos (killing a whole shard) is not a frame fault; the
chaos-serve driver does that by abruptly closing a server.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.faults.plan import FaultDecision, FaultInjector, FaultPlan

__all__ = ["NetFaultInjector", "corrupt_frame_bytes"]


def corrupt_frame_bytes(data: bytes, rng: np.random.Generator) -> bytes:
    """``data`` with one bit flipped somewhere past the fixed header.

    The flip lands in the checksummed region (meta/body) so the
    receiver's CRC is guaranteed to catch it; an empty payload flips a
    header byte instead, which the structural checks catch.
    """
    if not data:
        return data
    from repro.service.net import HEADER_SIZE  # local import: no cycle at module load

    buf = bytearray(data)
    lo = HEADER_SIZE if len(buf) > HEADER_SIZE else 0
    pos = lo + int(rng.integers(len(buf) - lo))
    buf[pos] ^= 1 << int(rng.integers(8))
    return bytes(buf)


class NetFaultInjector:
    """Deterministic frame-fault verdicts over a shared :class:`FaultPlan`.

    Wraps a :class:`FaultInjector` (sharing its stats, so a chaos report
    aggregates SPMD and wire faults in one place) and exposes the verdict
    in frame terms.  ``direction`` is ``"in"`` (request frames arriving
    at the server) or ``"out"`` (response frames leaving it); each
    (direction, connection) stream numbers its frames independently.
    """

    def __init__(self, plan: FaultPlan,
                 injector: Optional[FaultInjector] = None):
        self.plan = plan
        self.injector = injector or FaultInjector(plan)

    @property
    def stats(self):
        return self.injector.stats

    def decide(
        self, direction: str, conn: int, seq: int
    ) -> FaultDecision:
        """The fate of frame ``seq`` on connection ``conn``."""
        return self.injector.decide(f"net-{direction}", conn, 0, seq)

    def corrupt(
        self, data: bytes, direction: str, conn: int, seq: int
    ) -> bytes:
        """Deterministically corrupted copy of an encoded frame."""
        rng = self.injector._rng(f"net-{direction}", conn, 0, seq, 0, salt=1)
        return corrupt_frame_bytes(data, rng)

    @property
    def delay_s(self) -> float:
        """Injected stall per delayed frame, in seconds (the plan stores
        the magnitude in simulated µs; on the wire we apply it 1000x so
        the default 500 µs becomes a tangible 0.5 s stall)."""
        return self.plan.delay_us / 1e3

    def apply(
        self, data: bytes, direction: str, conn: int, seq: int
    ) -> Tuple[Optional[bytes], float]:
        """One-call convenience: ``(bytes_to_deliver_or_None, stall_s)``.

        ``None`` means the frame was dropped; corrupted frames come back
        modified; ``stall_s`` > 0 asks the carrier to sleep first.
        """
        verdict = self.decide(direction, conn, seq)
        if verdict.drop:
            return None, 0.0
        out = data
        if verdict.corrupt:
            out = self.corrupt(data, direction, conn, seq)
        return out, (self.delay_s if verdict.delay else 0.0)
