"""Phase-level checkpointing for the SPMD sorts.

A :class:`CheckpointStore` keeps, per rank, snapshots of the local shard
taken after each completed sort stage (stage 0 = after the initial local
sort, stage *i* = after remap phase *i*).  The store is shared by every
rank of a world and survives a world restart, so a crashed run can resume
from the last stage *every* rank completed instead of starting over.

Because the sort phases are separated by collectives, concurrently running
ranks are never more than one stage apart; keeping the last two snapshots
per rank therefore always preserves the globally completed stage while
bounding memory to ``2 × shard`` per rank.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Thread-safe in-memory snapshots: ``rank -> {stage: shard copy}``.

    ``keep`` bounds how many most-recent stages are retained per rank
    (must be >= 2 so the resumable stage is never pruned mid-run).
    """

    def __init__(self, keep: int = 2):
        if keep < 2:
            raise ConfigurationError(
                f"checkpoint store must keep >= 2 stages, got {keep}"
            )
        self.keep = keep
        self._lock = threading.Lock()
        self._snaps: Dict[int, Dict[int, np.ndarray]] = {}
        #: Bookkeeping for chaos reports.
        self.saves = 0
        self.restores = 0

    def save(self, rank: int, stage: int, data: np.ndarray) -> None:
        """Snapshot ``rank``'s shard as of completed ``stage``."""
        snap = np.array(data, copy=True)
        with self._lock:
            stages = self._snaps.setdefault(rank, {})
            stages[stage] = snap
            for old in sorted(stages)[: -self.keep]:
                del stages[old]
            self.saves += 1

    def load(self, rank: int, stage: int) -> Optional[np.ndarray]:
        """The shard snapshot of ``rank`` at ``stage`` (a copy), or None."""
        with self._lock:
            snap = self._snaps.get(rank, {}).get(stage)
            if snap is None:
                return None
            self.restores += 1
            return np.array(snap, copy=True)

    def latest_stage(self, rank: int) -> int:
        """The newest stage snapshotted for ``rank`` (-1 when none)."""
        with self._lock:
            stages = self._snaps.get(rank)
            return max(stages) if stages else -1

    def resumable_stage(self, ranks: Optional[List[int]] = None) -> int:
        """The newest stage *every* rank has completed (-1 when any rank has
        no snapshot — i.e. restart from scratch)."""
        with self._lock:
            if not self._snaps:
                return -1
            ranks = ranks if ranks is not None else sorted(self._snaps)
            best = []
            for r in ranks:
                stages = self._snaps.get(r)
                if not stages:
                    return -1
                best.append(max(stages))
            return min(best)

    def clear(self) -> None:
        with self._lock:
            self._snaps.clear()
