"""Chaos harness: run the SPMD bitonic sort under an adversarial network.

:func:`run_chaos_sort` executes the real message-passing sort
(:func:`~repro.runtime.bitonic_spmd.spmd_bitonic_sort`) — by default on
the threads backend, the only one whose shared address space supports
fault *injection* — with every rank's communicator wrapped in a
:class:`~repro.faults.transport.ReliableComm` driven by one shared
:class:`~repro.faults.plan.FaultInjector`.  Message drop / duplication /
corruption / delay are absorbed by the transport's retransmission
protocol; an injected rank crash tears the world down, and the driver
restarts it — resuming from the phase-level
:class:`~repro.faults.checkpoint.CheckpointStore` snapshots, so completed
sort stages are never recomputed.  The output is verified element-exactly
against :func:`numpy.sort` before the report is returned: a chaos run can
fail loudly, but never lie.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, PeerFailedError
from repro.faults.checkpoint import CheckpointStore
from repro.faults.plan import FaultInjector, FaultPlan, InjectedCrash
from repro.faults.transport import ReliableComm
from repro.runtime.bitonic_spmd import spmd_bitonic_sort
from repro.runtime.driver import run_spmd
from repro.sorts.base import verify_sorted

__all__ = ["ChaosReport", "run_chaos_sort"]


@dataclass
class ChaosReport:
    """Outcome of one chaos run: the verified result plus the cost of
    surviving the injected faults."""

    sorted_keys: np.ndarray
    P: int
    n: int
    wall_seconds: float
    restarts: int
    resumed_stage: int  # newest checkpointed stage a restart resumed from (-1: none)
    fault_stats: Dict[str, int] = field(default_factory=dict)
    checkpoint_saves: int = 0
    retry_rounds: int = 0
    resent_elements: int = 0

    def describe(self) -> str:
        s = self.fault_stats
        lines = [
            f"chaos sort: {self.P * self.n:,} keys on {self.P} ranks — "
            f"verified against np.sort in {self.wall_seconds:.2f}s wall",
            f"  injected   drop={s.get('dropped', 0)} dup={s.get('duplicated', 0)} "
            f"corrupt={s.get('corrupted', 0)} delay={s.get('delayed', 0)} "
            f"crash={s.get('crashes', 0)}",
            f"  recovery   retry rounds={self.retry_rounds}  "
            f"resent={self.resent_elements:,} elements  "
            f"restarts={self.restarts}"
            + (
                f" (resumed from checkpoint stage {self.resumed_stage})"
                if self.restarts and self.resumed_stage >= 0
                else ""
            ),
            f"  checkpoints {self.checkpoint_saves} snapshots",
        ]
        return "\n".join(lines)


def run_chaos_sort(
    keys: np.ndarray,
    P: int,
    plan: FaultPlan,
    max_restarts: int = 2,
    timeout: float = 60.0,
    checkpoint: bool = True,
    max_retries: int = 16,
    key_bits: int = 32,
    backend: str = "threads",
) -> ChaosReport:
    """Sort ``keys`` on ``P`` concurrent ranks while ``plan``'s faults fire.

    Message-level faults are survived in place by the reliable transport; a
    planned rank crash kills the world, which is then restarted up to
    ``max_restarts`` times, resuming from the last checkpointed stage when
    ``checkpoint`` is on.  Raises the transport's typed error
    (:class:`~repro.errors.PeerFailedError` et al.) when the budget is
    exhausted; on success the output has been verified element-exactly.

    ``backend`` selects the runtime substrate; fault *injection* needs the
    shared address space of the threads backend, so any other backend
    requires a null plan (and then simply exercises the transport's
    passthrough path there).
    """
    if backend != "threads" and not plan.is_null:
        raise ConfigurationError(
            f"chaos faults cannot be injected on the {backend!r} backend: "
            "the shared FaultInjector needs one address space — use "
            "backend='threads', or a null fault plan to run the reliable "
            "transport's passthrough on another backend"
        )
    keys = np.asarray(keys)
    n = keys.size // P
    injector = FaultInjector(plan)
    store = CheckpointStore() if checkpoint else None
    start = time.perf_counter()
    restarts = 0
    resumed_stage = -1

    def prog(comm):
        rc = ReliableComm(comm, injector, max_retries=max_retries)
        local = keys[comm.rank * n : (comm.rank + 1) * n]
        return spmd_bitonic_sort(rc, local, key_bits=key_bits, checkpoint=store)

    while True:
        try:
            parts = run_spmd(P, prog, timeout=timeout, backend=backend)
            break
        except (InjectedCrash, PeerFailedError) as exc:
            if restarts >= max_restarts:
                if isinstance(exc, InjectedCrash):
                    raise PeerFailedError(
                        f"rank {exc.rank} crashed in phase {exc.phase!r} and "
                        "the restart budget is exhausted",
                        rank=exc.rank,
                        phase=str(exc.phase),
                    ) from exc
                raise
            restarts += 1
            if store is not None:
                resumed_stage = max(resumed_stage, store.resumable_stage())

    out = np.concatenate(parts)
    verify_sorted(keys, out, "chaos-bitonic")
    rc_rounds = injector.stats.retries
    return ChaosReport(
        sorted_keys=out,
        P=P,
        n=n,
        wall_seconds=time.perf_counter() - start,
        restarts=restarts,
        resumed_stage=resumed_stage,
        fault_stats=injector.stats.as_dict(),
        checkpoint_saves=store.saves if store is not None else 0,
        retry_rounds=rc_rounds,
        resent_elements=injector.stats.resent_elements,
    )
