"""The one front door: ``sort()`` over every substrate, one report back.

The package grew three ways to run the paper's sort — the LogGP-simulated
machine (:mod:`repro.sorts`), the real SPMD runtimes
(:mod:`repro.runtime`), and the chaos/fault stack (:mod:`repro.faults`) —
each with its own entry point and its own result shape.  :func:`sort`
unifies them behind a single call::

    from repro import sort

    report = sort(keys, P=8)                                # simulated
    report = sort(keys, P=8, backend="threads", trace=True) # real SPMD, traced
    report = sort(keys, P=4, backend="threads",
                  faults=FaultPlan.light(seed=7))           # under faults

and always returns one :class:`SortReport` carrying whatever the chosen
substrate produced: the sorted keys and wall time always; simulated
:class:`~repro.machine.metrics.RunStats` from the simulated backend; a
:class:`~repro.trace.report.PhaseReport` aligning measured, simulated and
predicted per-phase time when ``trace=True``; fault and recovery counters
when a :class:`~repro.faults.plan.FaultPlan` was armed.

Capability matrix (a combination outside it raises
:class:`~repro.errors.ConfigurationError` rather than silently ignoring
an argument):

===========  ==========================  =====  ======
backend      algorithms                  trace  faults
===========  ==========================  =====  ======
simulated    smart, cyclic-blocked,      yes    yes
             blocked-merge, radix,
             sample
threads      smart                       yes    yes
procs        smart                       yes    no (injector needs one
                                                address space)
===========  ==========================  =====  ======
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.metrics import RunStats

__all__ = ["SortReport", "sort", "SORT_BACKENDS", "SORT_ALGORITHMS"]

#: Substrates :func:`sort` can run on.
SORT_BACKENDS = ("simulated", "threads", "procs")

#: Algorithm names accepted by :func:`sort` (SPMD backends support only
#: ``smart`` — the message-passing program implements the smart schedule).
SORT_ALGORITHMS = ("smart", "cyclic-blocked", "blocked-merge", "radix", "sample")

#: Algorithms with a closed-form predictor (fills the ``predicted`` column
#: of a traced report).
_PREDICTABLE = ("smart", "cyclic-blocked", "blocked-merge")


@dataclass
class SortReport:
    """Everything one :func:`sort` call produced, in one place.

    Always present: the identity of the run (``algorithm``, ``backend``,
    ``P``, ``n``), the globally sorted ``sorted_keys``, and host
    ``wall_seconds``.  The rest depends on the substrate: ``stats`` is the
    simulated machine's metrics (simulated backend only), ``phases`` the
    three-source per-phase breakdown (``trace=True``), ``fault_stats`` /
    ``retry_rounds`` / ``resent_elements`` the injected-fault ledger
    (``faults`` armed).
    """

    algorithm: str
    backend: str
    P: int
    n: int
    sorted_keys: np.ndarray
    wall_seconds: float
    verified: bool = False
    stats: Optional[RunStats] = None
    phases: Optional["PhaseReport"] = None  # noqa: F821 — forward ref
    #: Per-rank span/counter recorders of a traced SPMD run (rank order);
    #: feed to :func:`repro.trace.write_chrome_trace` for a timeline file.
    tracers: Optional[list] = None
    fault_stats: Dict[str, int] = field(default_factory=dict)
    retry_rounds: int = 0
    resent_elements: int = 0

    @property
    def N(self) -> int:
        """Total number of keys sorted."""
        return self.P * self.n

    def describe(self) -> str:
        """Human-readable run summary (plus the phase table when traced)."""
        lines = [
            f"{self.algorithm} sort: {self.N:,} keys on {self.P} "
            f"{'simulated processors' if self.backend == 'simulated' else 'ranks'}"
            f" [{self.backend}] — {self.wall_seconds:.3f}s wall"
            + (", verified" if self.verified else "")
        ]
        if self.stats is not None:
            lines.append(
                f"  simulated {self.stats.elapsed_us:,.0f} µs makespan, "
                f"{self.stats.remaps} remaps, "
                f"{self.stats.volume_per_proc:,.0f} elements/proc"
            )
        if self.fault_stats:
            s = self.fault_stats
            lines.append(
                f"  faults     drop={s.get('dropped', 0)} "
                f"dup={s.get('duplicated', 0)} corrupt={s.get('corrupted', 0)} "
                f"delay={s.get('delayed', 0)}; recovery retry rounds="
                f"{self.retry_rounds}, resent={self.resent_elements:,} elements"
            )
        if self.phases is not None:
            lines.append(self.phases.describe())
        return "\n".join(lines)


def sort(
    keys: np.ndarray,
    P: Optional[int] = None,
    *,
    algorithm: str = "smart",
    backend: str = "simulated",
    trace: bool = False,
    faults: Optional["FaultPlan"] = None,  # noqa: F821 — forward ref
    timeout: float = 120.0,
    verify: bool = True,
    backend_options: Optional["BackendOptions"] = None,  # noqa: F821
    service: Optional["SortService"] = None,  # noqa: F821 — forward ref
) -> SortReport:
    """Sort ``keys`` across ``P`` processors/ranks and report everything.

    Parameters
    ----------
    keys:
        The global input array (power-of-two size divisible by ``P``).
    P:
        Number of simulated processors or real ranks.  Optional when a
        ``service`` routes the call — its planner then chooses ``P``.
    algorithm:
        One of :data:`SORT_ALGORITHMS`; SPMD backends accept only
        ``"smart"``.
    backend:
        ``"simulated"`` runs on the LogGP-costed machine;
        ``"threads"`` / ``"procs"`` run the real message-passing sort via
        :func:`repro.runtime.driver.run_spmd`.
    trace:
        Record per-phase time and attach a
        :class:`~repro.trace.report.PhaseReport` aligning measured (SPMD
        backends), simulated, and closed-form predicted columns.  Off by
        default: the untraced hot path allocates no trace objects.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` to inject; survived by the
        simulator's fault plane (simulated) or
        :class:`~repro.faults.transport.ReliableComm` (threads).
    timeout:
        Wall-clock budget for the SPMD world (ignored when simulated).
    verify:
        Check the output element-exactly against ``np.sort`` (on by
        default — the front door favours safety over benchmark purity).
    backend_options:
        :class:`~repro.runtime.driver.BackendOptions` tuning for the SPMD
        backends.  Its ``fused`` / ``grouped`` fields (both on by
        default) toggle the fused zero-copy remap collective and the
        Lemma-4 group-scoped exchanges of the SPMD sort; ``overlap`` /
        ``chunks`` (off by default) engage the chunked nonblocking remap
        pipeline that hides transfer wait behind unpack/merge work.
    service:
        A running :class:`~repro.service.SortService`.  When given, the
        call routes through the service's warm world pool instead of
        spawning a one-shot world: the explicitly-passed ``P`` /
        SPMD ``backend`` / ``backend_options`` flags become forced
        planner overrides, anything left unsaid (including
        ``backend="simulated"``, which the service never runs) is the
        planner's choice.
    """
    if service is not None:
        return _sort_service(
            keys, P, algorithm, backend, trace, faults, verify,
            backend_options, service,
        )
    if P is None:
        raise ConfigurationError(
            "P is required unless a service= routes the request "
            "(only the service's planner can choose P)"
        )
    if backend not in SORT_BACKENDS:
        raise ConfigurationError(
            f"unknown sort backend {backend!r}; choose from {list(SORT_BACKENDS)}"
        )
    if algorithm not in SORT_ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {list(SORT_ALGORITHMS)}"
        )
    keys = np.asarray(keys)
    if backend == "simulated":
        if backend_options is not None:
            raise ConfigurationError(
                "backend_options tune the SPMD backends; the simulated "
                "machine takes none"
            )
        return _sort_simulated(keys, P, algorithm, trace, faults, verify)
    if algorithm != "smart":
        raise ConfigurationError(
            f"the SPMD runtime implements only the 'smart' algorithm; "
            f"run {algorithm!r} on backend='simulated'"
        )
    return _sort_spmd(
        keys, P, backend, trace, faults, timeout, verify, backend_options
    )


def _sorter(algorithm: str):
    from repro.sorts import (
        BlockedMergeBitonicSort,
        CyclicBlockedBitonicSort,
        ParallelRadixSort,
        ParallelSampleSort,
        SmartBitonicSort,
    )

    return {
        "smart": SmartBitonicSort,
        "cyclic-blocked": CyclicBlockedBitonicSort,
        "blocked-merge": BlockedMergeBitonicSort,
        "radix": ParallelRadixSort,
        "sample": ParallelSampleSort,
    }[algorithm]()


def _predicted(algorithm: str, N: int, P: int):
    if algorithm not in _PREDICTABLE:
        return None
    from repro.theory.predict import predict

    return predict(algorithm, N, P)


def _sort_service(
    keys, P, algorithm, backend, trace, faults, verify, backend_options,
    service,
) -> SortReport:
    """Bridge the front door onto a running SortService.

    Explicit arguments become forced planner overrides; defaults mean
    "planner chooses" (``backend="simulated"`` is the front door's own
    default, so it reads as unconstrained here — the service runs only
    SPMD backends).
    """
    from repro.sorts.base import verify_sorted

    if algorithm != "smart":
        raise ConfigurationError(
            f"the sort service runs only the 'smart' algorithm; "
            f"run {algorithm!r} on backend='simulated' without a service"
        )
    forced_backend = None if backend == "simulated" else backend
    if forced_backend is not None and forced_backend not in SORT_BACKENDS:
        raise ConfigurationError(
            f"unknown sort backend {backend!r}; choose from {list(SORT_BACKENDS)}"
        )
    fused = backend_options.fused if backend_options is not None else None
    grouped = backend_options.grouped if backend_options is not None else None
    overlap = backend_options.overlap if backend_options is not None else None
    chunks = backend_options.chunks if backend_options is not None else None
    outcome = service.sort(
        keys,
        backend=forced_backend,
        P=P,
        fused=fused,
        grouped=grouped,
        overlap=overlap,
        chunks=chunks,
        faults=faults,
        trace=trace,
    )
    d = outcome.decision
    if verify:
        verify_sorted(keys, outcome.sorted_keys, f"service[{d.backend}x{d.P}]")
    phases = None
    if trace and outcome.tracers:
        from repro.sorts import SmartBitonicSort
        from repro.trace.report import build_phase_report

        # The last tracer is the service lane (queue wait); the phase
        # table aligns the rank tracers against simulation + theory.
        sim = SmartBitonicSort().run(keys, d.P)
        phases = build_phase_report(
            tracers=outcome.tracers[: d.P],
            stats=sim.stats,
            predicted=_predicted("smart", keys.size, d.P),
            P=d.P,
            n=keys.size // d.P,
        )
    return SortReport(
        algorithm="smart",
        backend=d.backend,
        P=d.P,
        n=keys.size // d.P,
        sorted_keys=outcome.sorted_keys,
        wall_seconds=outcome.wall_s,
        verified=verify,
        phases=phases,
        tracers=outcome.tracers,
        fault_stats=outcome.fault_stats,
    )


def _sort_simulated(keys, P, algorithm, trace, faults, verify) -> SortReport:
    from repro.faults.plan import FaultInjector
    from repro.trace.report import build_phase_report

    injector = FaultInjector(faults) if faults is not None else None
    start = time.perf_counter()
    result = _sorter(algorithm).run(keys, P, verify=verify, injector=injector)
    wall = time.perf_counter() - start
    phases = None
    if trace:
        phases = build_phase_report(
            stats=result.stats,
            predicted=_predicted(algorithm, keys.size, P),
        )
    return SortReport(
        algorithm=algorithm,
        backend="simulated",
        P=P,
        n=keys.size // P,
        sorted_keys=result.sorted_keys,
        wall_seconds=wall,
        verified=verify,
        stats=result.stats,
        phases=phases,
        fault_stats=injector.stats.as_dict() if injector is not None else {},
        retry_rounds=injector.stats.retries if injector is not None else 0,
        resent_elements=(
            injector.stats.resent_elements if injector is not None else 0
        ),
    )


def _sort_spmd(
    keys, P, backend, trace, faults, timeout, verify, backend_options
) -> SortReport:
    from repro.faults.plan import FaultInjector
    from repro.runtime.bitonic_spmd import spmd_bitonic_sort
    from repro.runtime.driver import run_spmd
    from repro.sorts.base import verify_sorted
    from repro.trace.recorder import Tracer
    from repro.trace.report import build_phase_report

    if keys.size % P:
        raise ConfigurationError(
            f"{keys.size} keys do not divide over {P} ranks"
        )
    n = keys.size // P
    injector = None
    if faults is not None and not faults.is_null:
        if backend != "threads":
            raise ConfigurationError(
                f"fault injection needs the shared address space of the "
                f"threads backend, not {backend!r} — use backend='threads' "
                "or drop the fault plan"
            )
        injector = FaultInjector(faults)

    # Algorithm toggles ride in BackendOptions; None means "on" for
    # fused/grouped but "off" for overlap (an opt-in, measured trade).
    fused = backend_options is None or backend_options.fused is not False
    grouped = backend_options is None or backend_options.grouped is not False
    overlap = backend_options is not None and backend_options.overlap is True
    chunks = (
        backend_options.chunks
        if backend_options is not None and backend_options.chunks is not None
        else 4
    )

    def prog(comm):
        if trace:
            comm.tracer = Tracer(comm.rank)
        if injector is not None:
            from repro.faults.transport import ReliableComm

            comm = ReliableComm(comm, injector)
        out = spmd_bitonic_sort(
            comm,
            keys[comm.rank * n : (comm.rank + 1) * n],
            fused=fused,
            grouped=grouped,
            overlap=overlap,
            chunks=chunks,
        )
        return out, comm.tracer

    start = time.perf_counter()
    parts = run_spmd(
        P, prog, timeout=timeout, backend=backend, options=backend_options
    )
    wall = time.perf_counter() - start
    out = np.concatenate([p for p, _ in parts])
    if verify:
        verify_sorted(keys, out, f"smart-spmd[{backend}]")

    phases = tracers = None
    if trace:
        # The aligned three-source table: measured spans from this run,
        # the LogGP machine's simulation of the same (N, P), and the
        # closed-form prediction.
        from repro.sorts import SmartBitonicSort

        tracers = [tr for _, tr in parts]
        sim = SmartBitonicSort().run(keys, P)
        phases = build_phase_report(
            tracers=tracers,
            stats=sim.stats,
            predicted=_predicted("smart", keys.size, P),
            P=P,
            n=n,
        )
    return SortReport(
        algorithm="smart",
        backend=backend,
        P=P,
        n=n,
        sorted_keys=out,
        wall_seconds=wall,
        verified=verify,
        phases=phases,
        tracers=tracers,
        fault_stats=injector.stats.as_dict() if injector is not None else {},
        retry_rounds=injector.stats.retries if injector is not None else 0,
        resent_elements=(
            injector.stats.resent_elements if injector is not None else 0
        ),
    )
