"""The one front door: ``sort()`` over every substrate, one report back.

The package grew three ways to run the paper's sort — the LogGP-simulated
machine (:mod:`repro.sorts`), the real SPMD runtimes
(:mod:`repro.runtime`), and the chaos/fault stack (:mod:`repro.faults`) —
each with its own entry point and its own result shape.  :func:`sort`
unifies them behind a single call::

    from repro import sort

    report = sort(keys, P=8)                                # simulated
    report = sort(keys, P=8, backend="threads", trace=True) # real SPMD, traced
    report = sort(keys, P=4, backend="threads",
                  faults=FaultPlan.light(seed=7))           # under faults

and always returns one :class:`SortReport` carrying whatever the chosen
substrate produced: the sorted keys and wall time always; simulated
:class:`~repro.machine.metrics.RunStats` from the simulated backend; a
:class:`~repro.trace.report.PhaseReport` aligning measured, simulated and
predicted per-phase time when ``trace=True``; fault and recovery counters
when a :class:`~repro.faults.plan.FaultPlan` was armed.

Capability matrix (a combination outside it raises
:class:`~repro.errors.ConfigurationError` rather than silently ignoring
an argument; the algorithm column is the single source of truth,
:data:`BACKEND_ALGORITHMS`):

===========  ==========================  =====  ======
backend      algorithms                  trace  faults
===========  ==========================  =====  ======
simulated    smart, cyclic-blocked,      yes    yes
             blocked-merge, radix,
             sample, external*
threads      smart, sample, external*    yes    yes
procs        smart, sample, external*    yes    no (injector needs one
                                                address space)
===========  ==========================  =====  ======

``external*`` is the out-of-core spill-to-disk sort
(:mod:`repro.extsort`): it runs in-process on the calling host whatever
``backend`` says (the report's backend reads ``"local"``), and it is
also what ``memory_budget=`` degrades to automatically when the
estimated in-memory working set does not fit.  Fault plans cannot ride
it — there is no transport to inject into.

``algorithm="auto"`` is a routing directive, not a seventh algorithm:
with a ``service=`` attached (where it is the default) the service
planner prices smart bitonic against sample sort (and, with measured
disk evidence, the external sort) per request and runs the winner.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.metrics import RunStats

__all__ = [
    "SortReport",
    "sort",
    "SORT_BACKENDS",
    "SORT_ALGORITHMS",
    "BACKEND_ALGORITHMS",
]

#: Substrates :func:`sort` can run on.
SORT_BACKENDS = ("simulated", "threads", "procs")

#: Algorithm names accepted by :func:`sort` (each runs on the backends
#: :data:`BACKEND_ALGORITHMS` lists for it).  ``"auto"`` — planner
#: routing with a service attached — is deliberately not in this tuple:
#: it names a dispatch policy, not an algorithm.
SORT_ALGORITHMS = (
    "smart", "cyclic-blocked", "blocked-merge", "radix", "sample", "external",
)

#: The capability table: which algorithms each backend executes.  The
#: simulated machine runs every comparator of the paper's Ch. 5; the
#: SPMD runtimes implement the smart bitonic sort and the sample sort
#: (the two the service planner prices against each other).  The
#: out-of-core ``external`` sort is backend-independent — it runs
#: in-process whatever backend the call named — so every row carries it.
BACKEND_ALGORITHMS = {
    "simulated": SORT_ALGORITHMS,
    "threads": ("smart", "sample", "external"),
    "procs": ("smart", "sample", "external"),
}

#: Algorithms with a closed-form predictor (fills the ``predicted`` column
#: of a traced report).
_PREDICTABLE = (
    "smart", "cyclic-blocked", "blocked-merge", "radix", "sample", "external",
)


@dataclass
class SortReport:
    """Everything one :func:`sort` call produced, in one place.

    Always present: the identity of the run (``algorithm``, ``backend``,
    ``P``, ``n``), the globally sorted ``sorted_keys``, and host
    ``wall_seconds``.  The rest depends on the substrate: ``stats`` is the
    simulated machine's metrics (simulated backend only), ``phases`` the
    three-source per-phase breakdown (``trace=True``), ``fault_stats`` /
    ``retry_rounds`` / ``resent_elements`` the injected-fault ledger
    (``faults`` armed).
    """

    algorithm: str
    backend: str
    P: int
    n: int
    sorted_keys: np.ndarray
    wall_seconds: float
    verified: bool = False
    stats: Optional[RunStats] = None
    phases: Optional["PhaseReport"] = None  # noqa: F821 — forward ref
    #: Per-rank span/counter recorders of a traced SPMD run (rank order);
    #: feed to :func:`repro.trace.write_chrome_trace` for a timeline file.
    tracers: Optional[list] = None
    fault_stats: Dict[str, int] = field(default_factory=dict)
    retry_rounds: int = 0
    resent_elements: int = 0

    @property
    def N(self) -> int:
        """Total number of keys sorted."""
        return self.P * self.n

    def describe(self) -> str:
        """Human-readable run summary (plus the phase table when traced)."""
        lines = [
            f"{self.algorithm} sort: {self.N:,} keys on {self.P} "
            f"{'simulated processors' if self.backend == 'simulated' else 'ranks'}"
            f" [{self.backend}] — {self.wall_seconds:.3f}s wall"
            + (", verified" if self.verified else "")
        ]
        if self.stats is not None:
            lines.append(
                f"  simulated {self.stats.elapsed_us:,.0f} µs makespan, "
                f"{self.stats.remaps} remaps, "
                f"{self.stats.volume_per_proc:,.0f} elements/proc"
            )
        if self.fault_stats:
            s = self.fault_stats
            lines.append(
                f"  faults     drop={s.get('dropped', 0)} "
                f"dup={s.get('duplicated', 0)} corrupt={s.get('corrupted', 0)} "
                f"delay={s.get('delayed', 0)}; recovery retry rounds="
                f"{self.retry_rounds}, resent={self.resent_elements:,} elements"
            )
        if self.phases is not None:
            lines.append(self.phases.describe())
        return "\n".join(lines)


def _resolve_algorithm(
    algorithm: Optional[str], backend: str, routed: bool
) -> str:
    """The one place algorithm names are validated.

    ``None`` resolves to the context's default: ``"auto"`` on a
    service-routed call (the planner picks), ``"smart"`` otherwise.
    ``"auto"`` is only meaningful where a planner exists; every other
    name must be in :data:`SORT_ALGORITHMS` and runnable on ``backend``
    per the :data:`BACKEND_ALGORITHMS` capability table.
    """
    if algorithm is None:
        return "auto" if routed else "smart"
    if algorithm == "auto":
        if not routed:
            raise ConfigurationError(
                "algorithm='auto' is planner routing — it needs a "
                "service= attached; pick a concrete algorithm from "
                f"{list(SORT_ALGORITHMS)} for a direct run"
            )
        return algorithm
    if algorithm not in SORT_ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {list(SORT_ALGORITHMS)}"
        )
    supported = BACKEND_ALGORITHMS.get(backend, ())
    if not routed and algorithm not in supported:
        raise ConfigurationError(
            f"backend {backend!r} implements {list(supported)}, not "
            f"{algorithm!r}; run {algorithm!r} on backend='simulated'"
        )
    return algorithm


def _merge_options_shim(options, backend_options):
    """Fold the deprecated ``backend_options=`` spelling into
    ``options=`` (one release of warning, same semantics)."""
    if backend_options is None:
        return options
    if options is not None:
        raise ConfigurationError(
            "pass options= or the deprecated backend_options=, not both"
        )
    warnings.warn(
        "sort(backend_options=...) is deprecated; "
        "pass options=BackendOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return backend_options


def sort(
    keys: np.ndarray,
    P: Optional[int] = None,
    *,
    algorithm: Optional[str] = None,
    backend: str = "simulated",
    trace: bool = False,
    faults: Optional["FaultPlan"] = None,  # noqa: F821 — forward ref
    timeout: float = 120.0,
    verify: bool = True,
    options: Optional["BackendOptions"] = None,  # noqa: F821
    backend_options: Optional["BackendOptions"] = None,  # noqa: F821
    service: Optional["SortService"] = None,  # noqa: F821 — forward ref
    memory_budget: Optional[int] = None,
) -> SortReport:
    """Sort ``keys`` across ``P`` processors/ranks and report everything.

    Parameters
    ----------
    keys:
        The global input array (power-of-two size divisible by ``P``).
    P:
        Number of simulated processors or real ranks.  Optional when a
        ``service`` routes the call — its planner then chooses ``P``.
    algorithm:
        One of :data:`SORT_ALGORITHMS`, constrained per backend by the
        :data:`BACKEND_ALGORITHMS` capability table, or ``"auto"`` on a
        service-routed call — the planner then prices smart bitonic
        against sample sort and runs the winner.  Default: ``"auto"``
        with a service, ``"smart"`` without.
    backend:
        ``"simulated"`` runs on the LogGP-costed machine;
        ``"threads"`` / ``"procs"`` run the real message-passing sort via
        :func:`repro.runtime.driver.run_spmd`.
    trace:
        Record per-phase time and attach a
        :class:`~repro.trace.report.PhaseReport` aligning measured (SPMD
        backends), simulated, and closed-form predicted columns.  Off by
        default: the untraced hot path allocates no trace objects.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` to inject; survived by the
        simulator's fault plane (simulated) or
        :class:`~repro.faults.transport.ReliableComm` (threads).
    timeout:
        Wall-clock budget for the SPMD world (ignored when simulated).
    verify:
        Check the output element-exactly against ``np.sort`` (on by
        default — the front door favours safety over benchmark purity).
    options:
        :class:`~repro.runtime.driver.BackendOptions` tuning for the SPMD
        backends.  Its ``fused`` / ``grouped`` fields (both on by
        default) toggle the fused zero-copy remap collective and the
        Lemma-4 group-scoped exchanges of the SPMD bitonic sort;
        ``overlap`` / ``chunks`` (off by default) engage the chunked
        nonblocking remap pipeline that hides transfer wait behind
        unpack/merge work.  (Sample sort's single exchange ignores the
        bitonic-pipeline flags.)
    backend_options:
        Deprecated spelling of ``options`` (kept one release with a
        :class:`DeprecationWarning`; passing both is an error).
    service:
        A running :class:`~repro.service.SortService`.  When given, the
        call routes through the service's warm world pool instead of
        spawning a one-shot world: the explicitly-passed ``algorithm`` /
        ``P`` / SPMD ``backend`` / ``options`` flags become forced
        planner overrides, anything left unsaid (including
        ``backend="simulated"``, which the service never runs) is the
        planner's choice.
    memory_budget:
        Working-set bound in bytes.  When the estimated in-memory
        working set of ``keys`` exceeds it, the call degrades to the
        out-of-core ``external`` sort (spill-to-disk, in-process)
        instead of allocating past the budget — the same degradation the
        service's admission applies.  ``None`` disables the check.
    """
    options = _merge_options_shim(options, backend_options)
    if service is not None:
        return _sort_service(
            keys, P, algorithm, backend, trace, faults, verify,
            options, service, memory_budget,
        )
    if backend not in SORT_BACKENDS:
        raise ConfigurationError(
            f"unknown sort backend {backend!r}; choose from {list(SORT_BACKENDS)}"
        )
    keys = np.asarray(keys)
    degraded = False
    if memory_budget is not None and algorithm != "external":
        from repro.extsort import inmem_working_set_bytes

        degraded = (
            inmem_working_set_bytes(keys.size, keys.dtype.itemsize)
            > memory_budget
        )
    if algorithm == "external" or degraded:
        # The out-of-core path is backend-independent: it intercepts
        # before any substrate dispatch and runs in-process.
        return _sort_external(
            keys, P, trace, faults, verify, options, memory_budget,
            degraded=degraded,
        )
    if P is None:
        raise ConfigurationError(
            "P is required unless a service= routes the request "
            "(only the service's planner can choose P)"
        )
    algorithm = _resolve_algorithm(algorithm, backend, routed=False)
    if backend == "simulated":
        if options is not None:
            raise ConfigurationError(
                "backend_options tune the SPMD backends; the simulated "
                "machine takes none"
            )
        return _sort_simulated(keys, P, algorithm, trace, faults, verify)
    return _sort_spmd(
        keys, P, algorithm, backend, trace, faults, timeout, verify, options
    )


def _sorter(algorithm: str):
    from repro.sorts import (
        BlockedMergeBitonicSort,
        CyclicBlockedBitonicSort,
        ParallelRadixSort,
        ParallelSampleSort,
        SmartBitonicSort,
    )

    return {
        "smart": SmartBitonicSort,
        "cyclic-blocked": CyclicBlockedBitonicSort,
        "blocked-merge": BlockedMergeBitonicSort,
        "radix": ParallelRadixSort,
        "sample": ParallelSampleSort,
    }[algorithm]()


def _predicted(algorithm: str, N: int, P: int):
    if algorithm not in _PREDICTABLE:
        return None
    from repro.theory.predict import predict

    return predict(algorithm, N, P)


def _sort_external(
    keys, P, trace, faults, verify, options, memory_budget,
    degraded=False,
) -> SortReport:
    """Run the out-of-core spill-to-disk sort in-process.

    Reached two ways: ``algorithm="external"`` forced, or
    ``memory_budget=`` degradation when the in-memory working set does
    not fit.  Single-host by construction: a forced-external call must
    not name a multi-rank ``P`` or SPMD options (rejected rather than
    ignored), while a *degraded* call's ``P``/options targeted the
    in-memory plan the budget just overrode — they are clamped away,
    exactly as the service planner clamps them.  Fault plans are an
    error on both routes: there is no transport to inject into.
    """
    from repro.extsort import external_sort
    from repro.sorts.base import verify_sorted

    if faults is not None and not getattr(faults, "is_null", False):
        raise ConfigurationError(
            "the external sort runs in-process with no fault transport; "
            "drop the fault plan or raise the memory budget"
        )
    if not degraded:
        if P is not None and P != 1:
            raise ConfigurationError(
                f"the external sort is single-host: P must be 1 (or "
                f"None), got {P}"
            )
        if options is not None:
            raise ConfigurationError(
                "backend options tune the SPMD backends; the external "
                "sort takes none"
            )
    budget = memory_budget if memory_budget is not None else 64 << 20
    tracer = None
    if trace:
        from repro.trace.recorder import Tracer

        tracer = Tracer(0)
    start = time.perf_counter()
    out, _ext = external_sort(keys, budget, tracer=tracer)
    wall = time.perf_counter() - start
    if verify:
        verify_sorted(keys, out, "external[local]")
    phases = tracers = None
    if trace:
        from repro.theory.predict import predict_external
        from repro.trace.report import build_phase_report

        tracers = [tracer]
        phases = build_phase_report(
            tracers=tracers,
            predicted=predict_external(
                keys.size, 1,
                memory_budget=budget,
                dtype_size=keys.dtype.itemsize,
            ),
            P=1,
            n=int(keys.size),
        )
    return SortReport(
        algorithm="external",
        backend="local",
        P=1,
        n=int(keys.size),
        sorted_keys=out,
        wall_seconds=wall,
        verified=verify,
        phases=phases,
        tracers=tracers,
    )


def _sort_service(
    keys, P, algorithm, backend, trace, faults, verify, options,
    service, memory_budget=None,
) -> SortReport:
    """Bridge the front door onto a running SortService.

    Explicit arguments become forced planner overrides; defaults mean
    "planner chooses" (``backend="simulated"`` is the front door's own
    default, so it reads as unconstrained here — the service runs only
    SPMD backends; likewise ``algorithm`` defaults to ``"auto"``, the
    planner's cross-algorithm routing).
    """
    from repro.sorts.base import verify_sorted

    algorithm = _resolve_algorithm(algorithm, backend, routed=True)
    if algorithm not in ("auto",) + BACKEND_ALGORITHMS["threads"]:
        raise ConfigurationError(
            f"the sort service runs only the SPMD algorithms "
            f"{list(BACKEND_ALGORITHMS['threads'])}; run {algorithm!r} on "
            f"backend='simulated' without a service"
        )
    forced_algorithm = None if algorithm == "auto" else algorithm
    forced_backend = None if backend == "simulated" else backend
    if forced_backend is not None and forced_backend not in SORT_BACKENDS:
        raise ConfigurationError(
            f"unknown sort backend {backend!r}; choose from {list(SORT_BACKENDS)}"
        )
    fused = options.fused if options is not None else None
    grouped = options.grouped if options is not None else None
    overlap = options.overlap if options is not None else None
    chunks = options.chunks if options is not None else None
    outcome = service.sort(
        keys,
        algorithm=forced_algorithm,
        backend=forced_backend,
        P=P,
        fused=fused,
        grouped=grouped,
        overlap=overlap,
        chunks=chunks,
        faults=faults,
        trace=trace,
        memory_budget=memory_budget,
    )
    d = outcome.decision
    if verify:
        verify_sorted(
            keys, outcome.sorted_keys,
            f"service[{d.algorithm}:{d.backend}x{d.P}]",
        )
    phases = None
    if trace and outcome.tracers:
        from repro.trace.report import build_phase_report

        # The last tracer is the service lane (queue wait); the phase
        # table aligns the rank tracers against simulation + theory.
        # The out-of-core sort has no simulated twin — predicted only.
        sim_stats = (
            None if d.algorithm == "external"
            else _sorter(d.algorithm).run(keys, d.P).stats
        )
        phases = build_phase_report(
            tracers=outcome.tracers[: d.P],
            stats=sim_stats,
            predicted=_predicted(d.algorithm, keys.size, d.P),
            P=d.P,
            n=keys.size // d.P,
        )
    return SortReport(
        algorithm=d.algorithm,
        backend=d.backend,
        P=d.P,
        n=keys.size // d.P,
        sorted_keys=outcome.sorted_keys,
        wall_seconds=outcome.wall_s,
        verified=verify,
        phases=phases,
        tracers=outcome.tracers,
        fault_stats=outcome.fault_stats,
    )


def _sort_simulated(keys, P, algorithm, trace, faults, verify) -> SortReport:
    from repro.faults.plan import FaultInjector
    from repro.trace.report import build_phase_report

    injector = FaultInjector(faults) if faults is not None else None
    start = time.perf_counter()
    result = _sorter(algorithm).run(keys, P, verify=verify, injector=injector)
    wall = time.perf_counter() - start
    phases = None
    if trace:
        phases = build_phase_report(
            stats=result.stats,
            predicted=_predicted(algorithm, keys.size, P),
        )
    return SortReport(
        algorithm=algorithm,
        backend="simulated",
        P=P,
        n=keys.size // P,
        sorted_keys=result.sorted_keys,
        wall_seconds=wall,
        verified=verify,
        stats=result.stats,
        phases=phases,
        fault_stats=injector.stats.as_dict() if injector is not None else {},
        retry_rounds=injector.stats.retries if injector is not None else 0,
        resent_elements=(
            injector.stats.resent_elements if injector is not None else 0
        ),
    )


def _sort_spmd(
    keys, P, algorithm, backend, trace, faults, timeout, verify, options
) -> SortReport:
    from repro.faults.plan import FaultInjector
    from repro.runtime.bitonic_spmd import spmd_bitonic_sort
    from repro.runtime.driver import run_spmd
    from repro.runtime.sample_spmd import spmd_sample_sort
    from repro.sorts.base import verify_sorted
    from repro.trace.recorder import Tracer
    from repro.trace.report import build_phase_report

    if keys.size % P:
        raise ConfigurationError(
            f"{keys.size} keys do not divide over {P} ranks"
        )
    n = keys.size // P
    injector = None
    if faults is not None and not faults.is_null:
        if backend != "threads":
            raise ConfigurationError(
                f"fault injection needs the shared address space of the "
                f"threads backend, not {backend!r} — use backend='threads' "
                "or drop the fault plan"
            )
        injector = FaultInjector(faults)

    # Algorithm toggles ride in BackendOptions; None means "on" for
    # fused/grouped but "off" for overlap (an opt-in, measured trade).
    fused = options is None or options.fused is not False
    grouped = options is None or options.grouped is not False
    overlap = options is not None and options.overlap is True
    chunks = (
        options.chunks
        if options is not None and options.chunks is not None
        else 4
    )

    def prog(comm):
        if trace:
            comm.tracer = Tracer(comm.rank)
        if injector is not None:
            from repro.faults.transport import ReliableComm

            comm = ReliableComm(comm, injector)
        shard = keys[comm.rank * n : (comm.rank + 1) * n]
        if algorithm == "sample":
            out = spmd_sample_sort(comm, shard)
        else:
            out = spmd_bitonic_sort(
                comm,
                shard,
                fused=fused,
                grouped=grouped,
                overlap=overlap,
                chunks=chunks,
            )
        return out, comm.tracer

    start = time.perf_counter()
    parts = run_spmd(
        P, prog, timeout=timeout, backend=backend, options=options
    )
    wall = time.perf_counter() - start
    out = np.concatenate([p for p, _ in parts])
    if verify:
        verify_sorted(keys, out, f"{algorithm}-spmd[{backend}]")

    phases = tracers = None
    if trace:
        # The aligned three-source table: measured spans from this run,
        # the LogGP machine's simulation of the same (N, P), and the
        # closed-form prediction.
        tracers = [tr for _, tr in parts]
        sim = _sorter(algorithm).run(keys, P)
        phases = build_phase_report(
            tracers=tracers,
            stats=sim.stats,
            predicted=_predicted(algorithm, keys.size, P),
            P=P,
            n=n,
        )
    return SortReport(
        algorithm=algorithm,
        backend=backend,
        P=P,
        n=n,
        sorted_keys=out,
        wall_seconds=wall,
        verified=verify,
        phases=phases,
        tracers=tracers,
        fault_stats=injector.stats.as_dict() if injector is not None else {},
        retry_rounds=injector.stats.retries if injector is not None else 0,
        resent_elements=(
            injector.stats.resent_elements if injector is not None else 0
        ),
    )
