"""Closed-form communication complexity of remap strategies (§3.2.1, §3.4).

These are the paper's analytical results: the number of remaps ``R``, the
per-processor transferred volume ``V`` and the per-processor message count
``M`` for the three remapping strategies (Blocked, Cyclic–Blocked, Smart),
plus Lemma 3's ``N_BitsChanged`` formula and Lemma 4's communication-group
structure.  The test suite checks each closed form against the exact values
counted on concrete :class:`~repro.layouts.schedule.RemapSchedule` objects
and on the simulator, which is the reproduction of the paper's claim that
Smart is optimal on all three metrics under LogP (§3.4.2).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.layouts.smart import SmartParams
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = [
    "bits_changed_lemma3",
    "communication_group",
    "remap_count_smart",
    "remap_count_cyclic_blocked",
    "remap_count_blocked",
    "volume_smart_closed_form",
    "volume_cyclic_blocked",
    "volume_blocked",
    "messages_smart_lower_bound",
    "messages_cyclic_blocked",
    "messages_blocked",
]


def bits_changed_lemma3(params: SmartParams, lgn: int, lgP: int) -> int:
    """Lemma 3: ``N_BitsChanged`` for a smart remap with parameters
    ``(k, s)``.

    * inside remap (``s >= lg n``): ``k``, capped at ``lg n`` when ``n < P``;
    * crossing remap (``s < lg n``): ``k + 1``, capped at ``lg n``;
    * last remap (``k = lg P`` and ``s <= lg n``): ``min(s, lg P)``.
    """
    k, s = params.k, params.s
    if k == lgP and s <= lgn:
        return min(s, lgP)
    if s >= lgn:
        return min(k, lgn)
    return min(k + 1, lgn)


def communication_group(proc: int, bits_changed: int, P: int) -> Tuple[int, int]:
    """Lemma 4: the group of processors ``proc`` exchanges data with at a
    remap changing ``bits_changed`` bits.

    Returns ``(first, size)``: processors ``first .. first + size - 1``
    (consecutive numbers), with ``size = 2**bits_changed`` and ``first =
    size * (proc // size)``.  Each processor keeps ``n / size`` elements and
    sends ``n / size`` to every other group member.
    """
    if not 0 <= proc < P:
        raise ConfigurationError(f"processor {proc} out of range [0, {P})")
    size = 1 << bits_changed
    if size > P:
        raise ConfigurationError(
            f"group of 2**{bits_changed} processors exceeds machine size {P}"
        )
    return size * (proc // size), size


# ---------------------------------------------------------------------------
# Remap counts R (§3.2.1, §3.4.2)
# ---------------------------------------------------------------------------


def remap_count_smart(N: int, P: int) -> int:
    """``R_Smart = ceil(lgP + lgP (lgP + 1) / (2 lg n))`` — the minimum
    possible (Theorem 1).  Equals ``lg P + 1`` whenever
    ``lgP (lgP + 1) / 2 <= lg n``."""
    N, P, n = require_sizes(N, P)
    lgP, lgn = ilog2(P), ilog2(n)
    if lgP == 0:
        return 0
    if lgn == 0:
        raise ConfigurationError("smart remapping needs n >= 2")
    total = lgP * lgn + lgP * (lgP + 1) // 2
    return -(-total // lgn)


def remap_count_cyclic_blocked(P: int) -> int:
    """``R_CyclicBlocked = 2 lg P`` (two remaps per communication stage)."""
    return 2 * ilog2(P)


def remap_count_blocked(P: int) -> int:
    """Remote steps of the fixed blocked layout, each a pairwise exchange:
    ``lgP (lgP + 1) / 2`` (§3.4.2)."""
    lgP = ilog2(P)
    return lgP * (lgP + 1) // 2


# ---------------------------------------------------------------------------
# Transferred volume V, in elements per processor (§3.2.1)
# ---------------------------------------------------------------------------


def volume_blocked(N: int, P: int) -> int:
    """Fixed blocked layout: every remote step moves all ``n`` local
    elements to the partner: ``V = n lgP (lgP + 1) / 2``."""
    N, P, n = require_sizes(N, P)
    return n * remap_count_blocked(P)


def volume_cyclic_blocked(N: int, P: int) -> int:
    """Cyclic–blocked: each of the ``2 lg P`` remaps is an all-to-all in
    which a processor keeps ``n / P`` elements:
    ``V = 2 n (1 - 1/P) lg P``."""
    N, P, n = require_sizes(N, P)
    return 2 * (n - n // P) * ilog2(P)


def volume_smart_closed_form(N: int, P: int) -> int:
    """The exact smart-remap volume of §3.2.1 (Head placement):

    ``V = V_OutRemap + V_InRemap + V_LastRemap`` with one OutRemap per
    stage (``n (1 - 1/2**k)`` for the remap ending in stage ``lg n + k``),
    an InRemap in stage ``lg n + k`` iff ``lg n <= s_k < lg n + k`` where
    ``s_k = k + a_k`` and ``a_k = k(k-1)/2 mod lg n`` (with ``a_k = 0``
    meaning the stage starts fresh and has no InRemap), and the last remap
    changing ``min(steps_after_last, lg P)`` bits.

    Simplifies to ``V = n lg P`` when ``lgP (lgP + 1)/2 <= lg n``.

    The final stage needs care beyond the paper's prose: besides the special
    last remap, it can contain one or more *full* remaps (its OutRemap plus
    possibly an InRemap), each changing ``min(lg P, lg n)`` bits; their
    count follows from how many ``lg n``-step phases end inside the stage's
    ``lg n + lg P`` steps before the final short phase.
    """
    N, P, n = require_sizes(N, P)
    lgP, lgn = ilog2(P), ilog2(n)
    if lgP == 0:
        return 0
    if lgn == 0:
        raise ConfigurationError("smart remapping needs n >= 2")
    # One OutRemap ends within each stage lg n + k, for k < lg P.
    volume = sum(n - (n >> min(k, lgn)) for k in range(1, lgP))
    # InRemaps: a second remap ending within stage lg n + k, for k < lg P.
    for k in range(1, lgP):
        a_k = (k * (k - 1) // 2) % lgn
        if a_k == 0:
            continue
        s_k = k + a_k
        if lgn <= s_k < lgn + k:
            volume += n - (n >> min(k, lgn))
    # The final stage: every full remap ending within it changes
    # min(lg P, lg n) bits; the last (short) remap changes
    # min(steps_after_last, lg P).
    total = lgP * lgn + lgP * (lgP + 1) // 2
    rem = total % lgn
    steps_after_last = rem if rem else lgn
    full_in_last_stage = -(-(lgn + lgP - steps_after_last) // lgn)
    volume += full_in_last_stage * (n - (n >> min(lgP, lgn)))
    n_last = min(steps_after_last, lgP)
    volume += n - (n >> n_last)
    return volume


def messages_blocked(P: int) -> int:
    """Blocked layout: one message (of ``n`` keys) per remote step:
    ``M = lgP (lgP + 1) / 2`` (§3.4.3)."""
    return remap_count_blocked(P)


def messages_cyclic_blocked(P: int) -> int:
    """Cyclic–blocked: ``P - 1`` messages per remap:
    ``M = 2 lgP (P - 1)`` (§3.4.3)."""
    return 2 * ilog2(P) * (P - 1)


def messages_smart_lower_bound(P: int) -> int:
    """The paper's lower bound on smart-remap messages (§3.4.3):
    ``M >= 3 (P - 1) - lg P`` (counting only the OutRemaps plus the last
    remap)."""
    return 3 * (P - 1) - ilog2(P)
