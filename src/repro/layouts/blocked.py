"""The blocked layout (Definition 4).

Key ``i`` lives on processor ``i // n``: the top ``lg P`` absolute-address
bits are the processor number, the low ``lg n`` bits the local address.
Steps ``lg n .. 1`` of every stage (absolute bits ``lg n - 1 .. 0``) execute
locally; in particular the first ``lg n`` stages are entirely local.
"""

from __future__ import annotations

from repro.layouts.base import LOCAL, PROC, BitFieldLayout, Field
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["blocked_layout"]


def blocked_layout(N: int, P: int) -> BitFieldLayout:
    """Construct the blocked layout for ``N`` keys on ``P`` processors."""
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n) if n > 1 else 0
    lgP = ilog2(P)
    fields = [
        Field(src_lo=0, width=lgn, part=LOCAL, dst_lo=0),
        Field(src_lo=lgn, width=lgP, part=PROC, dst_lo=0),
    ]
    return BitFieldLayout(N, P, fields, name="blocked")
