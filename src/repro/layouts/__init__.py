"""Data layouts: how the rows of the bitonic sorting network are mapped onto
processors (Chapters 2 and 3 of the paper).

Every layout used by the paper — blocked (Definition 4), cyclic
(Definition 5) and the smart layout family (Definition 7) — assigns each bit
of a node's *absolute address* (its network row) to a position in either the
processor number or the local address of the node's *relative address*.
:class:`~repro.layouts.base.BitFieldLayout` captures exactly that structure,
mirroring the bit-pattern figures of Chapter 3, and gives every layout
vectorized absolute↔relative translation, a ``local_bit_of_abs_bit`` query
(which backs the fast local compare-exchange engine) and generic
pattern-difference computation (the paper's ``N_BitsChanged``).
"""

from repro.layouts.base import BitFieldLayout, Field, bits_changed, kept_fraction
from repro.layouts.blocked import blocked_layout
from repro.layouts.cyclic import cyclic_layout
from repro.layouts.smart import SmartParams, smart_layout, smart_params
from repro.layouts.schedule import (
    RemapPhase,
    RemapSchedule,
    build_schedule,
    cyclic_blocked_schedule,
    smart_schedule,
)
from repro.layouts.optimality import (
    enumerate_placements,
    minimum_volume_placement,
    placement_volume,
)
from repro.layouts.analysis import (
    bits_changed_lemma3,
    communication_group,
    messages_smart_lower_bound,
    remap_count_cyclic_blocked,
    remap_count_smart,
    volume_blocked,
    volume_cyclic_blocked,
    volume_smart_closed_form,
)

__all__ = [
    "enumerate_placements",
    "minimum_volume_placement",
    "placement_volume",
    "BitFieldLayout",
    "Field",
    "bits_changed",
    "kept_fraction",
    "blocked_layout",
    "cyclic_layout",
    "SmartParams",
    "smart_layout",
    "smart_params",
    "RemapPhase",
    "RemapSchedule",
    "build_schedule",
    "smart_schedule",
    "cyclic_blocked_schedule",
    "bits_changed_lemma3",
    "communication_group",
    "messages_smart_lower_bound",
    "remap_count_cyclic_blocked",
    "remap_count_smart",
    "volume_blocked",
    "volume_cyclic_blocked",
    "volume_smart_closed_form",
]
