"""Exhaustive search over remap placements (§3.2.2's open question).

The paper closes its communication analysis with: "What is the minimum
number of elements that are transferred during a remap-based bitonic sort?
We believe that the TailRemap presented above achieves this lower bound,
however this was beyond the scope of this thesis."

Within the family of schedules this framework expresses — a sequence of
smart remaps whose phases cover the communication region with
``1 <= steps <= lg n`` each — the question is finitely checkable: a
placement is a composition of the region's step total into parts of size at
most ``lg n``, and every composition's transferred volume follows from the
schedule algebra.  :func:`minimum_volume_placement` enumerates them all
(small sizes only; the composition count grows exponentially) and returns
the optimum, letting the tests confirm the paper's conjecture for every
tractable ``(N, P)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.layouts.schedule import RemapSchedule, _region_steps, _walk
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = [
    "enumerate_placements",
    "minimum_volume_placement",
    "count_placements",
]

#: Refuse enumerations beyond this many compositions.  The fast bit-set
#: volume path sustains about 10^5 placements per second.
MAX_PLACEMENTS = 1_000_000


@lru_cache(maxsize=None)
def count_placements(total: int, max_part: int) -> int:
    """Number of compositions of ``total`` into parts of ``1..max_part``."""
    if total == 0:
        return 1
    return sum(
        count_placements(total - p, max_part)
        for p in range(1, min(max_part, total) + 1)
    )


def _compositions(total: int, max_part: int) -> Iterator[Tuple[int, ...]]:
    if total == 0:
        yield ()
        return
    for p in range(1, min(max_part, total) + 1):
        for rest in _compositions(total - p, max_part):
            yield (p,) + rest


def enumerate_placements(N: int, P: int) -> Iterator[RemapSchedule]:
    """Every valid remap placement for ``(N, P)`` as a schedule.

    Raises :class:`ConfigurationError` when the composition count exceeds
    :data:`MAX_PLACEMENTS` (use small sizes: the count is exponential in
    the region's step total).
    """
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n) if n > 1 else 0
    if lgn == 0:
        raise ConfigurationError("placements need n >= 2")
    total = _region_steps(N, P)
    count = count_placements(total, lgn)
    if count > MAX_PLACEMENTS:
        raise ConfigurationError(
            f"{count:,} placements for N={N}, P={P} exceed the enumeration "
            f"cap of {MAX_PLACEMENTS:,}; use a smaller problem"
        )
    for counts in _compositions(total, lgn):
        yield _walk(N, P, counts, strategy=f"enum{counts}")


def _local_bits_at(N: int, P: int, stage: int, step: int) -> frozenset:
    """The absolute bits a smart layout at ``(stage, step)`` keeps local
    (Definition 7's fields, without building the layout object)."""
    from repro.layouts.smart import smart_params

    p = smart_params(N, P, stage, step)
    return frozenset(range(p.a)) | frozenset(range(p.t, p.t + p.b))


def placement_volume(N: int, P: int, counts: Tuple[int, ...]) -> int:
    """Per-processor transferred volume of the placement ``counts``,
    computed from bit-set arithmetic alone (no layout objects) — valid for
    ``n >= P``, where ``N_BitsChanged`` determines the volume (Lemma 4)."""
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n)
    if n < P:
        raise ConfigurationError("fast volume computation requires n >= P")
    lgN = ilog2(N)
    stage, step = lgn + 1, lgn + 1
    local = frozenset(range(lgn))  # initial blocked layout
    volume = 0
    for c in counts:
        new_local = _local_bits_at(N, P, stage, step)
        bc = len(local - new_local)
        volume += n - (n >> bc)
        local = new_local
        for _ in range(c):
            if step > 1:
                step -= 1
            else:
                stage += 1
                step = stage
    if stage != lgN + 1:
        raise ConfigurationError("counts do not cover the communication region")
    return volume


def minimum_volume_placement(
    N: int, P: int, build: bool = True
) -> Tuple[RemapSchedule | Tuple[int, ...], int]:
    """The placement with the least per-processor transferred volume,
    breaking ties toward fewer remaps.

    Returns ``(schedule, volume)`` — or ``(counts, volume)`` with
    ``build=False``, which skips layout construction and uses the fast
    bit-set volume (``n >= P`` only), reaching much larger enumerations.
    """
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n) if n > 1 else 0
    if lgn == 0:
        raise ConfigurationError("placements need n >= 2")
    total = _region_steps(N, P)
    count = count_placements(total, lgn)
    if count > MAX_PLACEMENTS:
        raise ConfigurationError(
            f"{count:,} placements for N={N}, P={P} exceed the enumeration "
            f"cap of {MAX_PLACEMENTS:,}"
        )
    best_key = None
    best_counts: Tuple[int, ...] = ()
    for counts in _compositions(total, lgn):
        if build:
            vol = _walk(N, P, counts, "enum").volume_per_processor()
        else:
            vol = placement_volume(N, P, counts)
        key = (vol, len(counts))
        if best_key is None or key < best_key:
            best_key, best_counts = key, counts
    assert best_key is not None
    if build:
        return _walk(N, P, best_counts, f"optimal{best_counts}"), best_key[0]
    return best_counts, best_key[0]
