"""The bit-field layout abstraction (§3.1, Figures 3.1–3.8).

A node of the bitonic sorting network has an *absolute address* of ``lg N``
bits — the row where it was initially mapped.  After a remap it has a
*relative address*: a processor number (``lg P`` bits) plus a local address
on that processor (``lg n`` bits).  Every layout in the paper is a
*bit-field permutation*: each absolute-address bit lands at a fixed position
of either the processor number or the local address.  The figures of
Chapter 3 draw exactly this assignment as shaded (processor) and unshaded
(local) spans of the absolute address.

:class:`BitFieldLayout` stores that assignment as a list of contiguous
:class:`Field` spans, which keeps the translation vectorized (a handful of
shift/mask operations regardless of how many keys are translated) and makes
the paper's pattern arithmetic — which bits "become shaded" across a remap
(Lemma 3), the packing masks (§3.3.1) — direct set operations on bit
positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import LayoutError
from repro.utils.bits import ilog2, mask
from repro.utils.validation import require_sizes

__all__ = ["Field", "BitFieldLayout", "bits_changed", "kept_fraction"]

_Int = Union[int, np.ndarray]

#: Destination parts of a field.
PROC = "proc"
LOCAL = "local"


@dataclass(frozen=True)
class Field:
    """A contiguous span of absolute-address bits and where they land.

    Bits ``src_lo .. src_lo + width - 1`` of the absolute address become bits
    ``dst_lo .. dst_lo + width - 1`` of the processor number (``part ==
    "proc"``) or of the local address (``part == "local"``).
    """

    src_lo: int
    width: int
    part: str
    dst_lo: int

    def __post_init__(self) -> None:
        if self.part not in (PROC, LOCAL):
            raise LayoutError(f"field part must be 'proc' or 'local', got {self.part!r}")
        if self.src_lo < 0 or self.dst_lo < 0 or self.width < 0:
            raise LayoutError(f"field positions must be non-negative: {self}")

    @property
    def src_bits(self) -> range:
        return range(self.src_lo, self.src_lo + self.width)

    @property
    def dst_bits(self) -> range:
        return range(self.dst_lo, self.dst_lo + self.width)


class BitFieldLayout:
    """A data layout defined by a bit-field permutation of absolute
    addresses.

    Parameters
    ----------
    N, P:
        Total keys and processor count (powers of two, ``P <= N``).
    fields:
        Contiguous spans that together cover every absolute-address bit
        exactly once, with the ``proc`` destinations covering bits
        ``0 .. lg P - 1`` of the processor number and the ``local``
        destinations covering bits ``0 .. lg n - 1`` of the local address.
    name:
        Human-readable tag used in reprs and error messages.
    """

    def __init__(self, N: int, P: int, fields: Sequence[Field], name: str = "layout"):
        self.N, self.P, self.n = require_sizes(N, P)
        self.lgN = ilog2(self.N)
        self.lgP = ilog2(self.P)
        self.lgn = ilog2(self.n) if self.n > 1 else 0
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(f for f in fields if f.width > 0)
        self._validate()
        # Per-bit maps derived from the fields.
        self._local_of_abs: Dict[int, int] = {}
        self._proc_of_abs: Dict[int, int] = {}
        for f in self.fields:
            for off in range(f.width):
                if f.part == LOCAL:
                    self._local_of_abs[f.src_lo + off] = f.dst_lo + off
                else:
                    self._proc_of_abs[f.src_lo + off] = f.dst_lo + off

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        src_seen = [False] * self.lgN
        proc_seen = [False] * self.lgP
        local_seen = [False] * self.lgn
        for f in self.fields:
            for b in f.src_bits:
                if b >= self.lgN or src_seen[b]:
                    raise LayoutError(
                        f"{self.name}: absolute bit {b} covered zero or multiple "
                        f"times by fields {self.fields}"
                    )
                src_seen[b] = True
            dst_seen = proc_seen if f.part == PROC else local_seen
            for b in f.dst_bits:
                if b >= len(dst_seen) or dst_seen[b]:
                    raise LayoutError(
                        f"{self.name}: {f.part} bit {b} covered zero or multiple "
                        f"times by fields {self.fields}"
                    )
                dst_seen[b] = True
        if not all(src_seen):
            raise LayoutError(f"{self.name}: fields do not cover all absolute bits")
        if not all(proc_seen) or not all(local_seen):
            raise LayoutError(f"{self.name}: fields do not fill proc/local parts")

    # -- translation -------------------------------------------------------

    def proc_of(self, absaddr: _Int) -> _Int:
        """Processor number holding absolute address ``absaddr``."""
        out = _zero_like(absaddr)
        for f in self.fields:
            if f.part == PROC:
                out = out | (((absaddr >> f.src_lo) & mask(f.width)) << f.dst_lo)
        return out

    def local_of(self, absaddr: _Int) -> _Int:
        """Local address of ``absaddr`` on its processor."""
        out = _zero_like(absaddr)
        for f in self.fields:
            if f.part == LOCAL:
                out = out | (((absaddr >> f.src_lo) & mask(f.width)) << f.dst_lo)
        return out

    def to_relative(self, absaddr: _Int) -> Tuple[_Int, _Int]:
        """``(processor, local address)`` of ``absaddr``; vectorized."""
        return self.proc_of(absaddr), self.local_of(absaddr)

    def to_absolute(self, proc: _Int, local: _Int) -> _Int:
        """Inverse translation; vectorized."""
        out = _zero_like(proc) | _zero_like(local)
        for f in self.fields:
            part = proc if f.part == PROC else local
            out = out | (((part >> f.dst_lo) & mask(f.width)) << f.src_lo)
        return out

    def absolute_addresses(self, proc: int) -> np.ndarray:
        """The absolute addresses held by ``proc``, indexed by local address.

        ``result[i]`` is the network row stored at local slot ``i``.
        """
        if not 0 <= proc < self.P:
            raise LayoutError(f"processor {proc} out of range [0, {self.P})")
        local = np.arange(self.n, dtype=np.int64)
        return self.to_absolute(np.int64(proc), local)

    # -- bit queries -------------------------------------------------------

    def local_bit_of_abs_bit(self, abs_bit: int) -> Optional[int]:
        """The local-address bit position backing absolute bit ``abs_bit``,
        or ``None`` if that bit is part of the processor number.

        A network step comparing absolute bit ``b`` is executable locally
        under this layout iff this returns a position (and then partners sit
        at local indices differing in exactly that bit).
        """
        if not 0 <= abs_bit < self.lgN:
            raise LayoutError(f"absolute bit {abs_bit} out of range [0, {self.lgN})")
        return self._local_of_abs.get(abs_bit)

    def proc_bit_of_abs_bit(self, abs_bit: int) -> Optional[int]:
        """The processor-number bit position backing absolute bit
        ``abs_bit``, or ``None`` if that bit is part of the local address.

        The dual of :meth:`local_bit_of_abs_bit`; together they let the
        remap-group algebra (:mod:`repro.remap.groups`) read off, for any
        rank, which destination processor numbers are reachable across a
        remap without enumerating a single element.
        """
        if not 0 <= abs_bit < self.lgN:
            raise LayoutError(f"absolute bit {abs_bit} out of range [0, {self.lgN})")
        return self._proc_of_abs.get(abs_bit)

    def step_is_local(self, step: int) -> bool:
        """Whether network step ``step`` (comparing absolute bit ``step-1``)
        executes without communication under this layout."""
        return self.local_bit_of_abs_bit(step - 1) is not None

    @property
    def local_source_bits(self) -> frozenset:
        """Absolute-address bit positions mapped to the local address — the
        unshaded bits of the paper's pattern figures."""
        return frozenset(self._local_of_abs)

    @property
    def proc_source_bits(self) -> frozenset:
        """Absolute-address bit positions mapped to the processor number —
        the shaded bits of the paper's pattern figures."""
        return frozenset(self._proc_of_abs)

    # -- presentation ------------------------------------------------------

    def pattern(self) -> str:
        """The absolute-address bit pattern as in Figures 3.4–3.13: one
        character per bit, MSB first, ``P`` for processor bits and ``.`` for
        local bits."""
        chars = []
        for b in range(self.lgN - 1, -1, -1):
            chars.append("P" if b in self._proc_of_abs else ".")
        return "".join(chars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} N={self.N} P={self.P} pattern={self.pattern()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitFieldLayout):
            return NotImplemented
        return (
            self.N == other.N
            and self.P == other.P
            and self._local_of_abs == other._local_of_abs
            and self._proc_of_abs == other._proc_of_abs
        )

    def __hash__(self) -> int:
        return hash(
            (self.N, self.P, tuple(sorted(self._local_of_abs.items())),
             tuple(sorted(self._proc_of_abs.items())))
        )


def _zero_like(x: _Int) -> _Int:
    if isinstance(x, np.ndarray):
        return np.zeros_like(x)
    return 0


def bits_changed(old: BitFieldLayout, new: BitFieldLayout) -> int:
    """The paper's ``N_BitsChanged`` for a remap ``old → new`` (§3.2.1):
    the number of absolute-address bits that are local under ``old`` but
    become processor bits under ``new``.

    Elements agreeing with a processor's pattern on these bits stay; each
    processor keeps ``n / 2**bits_changed`` elements (Lemma 4).
    """
    if (old.N, old.P) != (new.N, new.P):
        raise LayoutError(
            f"layouts describe different machines: {old.N}x{old.P} vs {new.N}x{new.P}"
        )
    return len(old.local_source_bits & new.proc_source_bits)


def kept_fraction(old: BitFieldLayout, new: BitFieldLayout) -> float:
    """Fraction of its elements a processor keeps across the remap:
    ``1 / 2**N_BitsChanged``."""
    return 1.0 / (1 << bits_changed(old, new))
