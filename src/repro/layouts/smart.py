"""The smart data layout (Definition 7, Figures 3.5–3.8).

Given the column ``(stage = lg n + k, step = s)`` at which a remap occurs,
the smart layout places on each processor exactly the nodes whose absolute
addresses agree on the bits *not* touched by the next ``lg n`` network
steps, so those steps run without communication (Lemma 2).  Two shapes
arise:

*Inside remap* (``s >= lg n``): the ``lg n`` steps stay within the stage and
change absolute bits ``s-1 .. s-lg n`` = ``t+b-1 .. t`` (with ``t = s - lg
n``, ``b = lg n``).  Absolute-address fields, low to high::

    C  bits 0      .. t-1        -> processor bits 0 .. t-1
    B  bits t      .. t+b-1      -> local bits     0 .. b-1
    A  bits t+b    .. lgN-1      -> processor bits t .. lgP-1

*Crossing remap* (``s < lg n``): ``a = s`` steps finish the stage (bits
``a-1 .. 0``) and ``b = lg n - a`` steps open the next one (bits ``t+b-1 ..
t`` with ``t = s + k + 1``)::

    D  bits 0      .. a-1        -> local bits     0 .. a-1
    C  bits a      .. t-1        -> processor bits 0 .. k
    B  bits t      .. t+b-1      -> local bits     a .. lg n-1
    A  bits t+b    .. lgN-1      -> processor bits k+1 .. lgP-1

*Last remap* (``k = lg P`` and ``s <= lg n``): the remaining ``s`` steps of
the final stage fit under a blocked layout, so ``a = lg n``, ``b = 0``,
``t = lg n`` and the layout *is* blocked — the sort therefore finishes in
the standard output placement.

The processor number is always assembled with the high field ``A`` above the
low field ``C``, exactly as the figures draw it; this is what makes
communication happen inside groups of consecutive processors (Lemma 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.layouts.base import LOCAL, PROC, BitFieldLayout, Field
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["SmartParams", "smart_params", "smart_layout"]


@dataclass(frozen=True)
class SmartParams:
    """The 5-tuple ``(k, s, a, b, t)`` of Definition 7.

    ``k`` indexes the stage (``stage = lg n + k``), ``s`` is the step at
    which the remap occurs (the first step executed after it), ``a`` and
    ``b`` split the ``lg n`` locally-executed steps between the current and
    the next stage, and ``t`` locates the ``B`` field (see module docstring).
    """

    k: int
    s: int
    a: int
    b: int
    t: int

    @property
    def is_crossing(self) -> bool:
        """True for a crossing remap (the ``lg n`` local steps span a stage
        boundary); False for an inside remap."""
        return self.a > 0 and self.b > 0

    @property
    def is_last(self) -> bool:
        """True for the final-remap special case (blocked layout)."""
        return self.b == 0 and self.a > 0


def smart_params(N: int, P: int, stage: int, step: int) -> SmartParams:
    """Compute Definition 7's ``(k, s, a, b, t)`` for a remap at
    ``(stage, step)`` of the network for ``N`` keys on ``P`` processors.

    ``stage`` must lie in the communication region (``lg n < stage <= lg N``)
    and ``step`` in ``1 .. stage``.
    """
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n) if n > 1 else 0
    lgP = ilog2(P)
    k = stage - lgn
    s = step
    if not 0 < k <= lgP:
        raise ConfigurationError(
            f"stage {stage} outside the remap region ({lgn + 1} .. {lgn + lgP}) "
            f"for N={N}, P={P}"
        )
    if not 0 < s <= stage:
        raise ConfigurationError(f"step {step} outside 1 .. {stage} for stage {stage}")
    if k == lgP and s <= lgn:
        # Last remap: remap to blocked and finish the final s steps there.
        return SmartParams(k=k, s=s, a=lgn, b=0, t=lgn)
    if s >= lgn:
        return SmartParams(k=k, s=s, a=0, b=lgn, t=s - lgn)
    return SmartParams(k=k, s=s, a=s, b=lgn - s, t=s + k + 1)


def smart_layout(N: int, P: int, stage: int, step: int) -> BitFieldLayout:
    """Construct the smart layout for a remap at ``(stage, step)``.

    The returned layout keeps the next ``lg n`` network steps (or the final
    ``step`` steps, for the last-remap case) entirely local — Lemma 2.
    """
    N, P, n = require_sizes(N, P)
    lgN, lgP = ilog2(N), ilog2(P)
    lgn = lgN - lgP
    p = smart_params(N, P, stage, step)
    a, b, t = p.a, p.b, p.t
    fields = [
        # D: low absolute bits that stay local (empty for inside remaps).
        Field(src_lo=0, width=a, part=LOCAL, dst_lo=0),
        # C: low processor field.
        Field(src_lo=a, width=t - a, part=PROC, dst_lo=0),
        # B: high local field (empty for the last remap).
        Field(src_lo=t, width=b, part=LOCAL, dst_lo=a),
        # A: high processor field.
        Field(src_lo=t + b, width=lgN - (t + b), part=PROC, dst_lo=t - a),
    ]
    kind = "last" if p.is_last else ("crossing" if p.is_crossing else "inside")
    return BitFieldLayout(
        N, P, fields, name=f"smart[{kind} k={p.k} s={p.s} a={a} b={b} t={t}]"
    )
