"""The cyclic layout (Definition 5).

Key ``i`` lives on processor ``i mod P``: the low ``lg P`` absolute-address
bits are the processor number, the top ``lg n`` bits the local address.
Under this layout the *first* ``k`` steps of stage ``lg n + k`` (absolute
bits ``lg n + k - 1 .. lg n``... through bit ``lg P``) execute locally —
the mirror image of the blocked layout, which is what makes periodic
cyclic↔blocked remapping (§2.3) work.
"""

from __future__ import annotations

from repro.layouts.base import LOCAL, PROC, BitFieldLayout, Field
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["cyclic_layout"]


def cyclic_layout(N: int, P: int) -> BitFieldLayout:
    """Construct the cyclic layout for ``N`` keys on ``P`` processors."""
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n) if n > 1 else 0
    lgP = ilog2(P)
    fields = [
        Field(src_lo=0, width=lgP, part=PROC, dst_lo=0),
        Field(src_lo=lgP, width=lgn, part=LOCAL, dst_lo=0),
    ]
    return BitFieldLayout(N, P, fields, name="cyclic")
