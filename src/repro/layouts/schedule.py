"""Remap schedules: which layout to adopt at which network column (§3.2).

A *schedule* describes a remap-based execution of the bitonic sorting
network's communication region (the last ``lg P`` stages; the first ``lg n``
stages always run locally under the initial blocked layout):
a sequence of :class:`RemapPhase` records, each naming the layout adopted by
a remap and the network columns executed locally afterwards.

:func:`smart_schedule` builds Algorithm 1's schedule: remap to the smart
layout of the current column, run ``lg n`` steps, repeat — the provably
minimal number of remaps (Theorem 1).  :func:`build_schedule` generalizes to
the remap-placement strategies of Lemma 5 (Head/Tail/Middle), which shift
where the short phase falls.  :func:`cyclic_blocked_schedule` reproduces the
classic cyclic↔blocked strategy of [CKP+93, CDMS94] (§2.3) used as the
strongest prior baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.layouts.base import BitFieldLayout, bits_changed
from repro.layouts.blocked import blocked_layout
from repro.layouts.cyclic import cyclic_layout
from repro.layouts.smart import smart_layout
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = [
    "RemapPhase",
    "RemapSchedule",
    "smart_schedule",
    "build_schedule",
    "cyclic_blocked_schedule",
    "remaining_steps",
]

Column = Tuple[int, int]


@dataclass(frozen=True)
class RemapPhase:
    """One remap and the network columns executed locally after it."""

    layout: BitFieldLayout
    columns: Tuple[Column, ...]

    @property
    def num_steps(self) -> int:
        return len(self.columns)


@dataclass(frozen=True)
class RemapSchedule:
    """A complete remap-based plan for the communication region.

    Attributes
    ----------
    N, P:
        Problem size.
    initial_layout:
        The layout in force during the first ``lg n`` stages (always
        blocked; Algorithm 1 starts blocked so those stages are free).
    phases:
        The remap phases covering stages ``lg n + 1 .. lg N`` in order.
    strategy:
        Human-readable tag of the generating strategy.
    """

    N: int
    P: int
    initial_layout: BitFieldLayout
    phases: Tuple[RemapPhase, ...]
    strategy: str

    @property
    def num_remaps(self) -> int:
        """Number of data remaps — the paper's ``R`` metric."""
        return len(self.phases)

    def transitions(self) -> List[Tuple[BitFieldLayout, BitFieldLayout]]:
        """Consecutive layout pairs, starting from the initial layout."""
        layouts = [self.initial_layout] + [ph.layout for ph in self.phases]
        return list(zip(layouts[:-1], layouts[1:]))

    def bits_changed_per_remap(self) -> List[int]:
        """``N_BitsChanged`` at each remap, computed from the bit patterns
        (the empirical counterpart of Lemma 3)."""
        return [bits_changed(old, new) for old, new in self.transitions()]

    def volume_per_processor(self) -> int:
        """Total elements each processor transfers over the run — the
        paper's ``V`` metric.

        For ``n >= P`` (the paper's "interesting case", §3.2.1) this is
        ``n * sum(1 - 1/2**bc)`` over the remaps, by Lemma 4.  For
        ``n < P`` the group structure of Lemma 4 does not hold positionally
        (unchanged processor bits can move *within* the processor number,
        so an element whose changed bits match may still move), and the
        bit-count expression is only a lower bound; the exact per-processor
        maximum is counted from the remap plans instead.
        """
        n = self.N // self.P
        if n >= self.P:
            return sum(n - (n >> bc) for bc in self.bits_changed_per_remap())
        return self._exact_counts()[0]

    def messages_per_processor(self) -> int:
        """Long messages each processor sends over the run — the paper's
        ``M`` metric: for ``n >= P``, one message to each of the
        ``2**bc - 1`` group peers per remap (Lemma 4); counted exactly from
        the remap plans otherwise (see :meth:`volume_per_processor`)."""
        if self.N // self.P >= self.P:
            return sum((1 << bc) - 1 for bc in self.bits_changed_per_remap())
        return self._exact_counts()[1]

    def _exact_counts(self) -> Tuple[int, int]:
        """Max-over-processors (volume, messages) counted from the plans."""
        from repro.remap.plan import build_remap_plan  # deferred: layering

        vol = [0] * self.P
        msg = [0] * self.P
        for old, new in self.transitions():
            for r in range(self.P):
                plan = build_remap_plan(old, new, r)
                vol[r] += plan.elements_sent
                msg[r] += plan.num_messages
        return max(vol), max(msg)

    def describe(self) -> str:
        """A human-readable rendering in the style of Figure 3.4."""
        lines = [f"schedule[{self.strategy}] N={self.N} P={self.P}"]
        lines.append(f"  initial {self.initial_layout.pattern()}  (blocked)")
        for i, (ph, bc) in enumerate(zip(self.phases, self.bits_changed_per_remap())):
            first, last = ph.columns[0], ph.columns[-1]
            lines.append(
                f"  remap {i}: {ph.layout.pattern()}  bits_changed={bc}  "
                f"steps ({first[0]},{first[1]})..({last[0]},{last[1]})"
            )
        return "\n".join(lines)


def remaining_steps(P: int, n: int) -> int:
    """``N_RemainingSteps = lgP (lgP + 1) / 2 mod lg n`` (Lemma 5)."""
    lgP, lgn = ilog2(P), ilog2(n)
    if lgn == 0:
        raise ScheduleError("smart schedules need n >= 2 keys per processor")
    return (lgP * (lgP + 1) // 2) % lgn


def _region_steps(N: int, P: int) -> int:
    """Total steps in the communication region (stages lg n+1 .. lg N):
    ``lgP * lgn + lgP (lgP + 1) / 2``."""
    lgP = ilog2(P)
    lgn = ilog2(N // P)
    return lgP * lgn + lgP * (lgP + 1) // 2


def _walk(N: int, P: int, counts: Sequence[int], strategy: str) -> RemapSchedule:
    """Turn per-remap step counts into a schedule by walking the network."""
    N, P, n = require_sizes(N, P)
    lgN = ilog2(N)
    lgn = ilog2(n)
    if lgn == 0:
        raise ScheduleError(
            "smart schedules need n >= 2 keys per processor (with n = 1 the "
            "network is fine-grained and no step can run locally)"
        )
    total = _region_steps(N, P)
    if sum(counts) != total:
        raise ScheduleError(
            f"step counts {list(counts)} sum to {sum(counts)}, but the "
            f"communication region has {total} steps"
        )
    if any(c < 1 or c > lgn for c in counts):
        raise ScheduleError(
            f"each remap must cover between 1 and lg n = {lgn} steps, got {list(counts)}"
        )
    phases: List[RemapPhase] = []
    stage, step = lgn + 1, lgn + 1
    for c in counts:
        layout = smart_layout(N, P, stage, step)
        cols: List[Column] = []
        for _ in range(c):
            cols.append((stage, step))
            if step > 1:
                step -= 1
            else:
                stage += 1
                step = stage
        for s_, j_ in cols:
            if not layout.step_is_local(j_):
                raise ScheduleError(
                    f"internal error: column ({s_},{j_}) not local under {layout!r}"
                )
        phases.append(RemapPhase(layout, tuple(cols)))
    if stage != lgN + 1:
        raise ScheduleError("internal error: schedule did not consume the network")
    return RemapSchedule(
        N=N,
        P=P,
        initial_layout=blocked_layout(N, P),
        phases=tuple(phases),
        strategy=strategy,
    )


def build_schedule(
    N: int,
    P: int,
    strategy: str = "head",
    head_steps: Optional[int] = None,
) -> RemapSchedule:
    """Build a smart-layout schedule under one of Lemma 5's strategies.

    ``"head"``
        ``lg n`` steps after every remap except the last
        (``N_RemainingSteps`` there) — Algorithm 1's natural order.
    ``"tail"``
        ``N_RemainingSteps`` steps after the *first* remap, ``lg n`` after
        every other — the volume-optimal placement (Lemma 5).
    ``"middle1"``
        ``head_steps`` after the first remap and the rest of
        ``N_RemainingSteps`` after the last; one *extra* remap.
    ``"middle2"``
        ``head_steps`` after the first remap and ``lg n +
        N_RemainingSteps - head_steps`` after the last; same remap count.

    When ``N_RemainingSteps == 0`` the head and tail strategies coincide and
    the middle strategies are rejected (there is nothing to shift).
    """
    N, P, n = require_sizes(N, P)
    lgn = ilog2(n) if n > 1 else 0
    if lgn == 0:
        raise ScheduleError("smart schedules need n >= 2 keys per processor")
    total = _region_steps(N, P)
    rem = total % lgn
    full = total // lgn
    if strategy == "head":
        counts = [lgn] * full + ([rem] if rem else [])
    elif strategy == "tail":
        counts = ([rem] if rem else []) + [lgn] * full
    elif strategy == "middle1":
        if rem == 0:
            raise ScheduleError("middle1 needs N_RemainingSteps > 0")
        h = head_steps if head_steps is not None else rem // 2
        if not 0 < h < rem:
            raise ScheduleError(
                f"middle1 head_steps must be in 1 .. {rem - 1}, got {h}"
            )
        counts = [h] + [lgn] * full + [rem - h]
    elif strategy == "middle2":
        if rem == 0:
            raise ScheduleError("middle2 needs N_RemainingSteps > 0")
        h = head_steps if head_steps is not None else max(rem, 1)
        tail = lgn + rem - h
        if not (0 < h and rem <= tail <= lgn):
            raise ScheduleError(
                f"middle2 head_steps must satisfy {rem} <= lgn+rem-h <= {lgn}; got h={h}"
            )
        counts = [h] + [lgn] * (full - 1) + [tail]
    else:
        raise ScheduleError(
            f"unknown strategy {strategy!r}: use head, tail, middle1 or middle2"
        )
    return _walk(N, P, counts, strategy)


def smart_schedule(N: int, P: int) -> RemapSchedule:
    """Algorithm 1's schedule (the Head placement): the minimal number of
    remaps, ``R = ceil(lgP + lgP(lgP+1) / (2 lg n))`` (Theorem 1)."""
    return build_schedule(N, P, strategy="head")


def cyclic_blocked_schedule(N: int, P: int) -> RemapSchedule:
    """The cyclic–blocked remapping strategy of §2.3 ([CKP+93, CDMS94]).

    For each stage ``lg n + k``: remap to cyclic, run the first ``k`` steps
    locally, remap back to blocked, run the last ``lg n`` steps locally.
    ``2 lg P`` remaps in total; requires ``N >= P**2``.
    """
    N, P, n = require_sizes(N, P)
    if n < P:
        raise ScheduleError(
            f"cyclic-blocked remapping requires N >= P**2 (n >= P); "
            f"got N={N}, P={P}, n={n} — use the smart schedule instead"
        )
    lgn, lgP = ilog2(n), ilog2(P)
    cyc = cyclic_layout(N, P)
    blk = blocked_layout(N, P)
    phases: List[RemapPhase] = []
    for k in range(1, lgP + 1):
        stage = lgn + k
        head = tuple((stage, s) for s in range(stage, lgn, -1))
        tail = tuple((stage, s) for s in range(lgn, 0, -1))
        phases.append(RemapPhase(cyc, head))
        phases.append(RemapPhase(blk, tail))
    return RemapSchedule(
        N=N, P=P, initial_layout=blk, phases=tuple(phases), strategy="cyclic-blocked"
    )
