"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from runtime/verification failures.

The full hierarchy::

    ReproError
    ├── ConfigurationError            (also ValueError)
    │   ├── SizeError
    │   ├── LayoutError
    │   └── ScheduleError
    ├── CommunicationError            (also RuntimeError)
    │   ├── PeerFailedError           — a specific rank died or went silent
    │   ├── SpmdTimeoutError          (also TimeoutError) — a deadline expired
    │   └── CorruptPayloadError       — a checksum rejected a payload
    ├── ServiceError                  (also RuntimeError)
    │   ├── AdmissionError            — request rejected/shed at the door
    │   │   └── MemoryBudgetError     — too big even for the spill-to-disk path
    │   ├── ServiceClosedError        — submitted to a closed service
    │   ├── ShardUnavailableError     — no healthy shard could take the request
    │   ├── RequestTimeoutError       (also TimeoutError) — client deadline expired
    │   └── FrameCorruptError         — a wire frame failed its checksum
    └── VerificationError             (also AssertionError)

The three :class:`CommunicationError` subclasses are raised by the
fault-tolerant transport (:mod:`repro.faults`): :class:`PeerFailedError`
names the rank that failed and the phase it failed in, carrying the retry
history that led to the verdict; :class:`SpmdTimeoutError` is the watchdog's
"nobody in particular, but the deadline passed" escalation (it additionally
derives from :class:`TimeoutError` so generic timeout handlers catch it);
:class:`CorruptPayloadError` reports a payload whose checksum never
validated within the retry budget — corruption is *always* surfaced as this
typed error, never as silently wrong data.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied.

    Raised for problems that are detectable before any work starts: sizes that
    are not powers of two, more processors than keys, negative model
    parameters, layouts that do not cover the requested network column, and so
    on.
    """


class SizeError(ConfigurationError):
    """A size argument (``N``, ``P`` or ``n``) violates a structural
    constraint of the bitonic sorting network (power of two, positivity,
    divisibility)."""


class LayoutError(ConfigurationError):
    """A data layout was asked to translate an address outside its domain, or
    a layout's parameters are mutually inconsistent."""


class ScheduleError(ConfigurationError):
    """A remap schedule could not be constructed for the requested
    ``(N, P)`` pair and strategy (e.g. cyclic-blocked with ``N < P**2``)."""


class CommunicationError(ReproError, RuntimeError):
    """The simulated machine was asked to perform an impossible transfer,
    such as a message addressed to a processor outside the machine or a
    payload whose length disagrees with its declared size."""


class PeerFailedError(CommunicationError):
    """A specific peer rank crashed or went silent.

    Raised by the fault-tolerant transport when a watchdog concludes that a
    named rank will never answer: its barrier collapsed, or it stopped
    acknowledging retransmissions while other peers kept making progress.

    Attributes
    ----------
    rank:
        The rank judged dead (``None`` when the culprit is unknowable, e.g.
        a collapsed barrier that does not identify its breaker).
    phase:
        The communication phase in which the failure was detected.
    retries:
        Retry history accumulated before giving up (one entry per attempt).
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        phase: Optional[str] = None,
        retries: Sequence[str] = (),
    ):
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.retries = list(retries)


class SpmdTimeoutError(CommunicationError, TimeoutError):
    """An SPMD deadline expired with no specific peer to blame.

    Raised by :func:`repro.runtime.threads.run_spmd` when the world misses
    its wall-clock budget, and by the reliable transport when a collective's
    retry budget drains without isolating a single failed rank.  Also a
    :class:`TimeoutError` so generic timeout handlers catch it.
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        phase: Optional[str] = None,
        retries: Sequence[str] = (),
    ):
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.retries = list(retries)


class CorruptPayloadError(CommunicationError):
    """A payload's checksum never validated within the retry budget.

    The reliable transport detects in-flight corruption by checksum and
    normally recovers by requesting a retransmission; this error is the
    escalation when every attempt from a sender arrived corrupted.  It names
    the sending rank and the phase so a wrong sort can never be silent.
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        phase: Optional[str] = None,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.attempts = attempts


class ServiceError(ReproError, RuntimeError):
    """A failure of the serving layer (:mod:`repro.service`) itself, as
    opposed to a failure of the sort a request carried (those re-raise
    the underlying :class:`CommunicationError` / job exception)."""


class AdmissionError(ServiceError):
    """Admission control turned a request away at the door.

    Raised by :meth:`repro.service.SortService.submit` when the bounded
    queue is full (``reason="queue-full"``) or the estimated completion
    time exceeds the request's deadline (``reason="deadline"``).  The
    request was *not* enqueued; the caller may retry later, shrink the
    request, or relax the deadline.

    Attributes
    ----------
    reason:
        ``"queue-full"`` or ``"deadline"``.
    est_seconds:
        Planner-estimated completion time (queue wait included) at the
        moment of rejection; 0.0 for queue-full rejections.
    """

    def __init__(self, message: str, reason: str = "", est_seconds: float = 0.0):
        super().__init__(message)
        self.reason = reason
        self.est_seconds = est_seconds


class MemoryBudgetError(AdmissionError):
    """A request does not fit even the out-of-core path's budgets.

    A request whose estimated in-memory working set exceeds the service's
    memory budget degrades to the spill-to-disk external sort; this error
    is the escalation when *that* is impossible too — the estimated spill
    footprint exceeds the configured disk budget.  A subclass of
    :class:`AdmissionError` (``reason="memory-budget"``) because it is an
    admission verdict: the request was never enqueued.

    Attributes
    ----------
    required_bytes:
        Estimated bytes the cheapest viable path would need.
    budget_bytes:
        The budget it did not fit (disk budget for external rejections).
    """

    def __init__(self, message: str, required_bytes: int = 0,
                 budget_bytes: int = 0):
        super().__init__(message, reason="memory-budget")
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class ServiceClosedError(ServiceError):
    """The service was closed before (or while) the request could run."""


class ShardUnavailableError(ServiceError):
    """No healthy shard could take (or finish) the request.

    Raised by the shard router when every shard is ejected (circuit open,
    failed health checks) or when the failover budget drained without a
    surviving shard completing the request.  Carries the per-shard status
    observed at the moment of the verdict so callers can tell "everything
    is down" from "everything is saturated".

    Attributes
    ----------
    shards:
        ``{shard_name: status_string}`` snapshot at failure time.
    attempts:
        Shard attempts (first try + failovers) made for this request.
    """

    def __init__(self, message: str, shards: Optional[dict] = None,
                 attempts: int = 0):
        super().__init__(message)
        self.shards = dict(shards or {})
        self.attempts = attempts


class RequestTimeoutError(ServiceError, TimeoutError):
    """A request's end-to-end deadline expired.

    The deadline is the *client's*: the remaining-time budget travels
    client → router → shard admission → world dispatch, and whichever
    layer first observes the budget at zero raises this instead of doing
    work the caller has already given up on.  Also a
    :class:`TimeoutError` so generic timeout handlers catch it.

    Attributes
    ----------
    deadline_s:
        The original end-to-end budget, in seconds.
    elapsed_s:
        Time spent before the expiry verdict.
    stage:
        Which layer gave up (``"client"``, ``"router"``, ``"admission"``,
        ``"dispatch"``, ``"result-wait"``).
    """

    def __init__(self, message: str, deadline_s: float = 0.0,
                 elapsed_s: float = 0.0, stage: str = ""):
        super().__init__(message)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.stage = stage


class FrameCorruptError(ServiceError):
    """A wire frame failed its CRC (or structural) check.

    The length-prefixed frame protocol (:mod:`repro.service.net`)
    checksums every payload; a receiver that cannot validate a frame
    raises this instead of ever acting on damaged bytes.  The client
    treats it as retriable (idempotent request ids make the retry safe).

    Attributes
    ----------
    frame_type:
        Numeric frame type if the header was readable, else ``None``.
    detail:
        What specifically failed (``"crc"``, ``"magic"``, ``"version"``,
        ``"truncated"``, ``"meta"``).
    """

    def __init__(self, message: str, frame_type: Optional[int] = None,
                 detail: str = ""):
        super().__init__(message)
        self.frame_type = frame_type
        self.detail = detail


class VerificationError(ReproError, AssertionError):
    """A self-check failed: a sort produced output that is not a permutation
    of its input or is not globally sorted.  This indicates a bug in an
    algorithm implementation, never a user mistake."""
