"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from runtime/verification failures.

The full hierarchy::

    ReproError
    ├── ConfigurationError            (also ValueError)
    │   ├── SizeError
    │   ├── LayoutError
    │   └── ScheduleError
    ├── CommunicationError            (also RuntimeError)
    │   ├── PeerFailedError           — a specific rank died or went silent
    │   ├── SpmdTimeoutError          (also TimeoutError) — a deadline expired
    │   └── CorruptPayloadError       — a checksum rejected a payload
    ├── ServiceError                  (also RuntimeError)
    │   ├── AdmissionError            — request rejected/shed at the door
    │   └── ServiceClosedError        — submitted to a closed service
    └── VerificationError             (also AssertionError)

The three :class:`CommunicationError` subclasses are raised by the
fault-tolerant transport (:mod:`repro.faults`): :class:`PeerFailedError`
names the rank that failed and the phase it failed in, carrying the retry
history that led to the verdict; :class:`SpmdTimeoutError` is the watchdog's
"nobody in particular, but the deadline passed" escalation (it additionally
derives from :class:`TimeoutError` so generic timeout handlers catch it);
:class:`CorruptPayloadError` reports a payload whose checksum never
validated within the retry budget — corruption is *always* surfaced as this
typed error, never as silently wrong data.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied.

    Raised for problems that are detectable before any work starts: sizes that
    are not powers of two, more processors than keys, negative model
    parameters, layouts that do not cover the requested network column, and so
    on.
    """


class SizeError(ConfigurationError):
    """A size argument (``N``, ``P`` or ``n``) violates a structural
    constraint of the bitonic sorting network (power of two, positivity,
    divisibility)."""


class LayoutError(ConfigurationError):
    """A data layout was asked to translate an address outside its domain, or
    a layout's parameters are mutually inconsistent."""


class ScheduleError(ConfigurationError):
    """A remap schedule could not be constructed for the requested
    ``(N, P)`` pair and strategy (e.g. cyclic-blocked with ``N < P**2``)."""


class CommunicationError(ReproError, RuntimeError):
    """The simulated machine was asked to perform an impossible transfer,
    such as a message addressed to a processor outside the machine or a
    payload whose length disagrees with its declared size."""


class PeerFailedError(CommunicationError):
    """A specific peer rank crashed or went silent.

    Raised by the fault-tolerant transport when a watchdog concludes that a
    named rank will never answer: its barrier collapsed, or it stopped
    acknowledging retransmissions while other peers kept making progress.

    Attributes
    ----------
    rank:
        The rank judged dead (``None`` when the culprit is unknowable, e.g.
        a collapsed barrier that does not identify its breaker).
    phase:
        The communication phase in which the failure was detected.
    retries:
        Retry history accumulated before giving up (one entry per attempt).
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        phase: Optional[str] = None,
        retries: Sequence[str] = (),
    ):
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.retries = list(retries)


class SpmdTimeoutError(CommunicationError, TimeoutError):
    """An SPMD deadline expired with no specific peer to blame.

    Raised by :func:`repro.runtime.threads.run_spmd` when the world misses
    its wall-clock budget, and by the reliable transport when a collective's
    retry budget drains without isolating a single failed rank.  Also a
    :class:`TimeoutError` so generic timeout handlers catch it.
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        phase: Optional[str] = None,
        retries: Sequence[str] = (),
    ):
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.retries = list(retries)


class CorruptPayloadError(CommunicationError):
    """A payload's checksum never validated within the retry budget.

    The reliable transport detects in-flight corruption by checksum and
    normally recovers by requesting a retransmission; this error is the
    escalation when every attempt from a sender arrived corrupted.  It names
    the sending rank and the phase so a wrong sort can never be silent.
    """

    def __init__(
        self,
        message: str,
        rank: Optional[int] = None,
        phase: Optional[str] = None,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.rank = rank
        self.phase = phase
        self.attempts = attempts


class ServiceError(ReproError, RuntimeError):
    """A failure of the serving layer (:mod:`repro.service`) itself, as
    opposed to a failure of the sort a request carried (those re-raise
    the underlying :class:`CommunicationError` / job exception)."""


class AdmissionError(ServiceError):
    """Admission control turned a request away at the door.

    Raised by :meth:`repro.service.SortService.submit` when the bounded
    queue is full (``reason="queue-full"``) or the estimated completion
    time exceeds the request's deadline (``reason="deadline"``).  The
    request was *not* enqueued; the caller may retry later, shrink the
    request, or relax the deadline.

    Attributes
    ----------
    reason:
        ``"queue-full"`` or ``"deadline"``.
    est_seconds:
        Planner-estimated completion time (queue wait included) at the
        moment of rejection; 0.0 for queue-full rejections.
    """

    def __init__(self, message: str, reason: str = "", est_seconds: float = 0.0):
        super().__init__(message)
        self.reason = reason
        self.est_seconds = est_seconds


class ServiceClosedError(ServiceError):
    """The service was closed before (or while) the request could run."""


class VerificationError(ReproError, AssertionError):
    """A self-check failed: a sort produced output that is not a permutation
    of its input or is not globally sorted.  This indicates a bug in an
    algorithm implementation, never a user mistake."""
