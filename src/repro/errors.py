"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from runtime/verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied.

    Raised for problems that are detectable before any work starts: sizes that
    are not powers of two, more processors than keys, negative model
    parameters, layouts that do not cover the requested network column, and so
    on.
    """


class SizeError(ConfigurationError):
    """A size argument (``N``, ``P`` or ``n``) violates a structural
    constraint of the bitonic sorting network (power of two, positivity,
    divisibility)."""


class LayoutError(ConfigurationError):
    """A data layout was asked to translate an address outside its domain, or
    a layout's parameters are mutually inconsistent."""


class ScheduleError(ConfigurationError):
    """A remap schedule could not be constructed for the requested
    ``(N, P)`` pair and strategy (e.g. cyclic-blocked with ``N < P**2``)."""


class CommunicationError(ReproError, RuntimeError):
    """The simulated machine was asked to perform an impossible transfer,
    such as a message addressed to a processor outside the machine or a
    payload whose length disagrees with its declared size."""


class VerificationError(ReproError, AssertionError):
    """A self-check failed: a sort produced output that is not a permutation
    of its input or is not globally sorted.  This indicates a bug in an
    algorithm implementation, never a user mistake."""
