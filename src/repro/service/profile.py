"""Host performance profiles for the request planner.

The paper's closed forms (§3.4) price a sort from machine parameters:
LogGP network numbers plus per-element compute costs.  The bundled
:data:`~repro.model.machines.MEIKO_CS2` spec prices the *paper's*
machine; to plan requests on the machine actually serving them, the same
formulas need *host* numbers.  A :class:`HostProfile` carries them:

* per-element compute rates (radix pass, merge, pack/unpack/fused-pack,
  addressing) measured on the host's NumPy kernels;
* per-backend :class:`BackendCosts` — LogGP parameters fitted to the
  backend's collectives plus the serving-specific fixed costs the closed
  forms do not cover: world spawn, warm job dispatch, and shipping a
  request's shards through the job pipe;
* the usable core count, which turns per-processor busy time into wall
  time on an oversubscribed host.

:func:`HostProfile.default` is a conservative built-in so the planner
works out of the box; ``scripts/calibrate_loggp.py`` measures the real
numbers and persists them as JSON (:meth:`HostProfile.save` /
:meth:`HostProfile.load`), which is the calibration workflow
``docs/SERVING.md`` describes.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.model.cache import CacheModel
from repro.model.logp import LogGPParams
from repro.model.machines import KEY_BYTES, ComputeCosts, MachineSpec

__all__ = ["BackendCosts", "HostProfile", "PROFILE_SCHEMA"]

#: Schema string embedded in persisted profiles; bump on layout changes.
#: History: /1 = calibrated LogGP + serving fixed costs; /2 adds an
#: optional ``adapt`` blob (the :class:`~repro.service.adapt.RequestAdapter`
#: state snapshot) so a restarted service resumes its online corrections
#: warm; /3 adds measured sequential disk read/write bandwidth and fsync
#: latency, which price the out-of-core external-sort regime.  Older
#: files still load — with a warning and conservative disk defaults, so
#: the planner never auto-chooses the external path without measured
#: evidence (the overlap-efficiency precedent).
PROFILE_SCHEMA = "repro-bitonic-profile/3"

#: Prior schemas, accepted read-only (warn; missing fields default) so
#: one calibration file survives the bumps.
_LEGACY_PROFILE_SCHEMAS = (
    "repro-bitonic-profile/1",
    "repro-bitonic-profile/2",
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class BackendCosts:
    """One SPMD backend's measured costs on this host.

    ``L``/``o``/``g``/``G`` are LogGP parameters (µs, µs/byte) fitted to
    the backend's collectives; the remaining fields are the serving fixed
    costs outside the closed forms' scope (all in seconds, except
    ``ship_bytes_per_s``).
    """

    L: float
    o: float
    g: float
    G: float
    #: Seconds to spawn one rank of a fresh world (fork/thread + arenas).
    spawn_per_rank_s: float
    #: Seconds of per-job dispatch/collect overhead on a warm world.
    job_overhead_s: float
    #: Bytes/second through the job pipe (shard shipping on a warm procs
    #: world); ``inf`` for the threads backend, which passes references.
    ship_bytes_per_s: float

    def network(self, P: int) -> LogGPParams:
        return LogGPParams(L=self.L, o=self.o, g=self.g, G=self.G, P=max(P, 1))


@dataclass(frozen=True)
class HostProfile:
    """Everything the planner knows about the serving host."""

    cpus: int
    #: Per-element compute rates, µs (see :class:`ComputeCosts`).
    radix_pass_us: float
    merge_us: float
    pack_us: float
    unpack_us: float
    fused_pack_us: float
    address_us: float
    backends: Dict[str, BackendCosts] = field(default_factory=dict)
    #: Fraction of per-remap transfer time the overlapped communication
    #: schedule hides behind unpack/merge work on this host, in [0, 1].
    #: 0 (the default) means "never plan into overlap" — the value comes
    #: from measured bench history (:meth:`BenchHistory.overlap_efficiency`)
    #: or calibration, not from optimism.
    overlap_efficiency: float = 0.0
    #: Calibrated busy-spin budget for the procs backend's counter
    #: handshakes (``None`` = let the backend default from the core
    #: count); plumbed into :class:`~repro.runtime.driver.BackendOptions`.
    spin_budget: Optional[int] = None
    #: Measured sequential disk bandwidths (bytes/s) and fsync latency
    #: (s) from ``scripts/calibrate_loggp.py``; ``None`` = unmeasured —
    #: :meth:`estimate_external` then prices with conservative defaults
    #: and the planner never auto-chooses the external regime
    #: (:attr:`has_disk_evidence`).
    disk_read_bytes_per_s: Optional[float] = None
    disk_write_bytes_per_s: Optional[float] = None
    fsync_s: Optional[float] = None
    #: ``"default"`` for the built-in guess, ``"calibrated"`` after
    #: ``scripts/calibrate_loggp.py`` measured this host.
    source: str = "default"

    @classmethod
    def default(cls) -> "HostProfile":
        """A conservative built-in profile (NumPy-on-one-core scale).

        The absolute numbers matter less than the *ordering* they induce
        (compute dwarfs shared-memory communication per element; procs
        worlds cost more to spawn and dispatch than threads worlds),
        which is what the planner's decisions ride on.  Calibrate for
        real estimates.
        """
        return cls(
            cpus=_usable_cpus(),
            radix_pass_us=0.010,
            merge_us=0.008,
            pack_us=0.010,
            unpack_us=0.008,
            fused_pack_us=0.004,
            address_us=0.001,
            backends={
                "threads": BackendCosts(
                    L=10.0, o=30.0, g=30.0, G=0.0005,
                    spawn_per_rank_s=0.0015,
                    job_overhead_s=0.0010,
                    ship_bytes_per_s=float("inf"),
                ),
                "procs": BackendCosts(
                    L=20.0, o=60.0, g=60.0, G=0.0010,
                    spawn_per_rank_s=0.0080,
                    job_overhead_s=0.0020,
                    ship_bytes_per_s=1.5e9,
                ),
            },
        )

    # -- the bridge into the paper's closed forms ----------------------

    def compute_costs(self) -> ComputeCosts:
        return ComputeCosts(
            radix_pass=self.radix_pass_us,
            merge=self.merge_us,
            compare_exchange=self.merge_us,
            pack=self.pack_us,
            unpack=self.unpack_us,
            address=self.address_us,
            fused_pack=self.fused_pack_us,
        )

    def machine_spec(self, backend: str, P: int) -> MachineSpec:
        """This host, expressed as a :class:`MachineSpec` the
        :mod:`repro.theory` predictors accept."""
        if backend not in self.backends:
            raise ConfigurationError(
                f"profile has no backend {backend!r}; "
                f"knows {sorted(self.backends)}"
            )
        return MachineSpec(
            name=f"host/{backend}",
            network=self.backends[backend].network(P),
            compute=self.compute_costs(),
            # Ranks share one physical cache hierarchy; the capacity
            # upturn is already baked into the measured per-element
            # rates, so the spec's explicit cache penalty is disabled.
            cache=CacheModel(capacity_bytes=1 << 30, key_bytes=KEY_BYTES, alpha=0.0),
        )

    def estimate(
        self,
        N: int,
        P: int,
        backend: str,
        *,
        algorithm: str = "smart",
        fused: bool = True,
        grouped: bool = True,
        overlap: bool = False,
        chunks: int = 4,
        warm: bool = True,
        dtype_size: int = KEY_BYTES,
    ) -> float:
        """Estimated end-to-end wall seconds for one sort request.

        The per-processor busy time comes from the paper's closed form
        (:func:`repro.theory.predict.predict` with this host's spec) for
        the requested ``algorithm`` (``"smart"`` bitonic or ``"sample"``);
        oversubscription scales it by ``P / min(P, cpus)`` because ranks
        beyond the core count serialize.  Ungrouped runs pay the full
        world-barrier fan-in per remap instead of the Lemma-4 group
        fan-in.  ``overlap`` credits :attr:`overlap_efficiency` of the
        predicted transfer time (the share the chunked pipeline hides
        behind unpack/merge) and charges one extra per-chunk posting
        overhead ``o`` per remap — with the default efficiency of 0 the
        overlapped estimate is strictly *worse*, so the planner only
        selects overlap once measurements justify it.  Sample sort has
        no chunked pipeline, so its estimate ignores the overlap flag
        (equal estimates let the planner keep the synchronous spelling).
        On top ride the serving fixed costs: spawn (cold only), job
        dispatch, and shard shipping through the job pipe.
        """
        from repro.theory.counts import counts_for
        from repro.theory.predict import predict

        if algorithm == "external":
            # The out-of-core path runs in-process on one box: no world,
            # no backend costs — ``backend`` is the planner's "local"
            # pseudo-backend and is deliberately not validated here.
            return self.estimate_external(N, dtype_size=dtype_size)
        costs = self.backends.get(backend)
        if costs is None:
            raise ConfigurationError(
                f"profile has no backend {backend!r}; "
                f"knows {sorted(self.backends)}"
            )
        spec = self.machine_spec(backend, P)
        if algorithm == "smart":
            pt = predict("smart", N, P, spec=spec, fused=fused)
        else:
            pt = predict(algorithm, N, P, spec=spec)
        busy_us = pt.total
        if algorithm == "smart" and overlap and P > 1:
            eff = min(max(self.overlap_efficiency, 0.0), 1.0)
            busy_us -= eff * pt.times.get("transfer", 0.0)
            remaps = counts_for("smart", N, P).remaps
            busy_us += (max(int(chunks), 1) - 1) * remaps * costs.o
        if P > 1:
            if algorithm == "smart":
                counts = counts_for("smart", N, P)
                remaps = counts.remaps
                messages = counts.messages
            else:
                # Sample sort: one redistribution of P - 1 messages, and
                # its single exchange always spans the whole world.
                remaps, messages = 1, P - 1
            # Synchronization fan-in per remap: each member waits on the
            # group (Lemma 4) or on the whole world, one ``o`` per peer
            # it must observe.  Groups average far fewer members.
            mean_group = max(2.0, messages / remaps + 1)
            fanin = (
                mean_group if grouped and algorithm == "smart" else float(P)
            )
            busy_us += remaps * costs.o * fanin
        oversub = P / max(1, min(P, self.cpus))
        wall = busy_us * oversub / 1e6
        wall += costs.job_overhead_s
        if not warm:
            wall += costs.spawn_per_rank_s * P
        elif backend == "procs":
            wall += (N * dtype_size) / costs.ship_bytes_per_s
        return wall

    @property
    def has_disk_evidence(self) -> bool:
        """True once calibration measured this host's disk — the gate on
        the planner *auto-choosing* the external regime (a forced or
        budget-degraded external request runs either way)."""
        return (
            self.disk_read_bytes_per_s is not None
            and self.disk_write_bytes_per_s is not None
        )

    def estimate_external(
        self,
        N: int,
        *,
        dtype_size: int = KEY_BYTES,
        memory_budget: Optional[int] = None,
        fan_in: int = 64,
    ) -> float:
        """Estimated wall seconds for one out-of-core external sort.

        The I/O-bandwidth + merge-pass closed form
        (:func:`repro.theory.predict.predict_external`) priced with this
        host's measured disk rates and compute kernels; unmeasured disk
        falls back to the conservative defaults, which keeps an
        evidence-free external estimate pessimistic.
        """
        from repro.theory.predict import predict_external

        pt = predict_external(
            N,
            spec=self.machine_spec_local(),
            memory_budget=memory_budget or (64 << 20),
            fan_in=fan_in,
            dtype_size=dtype_size,
            disk_read_bytes_per_s=self.disk_read_bytes_per_s,
            disk_write_bytes_per_s=self.disk_write_bytes_per_s,
            fsync_s=self.fsync_s,
        )
        return pt.total / 1e6

    def machine_spec_local(self) -> MachineSpec:
        """This host's compute rates with a null network — what the
        single-box predictors (external sort) price against."""
        return MachineSpec(
            name="host/local",
            network=LogGPParams(L=0.0, o=0.0, g=0.0, G=0.0, P=1),
            compute=self.compute_costs(),
            cache=CacheModel(capacity_bytes=1 << 30, key_bytes=KEY_BYTES, alpha=0.0),
        )

    # -- persistence ---------------------------------------------------

    def save(self, path: str, adapt: Optional[Dict[str, Any]] = None) -> None:
        """Persist the profile; ``adapt`` (a
        :meth:`~repro.service.adapt.RequestAdapter.state_blob`) rides
        along so a restarted service resumes its corrections warm."""
        doc: Dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "profile": asdict(self),
        }
        if adapt is not None:
            doc["adapt"] = adapt
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")

    @classmethod
    def _parse(cls, path: str, doc: Dict[str, Any]) -> "HostProfile":
        schema = doc.get("schema")
        if schema in _LEGACY_PROFILE_SCHEMAS:
            warnings.warn(
                f"{path}: stale profile schema {schema!r} "
                f"(current: {PROFILE_SCHEMA!r}); loading calibration "
                "with conservative defaults for the missing fields — "
                "re-run scripts/calibrate_loggp.py to refresh",
                stacklevel=3,
            )
        elif schema != PROFILE_SCHEMA:
            raise ConfigurationError(
                f"{path}: profile schema {schema!r} != "
                f"{PROFILE_SCHEMA!r} — re-run scripts/calibrate_loggp.py"
            )
        raw = dict(doc["profile"])
        known = {f.name for f in fields(cls)}
        raw = {k: v for k, v in raw.items() if k in known}
        raw["backends"] = {
            name: BackendCosts(**costs)
            for name, costs in raw.get("backends", {}).items()
        }
        return cls(**raw)

    @classmethod
    def load(cls, path: str) -> "HostProfile":
        profile, _ = cls.load_with_state(path)
        return profile

    @classmethod
    def load_with_state(
        cls, path: str
    ) -> Tuple["HostProfile", Optional[Dict[str, Any]]]:
        """The profile plus its persisted adapt blob (``None`` when the
        file predates schema /2 or was saved without one)."""
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        profile = cls._parse(path, doc)
        blob = doc.get("adapt")
        return profile, blob if isinstance(blob, dict) else None

    def with_backend(self, name: str, costs: BackendCosts) -> "HostProfile":
        merged = dict(self.backends)
        merged[name] = costs
        return replace(self, backends=merged)
