"""Per-tenant admission control: token buckets and weighted fair shares.

The service's bounded queue (PR 5) protects the *machine*; this module
protects the *tenants from each other*.  Two mechanisms compose, both
enforced at the admission door (a rejected request never enqueues):

* **token buckets** — a tenant with a configured ``rate`` earns that many
  admissions per second (up to ``burst`` banked); a tenant that has spent
  its bucket is rejected with
  :class:`~repro.errors.AdmissionError` ``reason="tenant-rate"``;
* **weighted fair queue shares** — when the queue is *contended* (its
  occupancy is at or above ``contended_fraction`` of capacity), a tenant
  may occupy at most its weight-proportional share of the queue slots
  (never less than one).  A hot tenant bursting past its share is
  rejected with ``reason="tenant-share"`` while quieter tenants keep
  admitting, so one storming client degrades gracefully instead of
  starving everyone behind a ``queue-full`` wall.  Below the contention
  threshold the queue is work-conserving: any tenant may use idle slots.

The controller is substrate-neutral — :class:`~repro.service.SortService`
consults it in-process and the network front end
(:mod:`repro.service.net`) consults the same instance for remote
tenants, so local and wire traffic share one fairness domain.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import AdmissionError, ConfigurationError

__all__ = ["TenantPolicy", "TenantAdmission", "DEFAULT_TENANT"]

#: Requests submitted without a tenant land here.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's entitlement.

    ``weight`` sets the tenant's fair share of queue slots under
    contention (relative to the other *currently active* tenants).
    ``rate``/``burst`` configure the token bucket: ``rate`` admissions
    per second sustained, ``burst`` banked at most; ``rate=None``
    disables rate limiting for the tenant.
    """

    weight: float = 1.0
    rate: Optional[float] = None
    burst: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant weight must be > 0, got {self.weight}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError(
                f"tenant rate must be > 0 (or None), got {self.rate}"
            )
        if self.burst < 1:
            raise ConfigurationError(
                f"tenant burst must be >= 1, got {self.burst}"
            )


@dataclass
class _TenantState:
    policy: TenantPolicy
    tokens: float
    refilled_at: float
    queued: int = 0
    admitted: int = 0
    rejected_rate: int = 0
    rejected_share: int = 0


class TenantAdmission:
    """Thread-safe per-tenant admission ledger.

    Parameters
    ----------
    policies:
        ``{tenant: TenantPolicy}`` for tenants with explicit
        entitlements; unknown tenants get ``default_policy``.
    default_policy:
        Entitlement for tenants not named in ``policies``.
    contended_fraction:
        Queue occupancy (``queued / depth``) at which fair shares start
        binding.  Below it any tenant may use idle slots.
    """

    def __init__(
        self,
        policies: Optional[Mapping[str, TenantPolicy]] = None,
        default_policy: TenantPolicy = TenantPolicy(),
        contended_fraction: float = 0.5,
    ):
        if not 0.0 <= contended_fraction <= 1.0:
            raise ConfigurationError(
                f"contended_fraction must be in [0, 1], "
                f"got {contended_fraction}"
            )
        self._policies = dict(policies or {})
        self._default = default_policy
        self._contended_fraction = contended_fraction
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}

    # -- the admission verdict ------------------------------------------

    def admit(self, tenant: str, queue_len: int, queue_depth: int) -> None:
        """Admit one request for ``tenant`` or raise
        :class:`~repro.errors.AdmissionError`.

        ``queue_len`` is the queue occupancy *before* this request; the
        caller holds its queue lock across this call and the enqueue, so
        the tenant ledger and the queue cannot drift.  On success the
        tenant's queued count is incremented — the caller must pair every
        admit with exactly one :meth:`release` when the request leaves
        the queue (served, failed, or expired).
        """
        now = time.monotonic()
        with self._lock:
            st = self._state(tenant, now)
            # Token bucket first: a rate-limited tenant is turned away
            # even on an empty queue (the bucket is the contract).
            policy = st.policy
            if policy.rate is not None:
                st.tokens = min(
                    policy.burst,
                    st.tokens + (now - st.refilled_at) * policy.rate,
                )
                st.refilled_at = now
                if st.tokens < 1.0:
                    st.rejected_rate += 1
                    raise AdmissionError(
                        f"tenant {tenant!r} spent its token bucket "
                        f"(rate {policy.rate}/s, burst {policy.burst}); "
                        "request rejected",
                        reason="tenant-rate",
                    )
            # Fair share second, and only under contention.
            if queue_len >= self._contended_fraction * queue_depth:
                share = self._fair_share_locked(tenant, queue_depth)
                if st.queued >= share:
                    st.rejected_share += 1
                    raise AdmissionError(
                        f"tenant {tenant!r} holds {st.queued} of its "
                        f"{share}-slot fair share in a contended queue "
                        f"({queue_len}/{queue_depth}); request rejected",
                        reason="tenant-share",
                    )
            if policy.rate is not None:
                st.tokens -= 1.0
            st.queued += 1
            st.admitted += 1

    def release(self, tenant: str) -> None:
        """A previously admitted request left the queue."""
        with self._lock:
            st = self._tenants.get(tenant)
            if st is not None and st.queued > 0:
                st.queued -= 1

    # -- introspection ---------------------------------------------------

    def fair_share(self, tenant: str, queue_depth: int) -> int:
        """This tenant's current slot entitlement under contention."""
        with self._lock:
            self._state(tenant, time.monotonic())
            return self._fair_share_locked(tenant, queue_depth)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters: queued now, admitted, rejections by kind."""
        with self._lock:
            return {
                name: {
                    "queued": st.queued,
                    "admitted": st.admitted,
                    "rejected_rate": st.rejected_rate,
                    "rejected_share": st.rejected_share,
                    "weight": st.policy.weight,
                }
                for name, st in self._tenants.items()
            }

    # -- internals -------------------------------------------------------

    def _state(self, tenant: str, now: float) -> _TenantState:
        st = self._tenants.get(tenant)
        if st is None:
            policy = self._policies.get(tenant, self._default)
            st = _TenantState(
                policy=policy, tokens=policy.burst, refilled_at=now
            )
            self._tenants[tenant] = st
        return st

    def _fair_share_locked(self, tenant: str, queue_depth: int) -> int:
        """Weight-proportional slots among *active* tenants (queued > 0,
        plus the asking tenant), floored at one slot so no tenant is
        starved outright."""
        active_weight = 0.0
        for name, st in self._tenants.items():
            if st.queued > 0 or name == tenant:
                active_weight += st.policy.weight
        mine = self._tenants[tenant].policy.weight
        if active_weight <= 0:
            return queue_depth
        return max(1, math.ceil(queue_depth * mine / active_weight))
