"""``repro.service`` — the persistent sort service.

A serving layer over the SPMD runtime: a warm :class:`WorldPool` keeps
spawned worlds alive between requests, a LogGP-driven :class:`Planner`
prices each request with the paper's closed forms calibrated to the host
(:class:`HostProfile`), and :class:`SortService` fronts it all with a
bounded queue, admission control, same-shape batching and per-request
tracing.

PR 6 adds the wire: :mod:`repro.service.net` frames requests over TCP
(:class:`SortServer` / :class:`SortClient`, with same-host shm payloads
and idempotent retries), :mod:`repro.service.router` spreads them across
shards with health-checked circuit breaking and failover
(:class:`ShardRouter`), and :mod:`repro.service.admission` arbitrates
tenants at the queue door (:class:`TenantAdmission`).

PR 9 closes the feedback loop: :mod:`repro.service.adapt` folds every
served request's measurements back into live per-``(backend, P,
algorithm)`` correction factors (:class:`RequestAdapter`) the planner
prices with, and the pool autoscales itself from queue pressure.  See
``docs/SERVING.md``.
"""

from repro.service.adapt import RequestAdapter
from repro.service.admission import DEFAULT_TENANT, TenantAdmission, TenantPolicy
from repro.service.net import ClientOutcome, SortClient, SortServer
from repro.service.planner import BenchHistory, PlanDecision, Planner
from repro.service.pool import WorldPool
from repro.service.profile import PROFILE_SCHEMA, BackendCosts, HostProfile
from repro.service.router import LocalShard, ShardRouter
from repro.service.service import ServiceReport, SortOutcome, SortService, Ticket

__all__ = [
    "BackendCosts",
    "BenchHistory",
    "ClientOutcome",
    "DEFAULT_TENANT",
    "HostProfile",
    "LocalShard",
    "PROFILE_SCHEMA",
    "PlanDecision",
    "Planner",
    "RequestAdapter",
    "ServiceReport",
    "ShardRouter",
    "SortClient",
    "SortServer",
    "SortOutcome",
    "SortService",
    "TenantAdmission",
    "TenantPolicy",
    "Ticket",
    "WorldPool",
]
