"""``repro.service`` — the persistent sort service.

A serving layer over the SPMD runtime: a warm :class:`WorldPool` keeps
spawned worlds alive between requests, a LogGP-driven :class:`Planner`
prices each request with the paper's closed forms calibrated to the host
(:class:`HostProfile`), and :class:`SortService` fronts it all with a
bounded queue, admission control, same-shape batching and per-request
tracing.  See ``docs/SERVING.md``.
"""

from repro.service.planner import BenchHistory, PlanDecision, Planner
from repro.service.pool import WorldPool
from repro.service.profile import PROFILE_SCHEMA, BackendCosts, HostProfile
from repro.service.service import ServiceReport, SortOutcome, SortService, Ticket

__all__ = [
    "BackendCosts",
    "BenchHistory",
    "HostProfile",
    "PROFILE_SCHEMA",
    "PlanDecision",
    "Planner",
    "ServiceReport",
    "SortOutcome",
    "SortService",
    "Ticket",
    "WorldPool",
]
