"""The wire front end: length-prefixed frames, asyncio server, retrying client.

This module puts a real socket in front of :class:`~repro.service.SortService`
so the serving layer can take traffic from other processes and hosts.

**Frame layout** (all integers big-endian)::

    offset  size  field
    0       4     magic  b"RBSF"
    4       1     version (2; receivers accept any version in
                  [1, PROTO_VERSION] — minor revisions only add meta keys)
    5       1     frame type
    6       2     flags
    8       4     sequence number (per connection, per direction)
    12      4     meta length   (JSON, UTF-8)
    16      4     body length   (raw ndarray bytes; 0 for shm payloads)
    20      4     CRC-32 of meta + body
    24      ...   meta bytes, then body bytes

Anything that fails the magic/version/CRC checks raises a typed
:class:`~repro.errors.FrameCorruptError` — a receiver never acts on
damaged bytes, and a client treats corruption as retriable because
request ids are idempotent (below).

**Frame types**: ``HELLO``/``WELCOME`` (handshake; the server advertises
its name and a host token so same-host clients may switch to shm
payloads), ``SORT``/``RESULT``/``ERROR`` (one request), and
``HEALTH``/``HEALTH_OK`` (the router's health-check RPC).

**Payload transport**: keys normally travel as raw bytes in the frame
body with dtype/shape in the meta.  When client and server share a host
(matching host tokens) the client may instead write the keys into a
``/dev/shm/rsrtshm_<request id>`` segment and send only its name; the
server sorts and writes the result back **in place**, so a same-host
round trip ships two frames of metadata and zero key bytes.  The client
owns the segment and unlinks it when the request resolves, success or
not.

**Idempotent requests**: every request carries a client-generated id.
The server deduplicates: a retried id attaches to the in-flight run (or
returns the cached result) instead of sorting twice, which makes the
client's deadline-retry loop safe even when only the *response* was
lost.

**Fault injection**: a :class:`~repro.faults.NetFaultInjector` can be
armed on the server; every inbound and outbound frame then gets a
deterministic drop/corrupt/delay verdict, which is how ``chaos-serve``
proves that every failure path ends in a typed error or a successful
retry/failover — never a silent loss.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import re
import socket
import struct
import threading
import time
import uuid
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    AdmissionError,
    CommunicationError,
    ConfigurationError,
    FrameCorruptError,
    ReproError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    ShardUnavailableError,
    SpmdTimeoutError,
    VerificationError,
)
from repro.trace.recorder import Tracer, trace_span

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "MIN_PROTO_VERSION",
    "PROTO_VERSION",
    "FrameType",
    "ClientOutcome",
    "SortClient",
    "SortServer",
    "encode_frame",
    "decode_frame",
    "shm_segments",
]

MAGIC = b"RBSF"
#: Current protocol version.  v2 added the optional ``algorithm`` meta
#: key on SORT/RESULT frames; the frame layout is unchanged, so
#: receivers accept any version in [MIN_PROTO_VERSION, PROTO_VERSION]
#: and treat absent meta keys as their v1 defaults (``algorithm`` →
#: ``"smart"``).
PROTO_VERSION = 2
MIN_PROTO_VERSION = 1
_HEADER = struct.Struct("!4sBBHIII")
HEADER_SIZE = _HEADER.size + 4  # + trailing CRC-32
assert HEADER_SIZE == 24

#: Sanity bounds: a meta or body length beyond these is structural
#: corruption, not a real request.
MAX_META = 1 << 20
MAX_BODY = 1 << 31

#: Same-host shm payload segments: /dev/shm/rsrtshm_<32 hex>.
_SHM_DIR = "/dev/shm"
_SHM_PREFIX = "rsrtshm_"
_SHM_NAME_RE = re.compile(r"rsrtshm_[0-9a-f]{32}\Z")


class FrameType:
    """Wire frame type codes (class-as-namespace; values are the wire)."""

    HELLO = 1
    WELCOME = 2
    SORT = 3
    RESULT = 4
    ERROR = 5
    HEALTH = 6
    HEALTH_OK = 7


# -- codec ----------------------------------------------------------------


def encode_frame(
    ftype: int, meta: Dict[str, Any], body: bytes = b"", seq: int = 0,
    flags: int = 0,
) -> bytes:
    """One frame, ready for the wire."""
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    if len(meta_bytes) > MAX_META or len(body) > MAX_BODY:
        raise ConfigurationError(
            f"frame payload too large (meta {len(meta_bytes)}, "
            f"body {len(body)})"
        )
    crc = zlib.crc32(meta_bytes)
    crc = zlib.crc32(body, crc)
    header = _HEADER.pack(
        MAGIC, PROTO_VERSION, ftype, flags, seq, len(meta_bytes), len(body)
    ) + struct.pack("!I", crc)
    return header + meta_bytes + body


def parse_header(header: bytes) -> Tuple[int, int, int, int, int, int]:
    """``(ftype, flags, seq, meta_len, body_len, crc)`` or a typed raise."""
    if len(header) != HEADER_SIZE:
        raise FrameCorruptError(
            f"truncated header: {len(header)} of {HEADER_SIZE} bytes",
            detail="truncated",
        )
    magic, version, ftype, flags, seq, meta_len, body_len = _HEADER.unpack(
        header[: _HEADER.size]
    )
    (crc,) = struct.unpack("!I", header[_HEADER.size:])
    if magic != MAGIC:
        raise FrameCorruptError(
            f"bad frame magic {magic!r}", frame_type=ftype, detail="magic"
        )
    if not MIN_PROTO_VERSION <= version <= PROTO_VERSION:
        raise FrameCorruptError(
            f"unsupported frame version {version}", frame_type=ftype,
            detail="version",
        )
    if meta_len > MAX_META or body_len > MAX_BODY:
        raise FrameCorruptError(
            f"implausible frame lengths (meta {meta_len}, body {body_len})",
            frame_type=ftype, detail="truncated",
        )
    return ftype, flags, seq, meta_len, body_len, crc


def validate_payload(
    ftype: int, payload: bytes, meta_len: int, crc: int
) -> Tuple[Dict[str, Any], bytes]:
    """CRC-check and split a frame payload into ``(meta, body)``."""
    if zlib.crc32(payload) != crc:
        raise FrameCorruptError(
            "frame payload failed its CRC-32 check", frame_type=ftype,
            detail="crc",
        )
    try:
        meta = json.loads(payload[:meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameCorruptError(
            f"frame meta is not valid JSON: {exc}", frame_type=ftype,
            detail="meta",
        ) from exc
    return meta, payload[meta_len:]


def decode_frame(data: bytes) -> Tuple[int, Dict[str, Any], bytes]:
    """Decode one complete frame (tests and documentation; the server and
    client stream-read instead).  Returns ``(ftype, meta, body)``."""
    ftype, _flags, _seq, meta_len, body_len, crc = parse_header(
        data[:HEADER_SIZE]
    )
    payload = data[HEADER_SIZE:]
    if len(payload) != meta_len + body_len:
        raise FrameCorruptError(
            f"frame payload truncated: {len(payload)} of "
            f"{meta_len + body_len} bytes", frame_type=ftype,
            detail="truncated",
        )
    meta, body = validate_payload(ftype, payload, meta_len, crc)
    return ftype, meta, body


# -- typed errors over the wire ------------------------------------------

#: Errors a server may report by name; anything else arrives as a plain
#: ServiceError carrying the original class name in the message.
_WIRE_ERRORS = {
    cls.__name__: cls
    for cls in (
        AdmissionError,
        CommunicationError,
        ConfigurationError,
        FrameCorruptError,
        RequestTimeoutError,
        ServiceClosedError,
        ServiceError,
        ShardUnavailableError,
        SpmdTimeoutError,
        VerificationError,
    )
}


def error_to_meta(exc: BaseException) -> Dict[str, Any]:
    meta: Dict[str, Any] = {
        "error": type(exc).__name__,
        "message": str(exc),
    }
    for attr in ("reason", "stage", "deadline_s", "elapsed_s", "detail"):
        value = getattr(exc, attr, None)
        if value not in (None, ""):
            meta[attr] = value
    return meta


def error_from_meta(meta: Dict[str, Any]) -> ReproError:
    name = meta.get("error", "ServiceError")
    message = meta.get("message", "remote failure")
    cls = _WIRE_ERRORS.get(name)
    if cls is AdmissionError:
        return AdmissionError(message, reason=meta.get("reason", ""))
    if cls is RequestTimeoutError:
        return RequestTimeoutError(
            message,
            deadline_s=float(meta.get("deadline_s", 0.0)),
            elapsed_s=float(meta.get("elapsed_s", 0.0)),
            stage=meta.get("stage", "server"),
        )
    if cls is FrameCorruptError:
        return FrameCorruptError(message, detail=meta.get("detail", ""))
    if cls is None:
        return ServiceError(f"{name}: {message}")
    return cls(message)


# -- shm payloads ---------------------------------------------------------


def host_token() -> str:
    """A token two processes share iff they share a kernel (same host,
    same boot) — the gate for shm payload transport."""
    try:
        with open("/proc/sys/kernel/random/boot_id", encoding="ascii") as fh:
            return fh.read().strip()
    except OSError:  # pragma: no cover — non-Linux
        return socket.gethostname()


def shm_segments() -> set:
    """Names of live client-payload shm segments (leak gates)."""
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover — non-Linux
        return set()
    return {
        name for name in os.listdir(_SHM_DIR)
        if name.startswith(_SHM_PREFIX)
    }


def _shm_path(name: str) -> str:
    """Validated absolute path of a payload segment (reject traversal)."""
    if not _SHM_NAME_RE.match(name):
        raise FrameCorruptError(
            f"illegal shm segment name {name!r}", detail="meta"
        )
    return os.path.join(_SHM_DIR, name)


def _decode_keys(meta: Dict[str, Any], body: bytes) -> np.ndarray:
    """The request's key array, from the frame body or its shm segment."""
    dtype = np.dtype(meta["dtype"])
    if meta.get("shm"):
        with open(_shm_path(meta["shm"]), "rb") as fh:
            body = fh.read()
    if len(body) % dtype.itemsize:
        raise FrameCorruptError(
            f"body length {len(body)} not a multiple of itemsize "
            f"{dtype.itemsize}", detail="truncated",
        )
    return np.frombuffer(body, dtype=dtype).copy()


# -- the server -----------------------------------------------------------


class SortServer:
    """An asyncio frame server fronting one :class:`SortService` shard.

    Runs its event loop on a dedicated thread (the rest of the package is
    synchronous); sort requests execute on a small thread pool so slow
    sorts never stall the protocol plane.  ``faults`` arms deterministic
    per-frame chaos (see the module docstring).

    Parameters
    ----------
    service:
        The backing :class:`~repro.service.SortService`.
    host, port:
        Bind address; port 0 picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    name:
        Shard name, reported in handshakes, results and health answers.
    faults:
        Optional :class:`~repro.faults.NetFaultInjector`.
    own_service:
        When True, :meth:`close`/:meth:`kill` also close the service.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "shard0",
        faults=None,
        own_service: bool = False,
        max_workers: int = 8,
        result_timeout: float = 120.0,
    ):
        self.service = service
        self.name = name
        self.faults = faults
        self._host = host
        self._port = port
        self._own_service = own_service
        self._result_timeout = result_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"sortsrv-{name}"
        )
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._drain = True
        self._abort = False
        self._closed = False
        self._conn_ids = 0
        self._writers: set = set()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._done_cache: Dict[str, Tuple[int, Dict[str, Any], bytes]] = {}
        self._done_order: list = []
        self.served = 0
        self.errored = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve; returns ``(host, port)`` once accepting."""
        self._thread = threading.Thread(
            target=self._run_loop, name=f"sort-server-{self.name}",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(10.0):
            raise ServiceError(f"server {self.name} failed to start in 10s")
        if self._start_error is not None:
            raise self._start_error
        assert self.address is not None
        return self.address

    def close(self, drain: bool = True) -> None:
        """Stop accepting, optionally finish in-flight requests, stop the
        loop.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._drain = drain
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._request_stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._executor.shutdown(wait=False)
        if self._own_service:
            self.service.close(drain=drain)

    def kill(self) -> None:
        """Chaos shutdown: abort every connection, drop in-flight work.
        Clients observe a reset, never a reply — exactly what a crashed
        shard looks like from the wire."""
        self._abort = True
        self.close(drain=False)

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            self._start_error = exc
            self._started.set()
        finally:
            loop.close()

    async def _main(self) -> None:
        server = await asyncio.start_server(
            self._handle_conn, self._host, self._port
        )
        self.address = server.sockets[0].getsockname()[:2]
        self._stop_event = asyncio.Event()
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._drain and self._inflight:
                await asyncio.gather(
                    *list(self._inflight.values()), return_exceptions=True
                )
            for writer in list(self._writers):
                try:
                    if self._abort:
                        writer.transport.abort()
                    else:
                        writer.close()
                except Exception:  # noqa: BLE001 — teardown best effort
                    pass
            # Reap the per-connection handler tasks so the loop closes
            # without "Task was destroyed but it is pending" noise.
            tasks = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            for t in tasks:
                t.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    # -- the protocol plane ---------------------------------------------

    async def _read_frame(self, reader) -> Tuple[int, Dict[str, Any], bytes]:
        header = await reader.readexactly(HEADER_SIZE)
        ftype, _flags, _seq, meta_len, body_len, crc = parse_header(header)
        payload = await reader.readexactly(meta_len + body_len)
        meta, body = validate_payload(ftype, payload, meta_len, crc)
        return ftype, meta, body

    async def _send(self, writer, conn_id: int, out_seq: int,
                    data: bytes) -> None:
        """Write one response frame, via the fault injector when armed."""
        if self.faults is not None:
            data2, stall = self.faults.apply(data, "out", conn_id, out_seq)
            if stall > 0:
                await asyncio.sleep(stall)
            if data2 is None:
                return  # dropped: the client's deadline-retry recovers
            data = data2
        writer.write(data)
        await writer.drain()

    async def _handle_conn(self, reader, writer) -> None:
        self._conn_ids += 1
        conn_id = self._conn_ids
        self._writers.add(writer)
        in_seq = out_seq = 0
        try:
            while not self._closed:
                try:
                    ftype, meta, body = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # peer went away
                except FrameCorruptError as exc:
                    # A damaged request: tell the peer, typed, and keep
                    # the connection — the stream itself is still framed.
                    out_seq += 1
                    await self._send(
                        writer, conn_id, out_seq,
                        encode_frame(
                            FrameType.ERROR, error_to_meta(exc), seq=out_seq
                        ),
                    )
                    continue
                in_seq += 1
                if self.faults is not None:
                    verdict = self.faults.decide("in", conn_id, in_seq)
                    if verdict.delay:
                        await asyncio.sleep(self.faults.delay_s)
                    if verdict.drop:
                        continue  # lost on the wire: client retries
                    if verdict.corrupt:
                        # Modelled as checksum-detected wire damage.
                        out_seq += 1
                        await self._send(
                            writer, conn_id, out_seq,
                            encode_frame(
                                FrameType.ERROR,
                                error_to_meta(FrameCorruptError(
                                    "request frame arrived corrupted "
                                    "(injected)", detail="crc",
                                )),
                                seq=out_seq,
                            ),
                        )
                        continue
                out_seq += 1
                reply = await self._dispatch(ftype, meta, body)
                await self._send(
                    writer, conn_id, out_seq,
                    encode_frame(reply[0], reply[1], reply[2], seq=out_seq),
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — teardown best effort
                pass

    async def _dispatch(
        self, ftype: int, meta: Dict[str, Any], body: bytes
    ) -> Tuple[int, Dict[str, Any], bytes]:
        if ftype == FrameType.HELLO:
            return (
                FrameType.WELCOME,
                {
                    "server": self.name,
                    "proto": PROTO_VERSION,
                    "host_token": host_token(),
                    "pid": os.getpid(),
                },
                b"",
            )
        if ftype == FrameType.HEALTH:
            report = self.service.report()
            return (
                FrameType.HEALTH_OK,
                {
                    "server": self.name,
                    "healthy": True,
                    "served": report.served,
                    "failed": report.failed,
                    "expired": report.expired,
                    "inflight": len(self._inflight),
                },
                b"",
            )
        if ftype == FrameType.SORT:
            return await self._handle_sort(meta, body)
        return (
            FrameType.ERROR,
            error_to_meta(
                ConfigurationError(f"unknown frame type {ftype}")
            ),
            b"",
        )

    async def _handle_sort(
        self, meta: Dict[str, Any], body: bytes
    ) -> Tuple[int, Dict[str, Any], bytes]:
        rid = meta.get("id")
        if not isinstance(rid, str) or not rid:
            return (
                FrameType.ERROR,
                error_to_meta(
                    ConfigurationError("sort request carries no id")
                ),
                b"",
            )
        # Idempotency: a retried id rides the first run, never a second.
        cached = self._done_cache.get(rid)
        if cached is not None:
            return cached
        fut = self._inflight.get(rid)
        if fut is None:
            fut = asyncio.get_running_loop().run_in_executor(
                self._executor, self._run_request, meta, body,
                time.monotonic(),
            )
            self._inflight[rid] = fut
            fut.add_done_callback(
                lambda f, rid=rid: self._finish_request(rid, f)
            )
        reply = await asyncio.shield(fut)
        return reply

    def _finish_request(self, rid: str, fut: asyncio.Future) -> None:
        self._inflight.pop(rid, None)
        try:
            reply = fut.result()
        except BaseException:  # noqa: BLE001 — never cached, never raised here
            return
        self._done_cache[rid] = reply
        self._done_order.append(rid)
        while len(self._done_order) > 512:
            self._done_cache.pop(self._done_order.pop(0), None)

    # -- the worker plane (executor threads) ----------------------------

    def _run_request(
        self, meta: Dict[str, Any], body: bytes, received_at: float
    ) -> Tuple[int, Dict[str, Any], bytes]:
        rid = meta["id"]
        try:
            keys = _decode_keys(meta, body)
            budget = meta.get("budget_s")
            if budget is not None:
                # The remaining-time budget, net of our own queueing so
                # far; admission and the world dispatch both honor it.
                budget = float(budget) - (time.monotonic() - received_at)
                if budget <= 0:
                    raise RequestTimeoutError(
                        f"request {rid} arrived with its budget spent",
                        deadline_s=float(meta["budget_s"]),
                        elapsed_s=float(meta["budget_s"]) - budget,
                        stage="admission",
                    )
            # Absent on v1 frames: old clients asked for (and only knew)
            # the smart bitonic sort; "auto" opts into planner routing.
            algorithm = meta.get("algorithm", "smart")
            ticket = self.service.submit(
                keys,
                algorithm=None if algorithm == "auto" else algorithm,
                backend=meta.get("backend"),
                P=meta.get("P"),
                fused=meta.get("fused"),
                grouped=meta.get("grouped"),
                deadline_s=budget,
                tenant=meta.get("tenant") or "default",
            )
            outcome = ticket.result(
                budget if budget is not None else self._result_timeout
            )
            rmeta: Dict[str, Any] = {
                "id": rid,
                "shard": self.name,
                "algorithm": outcome.decision.algorithm,
                "backend": outcome.decision.backend,
                "P": outcome.decision.P,
                "queue_wait_s": outcome.queue_wait_s,
                "run_s": outcome.run_s,
                "batch_size": outcome.batch_size,
                "retries": outcome.retries,
                "dtype": str(outcome.sorted_keys.dtype.str),
            }
            if meta.get("shm"):
                with open(_shm_path(meta["shm"]), "wb") as fh:
                    fh.write(outcome.sorted_keys.tobytes())
                rmeta["shm"] = meta["shm"]
                rbody = b""
            else:
                rbody = outcome.sorted_keys.tobytes()
            self.served += 1
            return (FrameType.RESULT, rmeta, rbody)
        except BaseException as exc:  # noqa: BLE001 — typed over the wire
            self.errored += 1
            emeta = error_to_meta(exc)
            emeta["id"] = rid
            return (FrameType.ERROR, emeta, b"")


# -- the client -----------------------------------------------------------


@dataclass
class ClientOutcome:
    """What one networked request produced."""

    sorted_keys: np.ndarray
    request_id: str
    shard: str
    wall_s: float = 0.0
    attempts: int = 1
    via_shm: bool = False
    #: Server-side accounting (queue wait, run time, batch size, ...).
    server: Dict[str, Any] = field(default_factory=dict)
    #: Network spans (frame/inflight/retry) when the request was traced.
    tracer: Optional[Tracer] = None
    #: Failovers the router performed for this request (0 when the
    #: request went straight through a single client).
    failovers: int = 0


def _jittered(base: float, cap: float, attempt: int,
              rng: random.Random) -> float:
    """Capped exponential backoff with full jitter."""
    return min(cap, base * (2 ** (attempt - 1))) * (0.5 + rng.random() / 2)


class SortClient:
    """A blocking client for :class:`SortServer`.

    Connections are **per thread** (a `threading.local`), so one client
    instance may serve many concurrent caller threads — the router does
    exactly that — without head-of-line blocking between them.  Each
    thread reuses its connection across requests; every attempt that
    fails drops it and the next attempt reconnects.  Retries ride the
    same request id, so the server never sorts twice for one caller.

    Parameters
    ----------
    address:
        ``(host, port)`` or ``"host:port"``.
    timeout_s:
        Per-attempt socket budget.  A lost reply costs at most
        ``min(timeout_s, remaining deadline)`` before the retry loop
        takes over — never the whole deadline.
    retries:
        Extra attempts after the first (wire failures only; typed
        server verdicts are never retried here — that is router policy).
    backoff_s / backoff_max_s:
        Exponential backoff base and cap between attempts (full jitter).
    via_shm:
        ``"auto"`` ships payloads through /dev/shm when the handshake
        proves the server is on this host and the payload is at least
        ``shm_min_bytes``; ``True`` forces it; ``False`` disables.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        timeout_s: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.05,
        backoff_max_s: float = 1.0,
        via_shm: Union[bool, str] = "auto",
        shm_min_bytes: int = 1 << 16,
        name: str = "client",
    ):
        if isinstance(address, str):
            host, _, port = address.rpartition(":")
            address = (host or "127.0.0.1", int(port))
        self.address: Tuple[str, int] = (address[0], int(address[1]))
        self.name = name
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.via_shm = via_shm
        self.shm_min_bytes = shm_min_bytes
        self._tls = threading.local()
        self._server_info: Dict[str, Any] = {}
        self._rng = random.Random()
        #: Every live socket across threads, so close() can reach them.
        self._socks_lock = threading.Lock()
        self._socks: set = set()

    # -- connection ------------------------------------------------------

    def _connect(self, deadline_at: Optional[float]) -> socket.socket:
        sock = getattr(self._tls, "sock", None)
        if sock is not None:
            return sock
        sock = socket.create_connection(
            self.address, timeout=self._attempt_budget(deadline_at)
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._tls.sock = sock
        self._tls.seq = getattr(self._tls, "seq", 0)
        with self._socks_lock:
            self._socks.add(sock)
        try:
            self._send_bytes(
                sock,
                encode_frame(
                    FrameType.HELLO,
                    {"client": self.name, "pid": os.getpid()},
                    seq=self._next_seq(),
                ),
            )
            ftype, meta, _body = self._recv_frame(sock, deadline_at)
            if ftype == FrameType.ERROR:
                raise error_from_meta(meta)
            if ftype != FrameType.WELCOME:
                raise FrameCorruptError(
                    f"expected WELCOME, got frame type {ftype}",
                    frame_type=ftype, detail="meta",
                )
            self._server_info = meta
        except BaseException:
            self._drop_connection()
            raise
        return sock

    def _next_seq(self) -> int:
        self._tls.seq = getattr(self._tls, "seq", 0) + 1
        return self._tls.seq

    def _drop_connection(self) -> None:
        sock = getattr(self._tls, "sock", None)
        self._tls.sock = None
        if sock is not None:
            with self._socks_lock:
                self._socks.discard(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover — teardown best effort
                pass

    def close(self) -> None:
        """Close every thread's connection (sockets are safe to close
        from another thread; an in-flight request fails typed)."""
        self._drop_connection()
        with self._socks_lock:
            socks, self._socks = self._socks, set()
        for sock in socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover — teardown best effort
                pass

    def __enter__(self) -> "SortClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- wire helpers ----------------------------------------------------

    def _attempt_budget(self, deadline_at: Optional[float]) -> float:
        """Socket budget for the next wire operation: the per-attempt
        timeout, clipped to the remaining deadline — a dropped reply
        costs one attempt, not the caller's whole budget."""
        if deadline_at is None:
            return self.timeout_s
        return max(1e-3, min(self.timeout_s, deadline_at - time.monotonic()))

    def _send_bytes(self, sock: socket.socket, data: bytes) -> None:
        sock.sendall(data)

    def _recv_exact(
        self, sock: socket.socket, n: int, deadline_at: Optional[float]
    ) -> bytes:
        chunks = []
        got = 0
        while got < n:
            sock.settimeout(self._attempt_budget(deadline_at))
            chunk = sock.recv(n - got)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _recv_frame(
        self, sock: socket.socket, deadline_at: Optional[float],
        tracer: Optional[Tracer] = None,
    ) -> Tuple[int, Dict[str, Any], bytes]:
        with trace_span(tracer, "wait", "inflight"):
            header = self._recv_exact(sock, HEADER_SIZE, deadline_at)
        ftype, _flags, _seq, meta_len, body_len, crc = parse_header(header)
        with trace_span(tracer, "transfer", "frame-recv"):
            payload = self._recv_exact(
                sock, meta_len + body_len, deadline_at
            )
        meta, body = validate_payload(ftype, payload, meta_len, crc)
        return ftype, meta, body

    # -- the RPCs --------------------------------------------------------

    def health(self, timeout_s: float = 5.0) -> Dict[str, Any]:
        """The server's health answer, or :class:`ShardUnavailableError`."""
        deadline_at = time.monotonic() + timeout_s
        try:
            sock = self._connect(deadline_at)
            self._send_bytes(
                sock,
                encode_frame(FrameType.HEALTH, {}, seq=self._next_seq()),
            )
            ftype, meta, _body = self._recv_frame(sock, deadline_at)
        except (OSError, ConnectionError, FrameCorruptError,
                TimeoutError) as exc:
            self._drop_connection()
            raise ShardUnavailableError(
                f"health check of {self.address} failed: {exc}",
                shards={self._shard_name(): "unreachable"},
                attempts=1,
            ) from exc
        if ftype == FrameType.ERROR:
            raise error_from_meta(meta)
        if ftype != FrameType.HEALTH_OK:
            self._drop_connection()
            raise ShardUnavailableError(
                f"health check of {self.address} answered frame type "
                f"{ftype}", shards={self._shard_name(): "confused"},
                attempts=1,
            )
        return meta

    def _shard_name(self) -> str:
        return self._server_info.get(
            "server", f"{self.address[0]}:{self.address[1]}"
        )

    def sort(
        self,
        keys: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
        tenant: Optional[str] = None,
        algorithm: Optional[str] = None,
        backend: Optional[str] = None,
        P: Optional[int] = None,
        fused: Optional[bool] = None,
        grouped: Optional[bool] = None,
        trace: bool = False,
    ) -> ClientOutcome:
        """Sort ``keys`` on the server; deadline-aware, retrying, typed.

        ``algorithm`` is ``"smart"``, ``"sample"`` or ``"auto"`` (server
        plans across algorithms); ``None`` omits the meta key, which a
        server of any protocol version reads as ``"smart"``.

        The request id is generated once, so every retry is idempotent.
        Wire failures (reset, timeout, corrupt frames) retry with
        jittered backoff inside the remaining budget; typed server
        verdicts (admission, timeout, configuration) raise immediately.
        """
        keys = np.ascontiguousarray(np.asarray(keys))
        rid = uuid.uuid4().hex
        started = time.monotonic()
        deadline_at = None if deadline_s is None else started + deadline_s
        tracer = Tracer(0) if trace else None
        shm_name: Optional[str] = None
        attempts = 0
        try:
            while True:
                attempts += 1
                if deadline_at is not None and (
                    time.monotonic() >= deadline_at
                ):
                    raise RequestTimeoutError(
                        f"request {rid} ran out of its "
                        f"{deadline_s}s budget after "
                        f"{attempts - 1} attempts",
                        deadline_s=deadline_s or 0.0,
                        elapsed_s=time.monotonic() - started,
                        stage="client",
                    )
                try:
                    outcome, shm_name = self._attempt_sort(
                        rid, keys, shm_name, deadline_at, tracer,
                        deadline_s=deadline_s, tenant=tenant,
                        algorithm=algorithm, backend=backend, P=P,
                        fused=fused, grouped=grouped,
                    )
                    outcome.attempts = attempts
                    outcome.wall_s = time.monotonic() - started
                    outcome.tracer = tracer
                    return outcome
                except RequestTimeoutError:
                    raise
                except (FrameCorruptError, ConnectionError,
                        TimeoutError, OSError) as exc:
                    self._drop_connection()
                    if attempts > self.retries:
                        if isinstance(exc, (TimeoutError,
                                            socket.timeout)):
                            raise RequestTimeoutError(
                                f"request {rid} timed out "
                                f"{attempts}x against "
                                f"{self.address}",
                                deadline_s=deadline_s or self.timeout_s,
                                elapsed_s=time.monotonic() - started,
                                stage="client",
                            ) from exc
                        raise ShardUnavailableError(
                            f"shard at {self.address} unreachable "
                            f"after {attempts} attempts: {exc}",
                            shards={
                                self._shard_name(): "unreachable"
                            },
                            attempts=attempts,
                        ) from exc
                    delay = _jittered(
                        self.backoff_s, self.backoff_max_s, attempts,
                        self._rng,
                    )
                    if deadline_at is not None:
                        delay = min(
                            delay,
                            max(0.0, deadline_at - time.monotonic()),
                        )
                    with trace_span(tracer, "retransmit", "retry"):
                        time.sleep(delay)
        finally:
            if shm_name is not None:
                try:
                    os.unlink(os.path.join(_SHM_DIR, shm_name))
                except OSError:
                    pass

    def _attempt_sort(
        self,
        rid: str,
        keys: np.ndarray,
        shm_name: Optional[str],
        deadline_at: Optional[float],
        tracer: Optional[Tracer],
        **opts: Any,
    ) -> Tuple[ClientOutcome, Optional[str]]:
        sock = self._connect(deadline_at)
        meta: Dict[str, Any] = {
            "id": rid,
            "dtype": str(keys.dtype.str),
            "shape": [int(keys.size)],
        }
        for key in ("tenant", "algorithm", "backend", "P", "fused",
                    "grouped"):
            if opts.get(key) is not None:
                meta[key] = opts[key]
        if deadline_at is not None:
            meta["budget_s"] = max(0.0, deadline_at - time.monotonic())
        use_shm = self._shm_eligible(keys)
        body = b""
        if use_shm:
            if shm_name is None:
                shm_name = f"{_SHM_PREFIX}{rid}"
                with trace_span(tracer, "pack", "shm-write"):
                    with open(os.path.join(_SHM_DIR, shm_name), "wb") as fh:
                        fh.write(keys.tobytes())
            meta["shm"] = shm_name
        else:
            with trace_span(tracer, "pack", "frame"):
                body = keys.tobytes()
        frame = encode_frame(FrameType.SORT, meta, body, seq=self._next_seq())
        with trace_span(tracer, "transfer", "frame-send"):
            self._send_bytes(sock, frame)
        while True:
            ftype, rmeta, rbody = self._recv_frame(
                sock, deadline_at, tracer
            )
            if rmeta.get("id") not in (None, rid):
                continue  # a stale (delayed) reply for an earlier attempt
            break
        if ftype == FrameType.ERROR:
            raise error_from_meta(rmeta)
        if ftype != FrameType.RESULT:
            raise FrameCorruptError(
                f"expected RESULT, got frame type {ftype}",
                frame_type=ftype, detail="meta",
            )
        dtype = np.dtype(rmeta.get("dtype", keys.dtype.str))
        if rmeta.get("shm"):
            with trace_span(tracer, "unpack", "shm-read"):
                with open(_shm_path(rmeta["shm"]), "rb") as fh:
                    out = np.frombuffer(fh.read(), dtype=dtype).copy()
        else:
            with trace_span(tracer, "unpack", "frame"):
                out = np.frombuffer(rbody, dtype=dtype).copy()
        if out.size != keys.size:
            raise FrameCorruptError(
                f"result carries {out.size} keys for a {keys.size}-key "
                "request", detail="truncated",
            )
        return (
            ClientOutcome(
                sorted_keys=out,
                request_id=rid,
                shard=rmeta.get("shard", self._shard_name()),
                via_shm=bool(rmeta.get("shm")),
                server=rmeta,
            ),
            shm_name,
        )

    def _shm_eligible(self, keys: np.ndarray) -> bool:
        if self.via_shm is False:
            return False
        if not os.path.isdir(_SHM_DIR):
            return False
        same_host = self._server_info.get("host_token") == host_token()
        if self.via_shm is True:
            return same_host
        return same_host and keys.nbytes >= self.shm_min_bytes
