"""Shard routing: spread requests across sort shards, survive dead ones.

A *shard* is anything with the two-call surface ``sort(keys, **opts) ->
ClientOutcome`` and ``health() -> dict`` — in practice a
:class:`~repro.service.net.SortClient` pointed at a remote
:class:`~repro.service.net.SortServer`, or a :class:`LocalShard` wrapping
an in-process :class:`~repro.service.SortService` (useful in tests and
mixed deployments).

:class:`ShardRouter` layers three behaviors on a pool of shards:

* **spreading** — each request goes to the healthy shard with the fewest
  requests in flight (ties broken round-robin), so one slow shard does
  not back up the fleet;
* **health checking + circuit breaking** — a background thread probes
  every shard's ``HEALTH`` RPC; ``eject_after`` consecutive failures
  (probe or request) trip the breaker and the shard sits out
  ``cooldown_s``, after which it is *half-open*: it may take one request,
  and a single further failure re-trips the breaker while a success
  closes it;
* **failover** — a request that dies on the wire (shard unreachable,
  connection reset, frames corrupted beyond the client's own retries) is
  re-sent to another shard, inside the caller's deadline.  Admission
  rejections also fail over (another shard may have queue room) but do
  **not** count against the shard's health — a full queue is load, not
  sickness.

Typed-outcome guarantee, same as everywhere in this package: a routed
request either returns a :class:`~repro.service.net.ClientOutcome` or
raises one of :class:`~repro.errors.RequestTimeoutError` (the caller's
budget died, ``stage="router"``), :class:`~repro.errors.AdmissionError`
(every live shard turned it away), or
:class:`~repro.errors.ShardUnavailableError` (no live shard, with a
per-shard status snapshot attached).  Nothing is lost silently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.errors import (
    AdmissionError,
    FrameCorruptError,
    RequestTimeoutError,
    ServiceClosedError,
    ShardUnavailableError,
)
from repro.service.net import ClientOutcome
from repro.trace.recorder import Tracer, trace_span

__all__ = ["LocalShard", "ShardRouter"]

#: Failures that mean "this shard, right now" rather than "this request":
#: they trigger failover to another shard and count against health.
_HARD_FAILURES = (
    ShardUnavailableError,
    FrameCorruptError,
    ConnectionError,
    OSError,
)


class LocalShard:
    """An in-process :class:`~repro.service.SortService` wearing the
    shard interface, so routers can mix local and remote capacity."""

    def __init__(self, service, name: str = "local0",
                 result_timeout: float = 120.0):
        self.service = service
        self.name = name
        self._result_timeout = result_timeout

    def sort(
        self,
        keys: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
        tenant: Optional[str] = None,
        algorithm: Optional[str] = None,
        backend: Optional[str] = None,
        P: Optional[int] = None,
        fused: Optional[bool] = None,
        grouped: Optional[bool] = None,
        trace: bool = False,
    ) -> ClientOutcome:
        started = time.monotonic()
        ticket = self.service.submit(
            np.asarray(keys),
            # The wire defaults an absent algorithm to "smart"; the local
            # shard mirrors that so mixed deployments behave alike.
            algorithm=(
                None if algorithm == "auto" else (algorithm or "smart")
            ),
            backend=backend,
            P=P,
            fused=fused,
            grouped=grouped,
            deadline_s=deadline_s,
            tenant=tenant or "default",
        )
        outcome = ticket.result(
            deadline_s if deadline_s is not None else self._result_timeout
        )
        return ClientOutcome(
            sorted_keys=outcome.sorted_keys,
            request_id=f"local-{outcome.request_id}",
            shard=self.name,
            wall_s=time.monotonic() - started,
            server={
                "shard": self.name,
                "algorithm": outcome.decision.algorithm,
                "backend": outcome.decision.backend,
                "P": outcome.decision.P,
                "queue_wait_s": outcome.queue_wait_s,
                "run_s": outcome.run_s,
                "batch_size": outcome.batch_size,
                "retries": outcome.retries,
            },
        )

    def health(self, timeout_s: float = 5.0) -> Dict[str, Any]:
        try:
            report = self.service.report()
        except Exception as exc:  # noqa: BLE001 — typed for the router
            raise ShardUnavailableError(
                f"local shard {self.name} cannot report: {exc}",
                shards={self.name: "unreachable"}, attempts=1,
            ) from exc
        return {
            "server": self.name,
            "healthy": True,
            "served": report.served,
            "failed": report.failed,
            "expired": report.expired,
        }


@dataclass
class _ShardState:
    shard: Any
    inflight: int = 0
    served: int = 0
    failed: int = 0
    consecutive_failures: int = 0
    #: Breaker: monotonic instant the shard may take a half-open probe.
    ejected_until: Optional[float] = None
    last_health: Optional[Dict[str, Any]] = None

    def available(self, now: float) -> bool:
        return self.ejected_until is None or now >= self.ejected_until

    def status(self, now: float) -> str:
        if self.ejected_until is None:
            return "healthy" if self.consecutive_failures == 0 else "shaky"
        return "half-open" if now >= self.ejected_until else "ejected"


class ShardRouter:
    """Health-checked, failover-capable routing over a shard pool.

    Parameters
    ----------
    shards:
        ``{name: shard}``; names label statuses and error snapshots.
    eject_after:
        Consecutive hard failures (requests or probes) that trip a
        shard's breaker.
    cooldown_s:
        How long a tripped shard sits out before its half-open probe.
    health_interval_s:
        Probe period for the background health thread (started by
        :meth:`start_health_checks`; routing works without it, learning
        about dead shards from request failures only).
    health_timeout_s:
        Per-probe budget.
    max_failovers:
        Cap on re-sends per request; ``None`` means "every other shard
        once".
    """

    def __init__(
        self,
        shards: Mapping[str, Any],
        *,
        eject_after: int = 3,
        cooldown_s: float = 2.0,
        health_interval_s: float = 0.5,
        health_timeout_s: float = 2.0,
        max_failovers: Optional[int] = None,
    ):
        if not shards:
            raise ShardUnavailableError(
                "a router needs at least one shard", shards={}, attempts=0
            )
        self._states: Dict[str, _ShardState] = {
            name: _ShardState(shard=shard)
            for name, shard in shards.items()
        }
        self.eject_after = eject_after
        self.cooldown_s = cooldown_s
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.max_failovers = max_failovers
        self._lock = threading.Lock()
        self._rr = 0
        self._closed = False
        self._health_thread: Optional[threading.Thread] = None
        self._health_stop = threading.Event()
        #: Totals across the router's lifetime.
        self.routed = 0
        self.failovers = 0

    # -- lifecycle -------------------------------------------------------

    def start_health_checks(self) -> None:
        """Start the background prober (idempotent)."""
        if self._health_thread is not None:
            return
        self._health_stop.clear()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="shard-router-health",
            daemon=True,
        )
        self._health_thread.start()

    def close(self) -> None:
        """Stop probing.  Shards are not owned and stay open."""
        self._closed = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10.0)
            self._health_thread = None

    def __enter__(self) -> "ShardRouter":
        self.start_health_checks()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- health ----------------------------------------------------------

    def _health_loop(self) -> None:
        while not self._health_stop.wait(self.health_interval_s):
            self.check_health()

    def check_health(self) -> Dict[str, bool]:
        """Probe every shard once; returns ``{name: probe_ok}``."""
        results: Dict[str, bool] = {}
        for name, st in list(self._states.items()):
            try:
                answer = st.shard.health(timeout_s=self.health_timeout_s)
            except Exception:  # noqa: BLE001 — any probe failure counts
                self._record_failure(name)
                results[name] = False
            else:
                with self._lock:
                    st.last_health = answer
                self._record_success(name)
                results[name] = True
        return results

    def status(self) -> Dict[str, Dict[str, Any]]:
        """Per-shard routing view: breaker state, load, counters."""
        now = time.monotonic()
        with self._lock:
            return {
                name: {
                    "state": st.status(now),
                    "inflight": st.inflight,
                    "served": st.served,
                    "failed": st.failed,
                    "consecutive_failures": st.consecutive_failures,
                    "last_health": st.last_health,
                }
                for name, st in self._states.items()
            }

    def _status_summary(self) -> Dict[str, str]:
        now = time.monotonic()
        with self._lock:
            return {
                name: st.status(now) for name, st in self._states.items()
            }

    # -- breaker bookkeeping ---------------------------------------------

    def _record_success(self, name: str) -> None:
        with self._lock:
            st = self._states[name]
            st.consecutive_failures = 0
            st.ejected_until = None

    def _record_failure(self, name: str) -> None:
        with self._lock:
            st = self._states[name]
            st.consecutive_failures += 1
            if st.consecutive_failures >= self.eject_after:
                st.ejected_until = time.monotonic() + self.cooldown_s

    # -- routing ---------------------------------------------------------

    def _pick(self, exclude: set) -> Optional[str]:
        """Least-loaded available shard, round-robin among ties."""
        now = time.monotonic()
        with self._lock:
            names = [
                name for name, st in self._states.items()
                if name not in exclude and st.available(now)
            ]
            if not names:
                return None
            lightest = min(self._states[n].inflight for n in names)
            ties = [
                n for n in names if self._states[n].inflight == lightest
            ]
            self._rr += 1
            choice = ties[self._rr % len(ties)]
            self._states[choice].inflight += 1
            return choice

    def sort(
        self,
        keys: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
        tenant: Optional[str] = None,
        algorithm: Optional[str] = None,
        backend: Optional[str] = None,
        P: Optional[int] = None,
        fused: Optional[bool] = None,
        grouped: Optional[bool] = None,
        trace: bool = False,
    ) -> ClientOutcome:
        """Sort via the pool, failing over across shards inside the
        caller's deadline.  See the module docstring for the typed-outcome
        guarantee."""
        if self._closed:
            raise ServiceClosedError("router is closed")
        started = time.monotonic()
        deadline_at = None if deadline_s is None else started + deadline_s
        tracer = Tracer(0) if trace else None
        budget = self.max_failovers
        if budget is None:
            budget = len(self._states) - 1
        tried: set = set()
        failovers = 0
        hard_failures = 0
        last_exc: Optional[BaseException] = None
        while True:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                raise RequestTimeoutError(
                    f"request budget ({deadline_s}s) spent after "
                    f"{failovers} failover(s)",
                    deadline_s=deadline_s or 0.0,
                    elapsed_s=time.monotonic() - started,
                    stage="router",
                )
            name = self._pick(tried)
            if name is None:
                break
            st = self._states[name]
            remaining = (
                None if deadline_at is None
                else max(1e-3, deadline_at - time.monotonic())
            )
            try:
                out = st.shard.sort(
                    keys,
                    deadline_s=remaining,
                    tenant=tenant,
                    algorithm=algorithm,
                    backend=backend,
                    P=P,
                    fused=fused,
                    grouped=grouped,
                    trace=trace,
                )
            except RequestTimeoutError:
                # The budget is the caller's, not the shard's: re-sending
                # elsewhere cannot conjure time back.
                with self._lock:
                    st.inflight -= 1
                raise
            except _HARD_FAILURES as exc:
                with self._lock:
                    st.inflight -= 1
                    st.failed += 1
                self._record_failure(name)
                hard_failures += 1
                last_exc = exc
            except AdmissionError as exc:
                # Load, not sickness: no health penalty, but do try a
                # different shard — its queue may have room.
                with self._lock:
                    st.inflight -= 1
                last_exc = exc
            except BaseException:
                with self._lock:
                    st.inflight -= 1
                    st.failed += 1
                raise
            else:
                with self._lock:
                    st.inflight -= 1
                    st.served += 1
                    self.routed += 1
                self._record_success(name)
                out.failovers = failovers
                if tracer is not None and out.tracer is not None:
                    # Fold the shard-level spans under the router tracer
                    # so one request reads as one timeline.
                    tracer.spans.extend(out.tracer.spans)
                out.tracer = tracer if tracer is not None else out.tracer
                return out
            tried.add(name)
            if failovers >= budget:
                break
            failovers += 1
            with self._lock:
                self.failovers += 1
            with trace_span(tracer, "retransmit", "failover"):
                pass  # the next loop iteration is the failover itself
        if isinstance(last_exc, AdmissionError) and hard_failures == 0:
            raise last_exc
        raise ShardUnavailableError(
            f"no shard could serve the request ({failovers} failover(s), "
            f"{hard_failures} hard failure(s))",
            shards=self._status_summary(),
            attempts=failovers + 1,
        ) from last_exc
