"""The warm world pool.

Keeps spawned SPMD worlds alive between requests, keyed by
``(backend, P)``.  Acquire hands out a healthy idle world (spawning one
when none is idle), release returns it — or replaces it when a job
killed it (crash-replacement reuses the runtime's dead-rank detection:
a dead world simply reports unhealthy and is closed here).  Idle worlds
beyond ``idle_ttl_s`` are reaped opportunistically on every release, so
a burst of odd-shaped requests does not pin processes forever.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.driver import BackendOptions, spawn_world
from repro.runtime.world import World

__all__ = ["WorldPool"]


class WorldPool:
    """A keyed pool of warm SPMD worlds.

    Parameters
    ----------
    max_idle_per_key:
        How many idle worlds to retain per ``(backend, P)`` shape; a
        released world beyond this is closed instead of cached.
    idle_ttl_s:
        Idle worlds older than this are reaped on the next release.
    options:
        Launch tuning (``arena_bytes``) for spawned procs worlds.
    """

    def __init__(
        self,
        max_idle_per_key: int = 2,
        idle_ttl_s: float = 120.0,
        options: Optional[BackendOptions] = None,
    ):
        if max_idle_per_key < 1:
            raise ConfigurationError(
                f"max_idle_per_key must be >= 1, got {max_idle_per_key}"
            )
        self._max_idle = max_idle_per_key
        self._ttl = idle_ttl_s
        self._options = options
        self._lock = threading.Lock()
        #: (backend, P) -> idle worlds with their release timestamps.
        self._idle: Dict[Tuple[str, int], Deque[Tuple[World, float]]] = {}
        self._closed = False
        #: Lifetime counters, surfaced in ServiceReport.
        self.spawned = 0
        self.reused = 0
        self.restarts = 0  # dead worlds replaced
        self.reaped = 0  # idle worlds expired

    # -- acquire / release ---------------------------------------------

    def acquire(self, backend: str, P: int) -> World:
        """A healthy world of the requested shape: warm if one is idle,
        freshly spawned otherwise.  Unhealthy idle worlds found on the
        way are closed and counted as restarts."""
        while True:
            with self._lock:
                if self._closed:
                    raise ConfigurationError("pool is closed")
                bucket = self._idle.get((backend, P))
                entry = bucket.popleft() if bucket else None
            if entry is None:
                with self._lock:
                    self.spawned += 1
                return spawn_world(P, backend=backend, options=self._options)
            world, _ = entry
            if world.healthy():
                with self._lock:
                    self.reused += 1
                return world
            # Crash-replacement: the previous job killed it after release
            # (or a rank died while idle) — close and look again.
            with self._lock:
                self.restarts += 1
            world.close()

    def release(self, world: World) -> None:
        """Return a world after a job.  Dead worlds are closed (counted
        as restarts — their replacement is the next acquire's spawn);
        healthy ones go back on the shelf, then the shelf is reaped."""
        if not world.healthy():
            with self._lock:
                self.restarts += 1
            world.close()
        else:
            key = (world.backend, world.size)
            overflow = None
            with self._lock:
                if self._closed:
                    overflow = world
                else:
                    bucket = self._idle.setdefault(key, deque())
                    bucket.append((world, time.monotonic()))
                    if len(bucket) > self._max_idle:
                        overflow = bucket.popleft()[0]
            if overflow is not None:
                overflow.close()
        self._reap()

    def prewarm(self, backend: str, P: int, count: int = 1) -> None:
        """Spawn ``count`` idle worlds of a shape ahead of traffic."""
        for _ in range(count):
            worlds = spawn_world(P, backend=backend, options=self._options)
            with self._lock:
                self.spawned += 1
                self._idle.setdefault((backend, P), deque()).append(
                    (worlds, time.monotonic())
                )

    def _reap(self) -> None:
        """Close idle worlds past their TTL (opportunistic, on release)."""
        horizon = time.monotonic() - self._ttl
        doomed = []
        with self._lock:
            for bucket in self._idle.values():
                while bucket and bucket[0][1] < horizon:
                    doomed.append(bucket.popleft()[0])
            self.reaped += len(doomed)
        for world in doomed:
            world.close()

    # -- lifecycle ------------------------------------------------------

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._idle.values())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spawned": self.spawned,
                "reused": self.reused,
                "restarts": self.restarts,
                "reaped": self.reaped,
                "idle": sum(len(b) for b in self._idle.values()),
            }

    def close(self) -> None:
        """Close every idle world.  Worlds currently acquired are the
        borrowers' to close (release after close closes them here)."""
        with self._lock:
            self._closed = True
            doomed = [w for b in self._idle.values() for w, _ in b]
            self._idle.clear()
        for world in doomed:
            world.close()

    def __enter__(self) -> "WorldPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
