"""The warm world pool.

Keeps spawned SPMD worlds alive between requests, keyed by
``(backend, P)``.  Acquire hands out a healthy idle world (spawning one
when none is idle), release returns it — or replaces it when a job
killed it (crash-replacement reuses the runtime's dead-rank detection:
a dead world simply reports unhealthy and is closed here).  Idle worlds
beyond ``idle_ttl_s`` are reaped on every acquire and release *and* from
the pool's background tick, so TTL binds even for a service that goes
fully idle.

With ``autoscale=True`` the pool also scales itself from queue
pressure: the service reports every planned arrival via
:meth:`note_arrival`, the tick thread compares per-key backlog (arrivals
not yet matched by an acquire) against the idle shelf, and — with
hysteresis, so one burst or one quiet tick never thrashes —
**pre-spawns** worlds ahead of demand (hiding world spawn latency from
the requests about to need them) or **shrinks** the shelf below
``max_idle_per_key`` when a shape has gone quiet.  Scaling decisions are
counted (``scaled_up`` / ``scaled_down`` in :meth:`stats`) and exported
as trace counters (``pool.scale_up`` / ``pool.scale_down``) when a
:class:`~repro.trace.recorder.Tracer` is attached.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.driver import BackendOptions, spawn_world
from repro.runtime.world import World

__all__ = ["WorldPool"]


@dataclass
class _KeyDemand:
    """Per-``(backend, P)`` queue pressure the autoscaler acts on."""

    #: Arrivals noted but not yet matched by an acquire — the backlog.
    pending: int = 0
    #: EWMA of the arrival rate (requests/s), for observability.
    rate_hz: float = 0.0
    last_arrival_s: Optional[float] = None
    #: Hysteresis counters: consecutive ticks of backlog / of quiet.
    hot_ticks: int = 0
    quiet_ticks: int = 0


class WorldPool:
    """A keyed pool of warm SPMD worlds.

    Parameters
    ----------
    max_idle_per_key:
        How many idle worlds to retain per ``(backend, P)`` shape; a
        released world beyond this is closed instead of cached.
    idle_ttl_s:
        Idle worlds older than this are reaped on the next acquire,
        release, or background tick.
    options:
        Launch tuning (``arena_bytes``) for spawned procs worlds.
    autoscale:
        Enable queue-driven scaling from the background tick.  Off by
        default — a pool used directly (no service feeding
        :meth:`note_arrival`) has no queue signal to act on.
    tick_interval_s:
        Background tick period (TTL sweep always; scaling when enabled).
    scale_up_after / scale_down_after:
        Hysteresis: how many *consecutive* ticks a key must show backlog
        (resp. be quiet with idle worlds) before the pool spawns
        (resp. closes one idle world per further tick).
    max_worlds_per_key:
        Hard cap on live worlds per shape the autoscaler may reach.
    tracer:
        Optional :class:`~repro.trace.recorder.Tracer` receiving
        ``pool.scale_up`` / ``pool.scale_down`` counter increments.
    """

    def __init__(
        self,
        max_idle_per_key: int = 2,
        idle_ttl_s: float = 120.0,
        options: Optional[BackendOptions] = None,
        autoscale: bool = False,
        tick_interval_s: float = 1.0,
        scale_up_after: int = 2,
        scale_down_after: int = 5,
        max_worlds_per_key: int = 4,
        tracer: Optional[Any] = None,
    ):
        if max_idle_per_key < 1:
            raise ConfigurationError(
                f"max_idle_per_key must be >= 1, got {max_idle_per_key}"
            )
        if scale_up_after < 1 or scale_down_after < 1:
            raise ConfigurationError(
                "scale_up_after and scale_down_after must be >= 1"
            )
        if max_worlds_per_key < 1:
            raise ConfigurationError(
                f"max_worlds_per_key must be >= 1, got {max_worlds_per_key}"
            )
        self._max_idle = max_idle_per_key
        self._ttl = idle_ttl_s
        self._options = options
        self._lock = threading.Lock()
        #: (backend, P) -> idle worlds with their release timestamps.
        self._idle: Dict[Tuple[str, int], Deque[Tuple[World, float]]] = {}
        #: (backend, P) -> live worlds of that shape (idle + borrowed).
        self._live: Dict[Tuple[str, int], int] = {}
        self._demand: Dict[Tuple[str, int], _KeyDemand] = {}
        self._closed = False
        self.autoscale = autoscale
        self._max_worlds = max_worlds_per_key
        self._up_after = scale_up_after
        self._down_after = scale_down_after
        self.tracer = tracer
        #: Lifetime counters, surfaced in ServiceReport.
        self.spawned = 0
        self.reused = 0
        self.restarts = 0  # dead worlds replaced
        self.reaped = 0  # idle worlds expired
        self.scaled_up = 0  # worlds pre-spawned by the autoscaler
        self.scaled_down = 0  # idle worlds shrunk by the autoscaler
        self._tick_interval = tick_interval_s
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        if tick_interval_s > 0:
            self._ticker = threading.Thread(
                target=self._tick_loop, name="worldpool-tick", daemon=True
            )
            self._ticker.start()

    # -- acquire / release ---------------------------------------------

    def acquire(self, backend: str, P: int) -> World:
        """A healthy world of the requested shape: warm if one is idle,
        freshly spawned otherwise.  Unhealthy idle worlds found on the
        way are closed and counted as restarts."""
        self._reap()
        key = (backend, P)
        while True:
            with self._lock:
                if self._closed:
                    raise ConfigurationError("pool is closed")
                bucket = self._idle.get(key)
                entry = bucket.popleft() if bucket else None
            if entry is None:
                with self._lock:
                    self.spawned += 1
                    self._live[key] = self._live.get(key, 0) + 1
                try:
                    return spawn_world(P, backend=backend, options=self._options)
                except BaseException:
                    with self._lock:
                        self._live[key] = max(0, self._live.get(key, 0) - 1)
                    raise
            world, _ = entry
            if world.healthy():
                with self._lock:
                    self.reused += 1
                return world
            # Crash-replacement: the previous job killed it after release
            # (or a rank died while idle) — close and look again.
            with self._lock:
                self.restarts += 1
            self._close_world(world)

    def release(self, world: World) -> None:
        """Return a world after a job.  Dead worlds are closed (counted
        as restarts — their replacement is the next acquire's spawn);
        healthy ones go back on the shelf, then the shelf is reaped."""
        if not world.healthy():
            with self._lock:
                self.restarts += 1
            self._close_world(world)
        else:
            key = (world.backend, world.size)
            overflow = None
            with self._lock:
                if self._closed:
                    overflow = world
                else:
                    bucket = self._idle.setdefault(key, deque())
                    bucket.append((world, time.monotonic()))
                    if len(bucket) > self._max_idle:
                        overflow = bucket.popleft()[0]
            if overflow is not None:
                self._close_world(overflow)
        self._reap()

    def prewarm(self, backend: str, P: int, count: int = 1) -> None:
        """Spawn ``count`` idle worlds of a shape ahead of traffic."""
        for _ in range(count):
            world = spawn_world(P, backend=backend, options=self._options)
            with self._lock:
                self.spawned += 1
                key = (backend, P)
                self._live[key] = self._live.get(key, 0) + 1
                self._idle.setdefault(key, deque()).append(
                    (world, time.monotonic())
                )

    # -- the queue signal ----------------------------------------------

    def note_arrival(self, backend: str, P: int) -> None:
        """Record one planned request headed for ``(backend, P)`` — the
        queue-pressure signal the autoscaler prespawns from.  Called by
        the service at submit time, *before* the dispatcher acquires."""
        now = time.monotonic()
        with self._lock:
            demand = self._demand.setdefault((backend, P), _KeyDemand())
            demand.pending += 1
            if demand.last_arrival_s is not None:
                dt = max(1e-6, now - demand.last_arrival_s)
                # EWMA of the instantaneous rate; alpha 0.3 matches the
                # adapter's gain — a few arrivals set the level.
                demand.rate_hz += 0.3 * (1.0 / dt - demand.rate_hz)
            demand.last_arrival_s = now

    def note_done(self, backend: str, P: int, count: int = 1) -> None:
        """Drain ``count`` noted arrivals — the service calls this when a
        dispatch takes requests off its queue (served, expired, or
        failed alike: they no longer exert queue pressure)."""
        with self._lock:
            demand = self._demand.get((backend, P))
            if demand is not None:
                demand.pending = max(0, demand.pending - count)

    def _reap(self) -> None:
        """Close idle worlds past their TTL."""
        horizon = time.monotonic() - self._ttl
        doomed = []
        with self._lock:
            for key, bucket in self._idle.items():
                while bucket and bucket[0][1] < horizon:
                    doomed.append(bucket.popleft()[0])
            self.reaped += len(doomed)
        for world in doomed:
            self._close_world(world)

    # -- the background tick -------------------------------------------

    def _tick_loop(self) -> None:
        while not self._stop.wait(self._tick_interval):
            try:
                self._reap()
                if self.autoscale:
                    self._autoscale_tick()
            except Exception:  # pragma: no cover — a tick must never kill
                pass  # the thread; the next tick retries.

    def _autoscale_tick(self) -> None:
        """One scaling decision per key, from queue pressure vs the idle
        shelf.  Callable directly (tests; deterministic replays) — the
        background thread calls it every ``tick_interval_s``.

        Hysteresis: a key must show backlog for ``scale_up_after``
        consecutive ticks before worlds are pre-spawned (then the
        counter resets — a fresh burst must rebuild it), and must be
        quiet for ``scale_down_after`` consecutive ticks before the
        shelf shrinks by one world per further tick."""
        ups: Dict[Tuple[str, int], int] = {}
        downs = []
        with self._lock:
            if self._closed:
                return
            for key, demand in self._demand.items():
                idle = len(self._idle.get(key, ()))
                backlog = demand.pending - idle
                if backlog > 0:
                    demand.quiet_ticks = 0
                    demand.hot_ticks += 1
                    if demand.hot_ticks >= self._up_after:
                        live = self._live.get(key, 0)
                        count = min(backlog, self._max_worlds - live)
                        if count > 0:
                            ups[key] = count
                        demand.hot_ticks = 0
                elif demand.pending == 0 and idle > 0:
                    demand.hot_ticks = 0
                    demand.quiet_ticks += 1
                    if demand.quiet_ticks >= self._down_after:
                        downs.append(self._idle[key].popleft()[0])
                else:
                    demand.hot_ticks = 0
                    demand.quiet_ticks = 0
            self.scaled_down += len(downs)
        for world in downs:
            self._close_world(world)
        if downs and self.tracer is not None:
            self.tracer.add("pool.scale_down", len(downs))
        for (backend, P), count in ups.items():
            try:
                self.prewarm(backend, P, count)
            except Exception:  # pragma: no cover — spawn failure must not
                continue  # kill the tick; acquire will surface it.
            with self._lock:
                self.scaled_up += count
            if self.tracer is not None:
                self.tracer.add("pool.scale_up", count)

    # -- lifecycle ------------------------------------------------------

    def _close_world(self, world: World) -> None:
        key = (world.backend, world.size)
        with self._lock:
            self._live[key] = max(0, self._live.get(key, 0) - 1)
        world.close()

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._idle.values())

    def live_count(self, backend: str, P: int) -> int:
        """Live worlds (idle + borrowed) of one shape."""
        with self._lock:
            return self._live.get((backend, P), 0)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "spawned": self.spawned,
                "reused": self.reused,
                "restarts": self.restarts,
                "reaped": self.reaped,
                "scaled_up": self.scaled_up,
                "scaled_down": self.scaled_down,
                "idle": sum(len(b) for b in self._idle.values()),
                "demand": {
                    f"{b}x{p}": {
                        "pending": d.pending,
                        "rate_hz": round(d.rate_hz, 3),
                    }
                    for (b, p), d in sorted(self._demand.items())
                },
            }

    def close(self) -> None:
        """Close every idle world and stop the background tick.  Worlds
        currently acquired are the borrowers' to close (release after
        close closes them here)."""
        self._stop.set()
        if self._ticker is not None and self._ticker is not threading.current_thread():
            self._ticker.join(timeout=5.0)
        with self._lock:
            self._closed = True
            doomed = [w for b in self._idle.values() for w, _ in b]
            self._idle.clear()
        for world in doomed:
            self._close_world(world)

    def __enter__(self) -> "WorldPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
