"""Module-level job functions shipped to warm worlds.

Jobs dispatched to a warm :class:`~repro.runtime.procs.ProcWorld` travel
a pipe to the resident rank processes, so they must be picklable —
module-level functions here, never closures (the one-shot
:func:`~repro.runtime.procs.run_spmd_procs` keeps closure support by
riding along at fork instead).  Per-request data (this rank's shards)
arrives via ``world.run``'s ``rank_args``, so each rank receives only
its own slice of each request.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.bitonic_spmd import spmd_bitonic_sort
from repro.runtime.sample_spmd import spmd_sample_sort
from repro.trace.recorder import Tracer

__all__ = ["sort_shards_job", "noop_job", "echo_nbytes_job", "pingpong_job"]


def sort_shards_job(
    comm,
    shards: Sequence[np.ndarray],
    fused: bool,
    grouped: bool,
    trace: bool,
    injector: Optional[Any] = None,
    overlap: bool = False,
    chunks: int = 4,
    algorithm: str = "smart",
) -> Tuple[List[np.ndarray], List[Optional[Tracer]]]:
    """Run one batch of same-shape sort requests back to back.

    ``shards[i]`` is *this rank's* partition of request ``i``.  Returns
    the rank's output partitions and (when ``trace``) one
    :class:`Tracer` per request, so the service can surface per-request
    spans rather than one blurred batch.  ``injector`` (threads backend
    only — it needs one address space) wraps the comm in the
    fault-tolerant transport for the whole batch; the wrapped comm is
    not :attr:`~repro.runtime.api.Comm.overlap_capable`, so an armed
    injector transparently forces the synchronous schedule even when
    ``overlap`` is requested.  ``algorithm`` picks the SPMD sort:
    ``"smart"`` bitonic (honours the schedule flags) or ``"sample"``
    (one splitter-driven redistribution; the flags do not apply).
    """
    base = comm
    if injector is not None:
        from repro.faults.transport import ReliableComm

        comm = ReliableComm(base, injector)
    outs: List[np.ndarray] = []
    tracers: List[Optional[Tracer]] = []
    for shard in shards:
        tracer = Tracer(base.rank) if trace else None
        base.tracer = tracer
        if algorithm == "sample":
            outs.append(spmd_sample_sort(comm, shard))
        else:
            outs.append(
                spmd_bitonic_sort(
                    comm, shard, fused=fused, grouped=grouped,
                    overlap=overlap, chunks=chunks,
                )
            )
        base.tracer = None
        tracers.append(tracer)
    return outs, tracers


# -- calibration jobs (scripts/calibrate_loggp.py) -------------------------


def noop_job(comm) -> int:
    """Measures pure job dispatch/collect overhead on a warm world."""
    return comm.rank


def echo_nbytes_job(comm, payload: np.ndarray) -> int:
    """Measures shard-shipping cost: the payload crosses the job pipe,
    the job itself does nothing with it."""
    return int(payload.nbytes)


def pingpong_job(comm, nbytes: int, rounds: int) -> float:
    """Mean seconds per sendrecv round of an ``nbytes`` payload between
    the ranks of a 2-rank world; used to fit the backend's ``o`` and
    ``G``.  Run it on worlds of exactly 2 ranks — on the procs backend
    ``sendrecv`` is a matched world-wide step, so a bystander rank
    sitting it out would deadlock the world."""
    if comm.size != 2:
        return 0.0
    payload = np.zeros(max(nbytes // 4, 1), dtype=np.uint32)
    peer = 1 - comm.rank
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(rounds):
        comm.sendrecv(payload, dst=peer, src=peer)
    elapsed = time.perf_counter() - t0
    comm.barrier()
    return elapsed / rounds
