"""The LogGP-driven request planner.

Given a request's ``(N, dtype, faults)`` the planner chooses the cheapest
execution: **algorithm** (smart bitonic vs sample sort — the Figure
5.7/5.8 crossover, priced live), backend (threads vs procs), world size
``P``, and the fused/grouped communication flags — using the paper's
closed forms priced with the host's calibrated
:class:`~repro.service.profile.HostProfile`, optionally biased by
measured bench history (``BENCH_pr*.json``).  This mirrors how
engineered distributed sorters pick algorithms from machine parameters
instead of hardcoding one.

Every choice has a **forced-override escape hatch**: pass
``algorithm=``, ``backend=``, ``P=``, ``fused=``, ``grouped=``,
``overlap=`` or ``chunks=`` to :meth:`Planner.plan` and the planner
optimizes only the remaining free dimensions.

One choice is a *safety clamp*, not an optimization: a request with an
armed fault plan runs on the threads backend (the injector needs one
address space) with ``fused=False`` / ``grouped=False`` — the
:class:`~repro.faults.transport.ReliableComm` wrapper cannot fuse, and
while the :class:`~repro.runtime.api.Comm` ABC would fall back
transparently, the planner must never *select* a configuration it knows
will fall back.  The clamp beats a forced override and is pinned by a
property test.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.service.adapt import RequestAdapter
from repro.service.profile import HostProfile

__all__ = ["PlanDecision", "Planner", "BenchHistory", "EXTERNAL_BACKEND"]

#: Candidate world sizes considered when ``P`` is not forced.
_DEFAULT_CANDIDATE_P = (1, 2, 4, 8)

#: Algorithms the planner prices against each other when ``algorithm``
#: is not forced: the two the SPMD runtime implements in memory, plus
#: the out-of-core external sort (auto-considered only once the profile
#: carries measured disk evidence; always available forced or
#: budget-degraded).
PLANNABLE_ALGORITHMS = ("smart", "sample", "external")

#: The in-memory subset — what competes when the profile has no disk
#: evidence and no budget forces the request out of core.
_INMEM_ALGORITHMS = ("smart", "sample")

#: The external regime's pseudo-backend name: the request runs
#: in-process on the serving host, not on an SPMD world — the world
#: pool must never try to spawn it.
EXTERNAL_BACKEND = "local"


@dataclass(frozen=True)
class PlanDecision:
    """One request's chosen execution and why.

    ``est_seconds`` is the model's estimate for the chosen config;
    ``candidates`` maps every considered ``(backend, P)`` to its
    estimate, so callers (and the decision table in SERVING.md) can see
    the margins.  ``clamped`` is True when fault safety or the memory
    budget overrode a request's own flags; ``source`` records what the
    choice rode on (``"model"``, ``"history"``, ``"adapted"``,
    ``"forced"`` or ``"budget"`` — the last meaning the memory budget
    degraded the request to the out-of-core external sort).
    """

    backend: str
    P: int
    algorithm: str
    fused: bool
    grouped: bool
    est_seconds: float
    #: Run the remaps as the chunked nonblocking pipeline.  Chosen only
    #: when the profile/history says hiding transfer wait beats the
    #: pipeline's per-chunk overhead (or when forced); fault clamps force
    #: it off — the fault transport is not overlap-capable.
    overlap: bool = False
    chunks: int = 4
    clamped: bool = False
    source: str = "model"
    candidates: Dict[str, float] = field(default_factory=dict)
    #: The same candidates priced by the *static* model (profile + bench
    #: history, no live corrections).  Empty unless an online
    #: :class:`~repro.service.adapt.RequestAdapter` repriced the table —
    #: then ``candidates`` holds the adapted estimates the choice rode on
    #: and this column shows what the frozen model believed, side by side
    #: in :meth:`explain`.
    static_candidates: Dict[str, float] = field(default_factory=dict)

    def explain(self) -> str:
        ranked = sorted(self.candidates.items(), key=lambda kv: kv[1])
        chosen = (
            ("" if self.algorithm == "smart" else f"{self.algorithm}:")
            + f"{self.backend}x{self.P}"
            + ("+ov" if self.overlap else "")
        )
        lines = [
            f"plan: {self.algorithm} on {self.backend} x {self.P}, "
            f"fused={self.fused} grouped={self.grouped} "
            f"overlap={self.overlap}"
            + (f" chunks={self.chunks}" if self.overlap else "")
            + f" (~{self.est_seconds * 1e3:.1f} ms, source={self.source}"
            + (
                ", budget-clamped"
                if self.clamped and self.source == "budget"
                else ", fault-clamped" if self.clamped else ""
            )
            + ")"
        ]
        if self.static_candidates:
            lines.append(
                f"    {'candidate':<18} {'static':>11}  {'adapted':>11}"
            )
            for name, est in ranked:
                marker = "*" if name == chosen else " "
                static = self.static_candidates.get(name)
                static_txt = (
                    "-" if static is None else f"{static * 1e3:8.2f} ms"
                )
                lines.append(
                    f"  {marker} {name:<18} {static_txt:>11}  "
                    f"{est * 1e3:8.2f} ms"
                )
        else:
            for name, est in ranked:
                marker = "*" if name == chosen else " "
                lines.append(f"  {marker} {name:<18} ~{est * 1e3:8.2f} ms")
        return "\n".join(lines)


class BenchHistory:
    """Measured end-to-end latencies from committed bench trajectories.

    Loads the ``end_to_end`` records of ``BENCH_pr*.json`` files (schema
    ``repro-bitonic-bench/2+``) and answers "what did backend X actually
    cost near N keys on this host" — the empirical correction on top of
    the closed forms.
    """

    def __init__(self, records: Sequence[Dict[str, Any]] = ()):
        self._records = [
            r for r in records
            if "backend" in r and "keys" in r and "best_s" in r
        ]

    @classmethod
    def load(cls, paths: Optional[Sequence[str]] = None) -> "BenchHistory":
        """Load from explicit paths, or from ``BENCH_pr*.json`` in the
        current directory when none are given.  Unreadable files are
        skipped — history is a bias, never a requirement."""
        if paths is None:
            paths = sorted(glob.glob("BENCH_pr*.json"))
        records: List[Dict[str, Any]] = []
        for path in paths:
            if not os.path.exists(path):
                continue
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                records.extend(doc.get("end_to_end", []))
            except (OSError, ValueError):
                continue
        return cls(records)

    def __len__(self) -> int:
        return len(self._records)

    def best(
        self, backend: str, N: int, algorithm: str = "smart"
    ) -> Optional[Tuple[float, int]]:
        """Best measured ``(seconds, keys)`` for ``backend`` running
        ``algorithm`` at the record size nearest ``N`` (within a factor
        of 4), fused variant preferred implicitly by taking the minimum.
        Records predating the algorithm field (schema < 6) are bitonic
        trajectories and count as ``"smart"``."""
        nearby = [
            r for r in self._records
            if r["backend"] == backend
            and r.get("algorithm", "smart") == algorithm
            and N / 4 <= r["keys"] <= N * 4
        ]
        if not nearby:
            return None
        r = min(nearby, key=lambda r: (abs(r["keys"] - N), r["best_s"]))
        best = min(
            x["best_s"] for x in nearby if x["keys"] == r["keys"]
        )
        return best, int(r["keys"])

    def overlap_efficiency(self, backend: str) -> Optional[float]:
        """Measured overlap payoff for ``backend``, as the fraction of
        end-to-end time the overlapped variant shaved off its synchronous
        counterpart at the same size — ``max(1 - overlap/sync)`` over the
        sizes benched both ways, clamped to [0, 1].  Because transfer is
        at most the whole run, this end-to-end fraction is a conservative
        stand-in for the hidden-transfer fraction
        :attr:`~repro.service.profile.HostProfile.overlap_efficiency`
        prices with.  ``None`` when no size was benched both ways (the
        planner then never chooses overlap on its own)."""
        by_size: Dict[int, Dict[bool, float]] = {}
        for r in self._records:
            if r["backend"] != backend:
                continue
            ov = bool(r.get("overlap", False))
            d = by_size.setdefault(int(r["keys"]), {})
            d[ov] = min(d.get(ov, float("inf")), float(r["best_s"]))
        gains = [
            1.0 - pair[True] / pair[False]
            for pair in by_size.values()
            if True in pair and False in pair and pair[False] > 0
        ]
        if not gains:
            return None
        return min(max(max(gains), 0.0), 1.0)


class Planner:
    """Choose (backend, P, flags) per request from the host profile.

    ``backends`` restricts which SPMD backends may be chosen;
    ``candidate_P`` the world sizes considered.  ``history`` supplies
    measured latencies used to scale the model's per-backend estimates
    (estimate × measured/modeled at the nearest benched size).
    ``adapter`` closes the online feedback loop: when a
    :class:`~repro.service.adapt.RequestAdapter` is attached, ``plan()``
    reprices every candidate with its live correction factors and
    measured overlap efficiency (unless the caller passes
    ``adapt=False`` or the fault clamp engages — those paths stay
    byte-identical to the static planner).
    """

    def __init__(
        self,
        profile: Optional[HostProfile] = None,
        backends: Sequence[str] = ("threads", "procs"),
        candidate_P: Sequence[int] = _DEFAULT_CANDIDATE_P,
        history: Optional[BenchHistory] = None,
        adapter: Optional[RequestAdapter] = None,
    ):
        self.profile = profile or HostProfile.default()
        unknown = [b for b in backends if b not in self.profile.backends]
        if unknown:
            raise ConfigurationError(
                f"planner backends {unknown} missing from the profile "
                f"(knows {sorted(self.profile.backends)})"
            )
        if not backends:
            raise ConfigurationError("planner needs at least one backend")
        self.backends = tuple(backends)
        self.candidate_P = tuple(sorted(set(candidate_P)))
        self.history = history if history is not None else BenchHistory()
        self.adapter = adapter

    # -- the decision --------------------------------------------------

    def plan(
        self,
        N: int,
        *,
        dtype_size: int = 4,
        faults: bool = False,
        algorithm: Optional[str] = None,
        backend: Optional[str] = None,
        P: Optional[int] = None,
        fused: Optional[bool] = None,
        grouped: Optional[bool] = None,
        overlap: Optional[bool] = None,
        chunks: Optional[int] = None,
        warm: bool = True,
        adapt: bool = True,
        memory_budget: Optional[int] = None,
    ) -> PlanDecision:
        """Plan one sort request of ``N`` keys.

        Keyword arguments other than ``faults``/``warm``/``adapt`` are
        forced overrides: ``None`` means "planner chooses".
        ``faults=True`` applies the safety clamp described in the module
        docstring — it wins even over forced
        ``fused``/``grouped``/``overlap``.

        ``adapt`` engages the attached
        :class:`~repro.service.adapt.RequestAdapter` (a no-op without
        one): every candidate is priced twice — statically (profile +
        bench history, exactly the computation run without an adapter)
        and with the live corrections — and the *adapted* estimates pick
        the winner, with both columns kept on the decision
        (:attr:`PlanDecision.static_candidates`).  An unobserved
        candidate's adapted price equals its static price, so adaptation
        only moves decisions on evidence.  ``adapt=False``, a missing
        adapter, or an armed fault plan (live corrections reflect the
        unclamped fast path, not the fault transport) all fall back to
        the static path, byte-identical to a planner with no adapter.

        With ``algorithm=None`` (or ``"auto"``) the planner prices both
        runnable algorithms — smart bitonic and sample sort — against
        each other, each at its own bench-history bias, and the winner's
        name lands on :attr:`PlanDecision.algorithm` (the ``sample:``-
        prefixed rows of :meth:`PlanDecision.explain`'s candidate
        table).  Forcing ``overlap=True`` pins the bitonic chunked
        pipeline: sample sort's single exchange has nothing to overlap,
        so the overlapped request is a bitonic request.

        With ``overlap=None`` the planner prices each ``(backend, P)``
        twice — synchronous and overlapped (the ``+ov`` candidates) —
        and picks overlap only when the estimate says hiding transfer
        wait beats the pipeline's per-chunk overhead; with the default
        profile (``overlap_efficiency=0``) and no bench history that is
        never, so overlap stays opt-in until measured.

        ``memory_budget`` (bytes) engages the third regime: when the
        request's estimated in-memory working set
        (:func:`~repro.extsort.inmem_working_set_bytes`) exceeds the
        budget the planner degrades to the out-of-core ``"external"``
        algorithm — a single-host spill-to-disk run on the ``"local"``
        pseudo-backend at ``P=1`` — overriding even forced
        ``algorithm``/``backend``/``P`` (``clamped=True``,
        ``source="budget"``).  A budget-degraded *fault* request is a
        contradiction (the external path has no fault transport) and
        raises :class:`~repro.errors.ConfigurationError`.  Within
        budget, external competes in the auto-priced table only when the
        profile carries measured disk evidence
        (:attr:`~repro.service.profile.HostProfile.has_disk_evidence`)
        — never chosen on conservative defaults alone.
        """
        if N < 1:
            raise ConfigurationError(f"cannot plan a sort of {N} keys")
        if algorithm == "auto":
            algorithm = None
        if algorithm is not None and algorithm not in PLANNABLE_ALGORITHMS:
            raise ConfigurationError(
                f"the planner cannot schedule algorithm {algorithm!r}; "
                f"choose from {PLANNABLE_ALGORITHMS} (or None for auto)"
            )
        clamped = False
        budget_forced = False
        if memory_budget is not None and memory_budget < 1:
            raise ConfigurationError(
                f"memory_budget must be >= 1 byte, got {memory_budget}"
            )
        if memory_budget is not None:
            from repro.extsort import inmem_working_set_bytes

            if inmem_working_set_bytes(N, dtype_size) > memory_budget:
                if faults:
                    raise ConfigurationError(
                        f"request of {N} keys exceeds the "
                        f"{memory_budget}-byte memory budget but carries "
                        f"an armed fault plan; the out-of-core path has "
                        f"no fault transport — raise the budget or drop "
                        f"the fault plan"
                    )
                # Budget degradation: the working set does not fit, so
                # the request runs out of core regardless of what was
                # forced — like the fault clamp, the planner must never
                # select a configuration it knows will OOM.
                budget_forced = True
                if (
                    algorithm not in (None, "external")
                    or backend not in (None, EXTERNAL_BACKEND)
                    or (P is not None and P != 1)
                    or overlap is True
                ):
                    clamped = True
                algorithm = "external"
                backend = None
                P = None
                overlap = False
        if algorithm == "external":
            if faults:
                raise ConfigurationError(
                    "the external sort runs in-process with no fault "
                    "transport; fault injection needs an SPMD algorithm"
                )
            if backend not in (None, EXTERNAL_BACKEND):
                raise ConfigurationError(
                    f"algorithm 'external' runs on the "
                    f"{EXTERNAL_BACKEND!r} pseudo-backend, not "
                    f"{backend!r}"
                )
            if P is not None and P != 1:
                raise ConfigurationError(
                    f"the external sort is single-host: P must be 1, "
                    f"got {P}"
                )
            if overlap is True:
                raise ConfigurationError(
                    "the external sort has no remap pipeline to overlap"
                )
            backend = None
            P = None
        if faults:
            # Safety clamp: the fault transport needs one address space
            # and cannot fuse, group or overlap (ReliableComm wraps every
            # payload in checksummed frames and is not overlap-capable;
            # the transparent ABC fallback would engage on every remap).
            # Never *plan* into a fallback.
            if backend is not None and backend != "threads":
                raise ConfigurationError(
                    f"fault injection needs the threads backend, "
                    f"not {backend!r}"
                )
            backend = "threads"
            if fused is not False or grouped is not False or overlap is True:
                clamped = True
            fused = False
            grouped = False
            overlap = False
        use_fused = True if fused is None else fused
        use_grouped = True if grouped is None else grouped
        use_chunks = 4 if chunks is None else int(chunks)
        if use_chunks < 1:
            raise ConfigurationError(f"chunks must be >= 1, got {chunks}")

        backends = (backend,) if backend is not None else self.backends
        for b in backends:
            if b not in self.profile.backends:
                raise ConfigurationError(
                    f"unknown backend {b!r}; profile knows "
                    f"{sorted(self.profile.backends)}"
                )
        if P is not None:
            if P < 1 or N % P:
                raise ConfigurationError(
                    f"{N} keys do not divide over P={P} ranks"
                )
            if P > 1 and N // P < 2:
                raise ConfigurationError(
                    f"P={P} leaves {N // P} key(s) per rank; the smart "
                    f"schedule needs at least 2"
                )
            candidates_P = (P,)
        else:
            # Smart schedules need >= 2 keys per rank (P=1 is the
            # degenerate local sort and always valid).
            candidates_P = tuple(
                p for p in self.candidate_P
                if p == 1 or (N % p == 0 and N // p >= 2)
            ) or (1,)

        # Which algorithms compete: one when forced; forcing the
        # overlapped pipeline pins bitonic (sample's single exchange has
        # nothing to overlap); otherwise every runnable algorithm — the
        # out-of-core regime only once the profile carries measured disk
        # bandwidth (conservative defaults must never win an auto race).
        if algorithm is not None:
            algos: Tuple[str, ...] = (algorithm,)
        elif overlap is True:
            algos = ("smart",)
        elif self.profile.has_disk_evidence:
            algos = PLANNABLE_ALGORITHMS
        else:
            algos = _INMEM_ALGORITHMS
        # Which overlap polarities compete: both when the planner is free
        # to choose, exactly one when forced (or fault-clamped).
        ov_options = (False, True) if overlap is None else (bool(overlap),)
        # Live corrections engage only when an adapter is attached, the
        # caller kept ``adapt``, and no fault clamp is armed — every
        # other path runs exactly the static computation below.
        adapter = self.adapter if (adapt and not faults) else None
        candidates: Dict[str, float] = {}
        static_candidates: Dict[str, float] = {}
        best: Optional[Tuple[float, str, str, int, bool]] = None
        for algo in algos:
            if algo == "external":
                # The out-of-core regime is a single candidate: it runs
                # in-process on the serving host (``local`` pseudo-
                # backend, P=1), so there is no backend/P sweep — just
                # the I/O closed form, biased by its own bench history
                # and live EWMA correction like every other candidate.
                scale = self._history_scale(
                    EXTERNAL_BACKEND, N, dtype_size, "external"
                )
                est = self.profile.estimate_external(
                    N, dtype_size=dtype_size, memory_budget=memory_budget,
                ) * scale
                name = f"external:{EXTERNAL_BACKEND}x1"
                if adapter is not None:
                    corr = adapter.correction(EXTERNAL_BACKEND, 1, "external")
                    adapted = est if corr is None else est / scale * corr
                    static_candidates[name] = est
                    candidates[name] = adapted
                    est = adapted
                else:
                    candidates[name] = est
                if best is None or est < best[0]:
                    best = (est, "external", EXTERNAL_BACKEND, 1, False)
                continue
            # Sample sort never runs the chunked pipeline; its only
            # overlap polarity is what was forced (ignored at runtime).
            algo_ov = (
                ov_options if algo == "smart"
                else (bool(overlap),) if overlap is not None
                else (False,)
            )
            prefix = "" if algo == "smart" else f"{algo}:"
            for b in backends:
                scale = self._history_scale(b, N, dtype_size, algo)
                # Measured overlap payoff beats the profile's static number.
                profile = self.profile
                eff = self.history.overlap_efficiency(b)
                if eff is not None and True in algo_ov:
                    profile = replace(profile, overlap_efficiency=eff)
                adapted_profile = profile
                if adapter is not None and True in algo_ov:
                    # Live wait-split evidence beats committed history for
                    # the overlapped candidates — copy-on-write, the
                    # planner's own profile object is never mutated.
                    live_eff = adapter.overlap_efficiency(b)
                    if live_eff is not None:
                        adapted_profile = replace(
                            profile, overlap_efficiency=live_eff
                        )
                for p in candidates_P:
                    corr = (
                        adapter.correction(b, p, algo)
                        if adapter is not None else None
                    )
                    for ov in algo_ov:
                        est = profile.estimate(
                            N, p, b,
                            algorithm=algo,
                            fused=use_fused, grouped=use_grouped,
                            overlap=ov, chunks=use_chunks,
                            warm=warm, dtype_size=dtype_size,
                        ) * scale
                        name = f"{prefix}{b}x{p}" + ("+ov" if ov else "")
                        if adapter is not None:
                            # Adapted price: the live measured/modeled
                            # factor replaces the bench-history scale for
                            # observed keys (live beats committed); an
                            # unobserved key keeps the static price, so
                            # adaptation never diverges without evidence.
                            if corr is None and adapted_profile is profile:
                                adapted = est
                            else:
                                adapted = adapted_profile.estimate(
                                    N, p, b,
                                    algorithm=algo,
                                    fused=use_fused, grouped=use_grouped,
                                    overlap=ov, chunks=use_chunks,
                                    warm=warm, dtype_size=dtype_size,
                                ) * (corr if corr is not None else scale)
                            static_candidates[name] = est
                            candidates[name] = adapted
                            est = adapted
                        else:
                            candidates[name] = est
                        if best is None or est < best[0]:
                            best = (est, algo, b, p, ov)
        assert best is not None
        est, chosen_algo, chosen_backend, chosen_P, chosen_ov = best
        forced = backend is not None and P is not None
        source = (
            "budget" if budget_forced
            else "forced" if forced
            else "adapted" if adapter is not None and adapter.updates
            else "history" if len(self.history) and not faults
            else "model"
        )
        return PlanDecision(
            backend=chosen_backend,
            P=chosen_P,
            algorithm=chosen_algo,
            fused=use_fused,
            grouped=use_grouped,
            overlap=chosen_ov,
            chunks=use_chunks,
            est_seconds=est,
            clamped=clamped,
            source=source,
            candidates=candidates,
            static_candidates=static_candidates if adapter is not None else {},
        )

    def _history_scale(
        self, backend: str, N: int, dtype_size: int,
        algorithm: str = "smart",
    ) -> float:
        """Measured/modeled ratio at the nearest benched size: scales the
        model's estimate for ``backend`` running ``algorithm`` so
        systematic model error (GIL serialization, allocator behaviour)
        cancels out of the algorithm- and backend-vs-backend comparison.
        An algorithm with no bench records of its own falls back to the
        backend's bitonic-derived ratio — the backend-systematic share of
        the error transfers even before the algorithm is benched."""
        hit = self.history.best(backend, N, algorithm)
        if hit is None and algorithm not in ("smart", "external"):
            # An SPMD algorithm with no records of its own borrows the
            # backend's bitonic ratio; the external sort shares nothing
            # with the SPMD backends and never borrows.
            algorithm = "smart"
            hit = self.history.best(backend, N, algorithm)
        if hit is None:
            return 1.0
        measured, keys = hit
        # Bench records run cold at their recorded procs count; compare
        # against the cold model estimate at the benched size.  P is not
        # recorded per-history here, so use the bench default of 4 (the
        # external sort is always P=1 and modeled by its own form).
        try:
            if algorithm == "external":
                modeled = self.profile.estimate_external(
                    keys, dtype_size=dtype_size
                )
            else:
                modeled = self.profile.estimate(
                    keys, 4, backend, algorithm=algorithm,
                    warm=False, dtype_size=dtype_size,
                )
        except ConfigurationError:
            return 1.0
        if modeled <= 0 or measured <= 0:
            return 1.0
        ratio = measured / modeled
        # Clamp: history is a bias, not an oracle — a wildly off ratio
        # (different host, stale file) must not invert sane decisions.
        return min(max(ratio, 0.25), 4.0)

    # -- reporting ------------------------------------------------------

    def decision_table(
        self,
        sizes: Sequence[int] = (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20),
        memory_budget: Optional[int] = None,
    ) -> str:
        """Human-readable table of what the planner would pick per size
        (the "planner decision table" of docs/SERVING.md).  With an
        attached adapter the table grows a static column: what the frozen
        model priced the chosen candidate at, next to the adapted
        estimate the choice actually rode on.  ``memory_budget`` shows
        the regime split: sizes whose working set exceeds it degrade to
        ``external`` rows (the planner's third regime)."""
        adapted = self.adapter is not None
        header = (
            f"{'keys':>10}  {'algorithm':<9} {'backend':<8} {'P':>2}  "
            f"{'fused':<5} {'grouped':<7} {'overlap':<7}"
        )
        if adapted:
            header += f" {'static':>10} {'adapted':>10}"
        else:
            header += f" {'est':>10}"
        lines = [header]
        for N in sizes:
            d = self.plan(N, memory_budget=memory_budget)
            row = (
                f"{N:>10,}  {d.algorithm:<9} {d.backend:<8} {d.P:>2}  "
                f"{str(d.fused):<5} {str(d.grouped):<7} {str(d.overlap):<7}"
            )
            if adapted:
                chosen = (
                    ("" if d.algorithm == "smart" else f"{d.algorithm}:")
                    + f"{d.backend}x{d.P}"
                    + ("+ov" if d.overlap else "")
                )
                static = d.static_candidates.get(chosen)
                static_txt = (
                    "-" if static is None else f"{static * 1e3:>8.2f}ms"
                )
                row += (
                    f" {static_txt:>10} {d.est_seconds * 1e3:>8.2f}ms"
                )
            else:
                row += f" {d.est_seconds * 1e3:>8.2f}ms"
            lines.append(row)
        return "\n".join(lines)
