"""Online adaptation: completed-request traces folded back into the model.

The planner prices every request with LogGP closed forms calibrated once
by ``scripts/calibrate_loggp.py`` — but real hosts drift under load
(frequency scaling, noisy neighbours, allocator state), and the BSP
sorting studies show measured machine parameters diverging from one-shot
calibration.  :class:`RequestAdapter` closes the loop
(**monitor → model → adapt → replay**):

* after each served request the service calls :meth:`observe` with the
  measured run time (and, for traced requests, the per-rank tracers);
* the adapter folds ``measured / statically-modeled`` into a
  per-``(backend, P, algorithm)`` **EWMA correction factor**, clamped to
  the same ``[0.25, 4.0]`` band as the
  :class:`~repro.service.planner.BenchHistory` bias and **decaying toward
  1.0** without traffic — a stale correction must never outlive the load
  pattern that produced it;
* traced requests additionally fold the
  :class:`~repro.trace.report.PhaseReport` deviation ratios
  (communication vs computation share, measured over predicted) and the
  measured wait split into per-key diagnostic EWMAs and a per-backend
  **measured** :attr:`~repro.service.profile.HostProfile.overlap_efficiency`
  — which lets the planner's ``+ov`` candidates win on live evidence,
  without a committed BENCH file;
* :meth:`Planner.plan(adapt=True) <repro.service.planner.Planner.plan>`
  then prices every candidate with the adapted factors, on a
  copy-on-write view of the host profile — the static profile object is
  never mutated, and ``adapt=False`` (or an armed fault plan) yields
  decisions byte-identical to the static planner's.

State persists through the profile schema
(:meth:`~repro.service.profile.HostProfile.save` with
``adapt=adapter.state_blob()``, schema ``repro-bitonic-profile/3``), so a
restarted service resumes warm via :meth:`RequestAdapter.restore`.

``repro-bitonic adapt-replay`` is the proof harness: record a mixed-shape
load trace, replay it against a frozen-profile service and an adapting
one, and emit the ``adapted_over_static`` table CI gates at >= 1.0.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.machine.metrics import COMM_CATEGORIES, COMPUTE_CATEGORIES
from repro.service.profile import HostProfile

__all__ = ["AdaptKey", "CorrectionState", "RequestAdapter"]

#: One correction key: the planner candidate the factor corrects.
AdaptKey = Tuple[str, int, str]  # (backend, P, algorithm)

#: Correction clamp: identical to the BenchHistory bias clamp — a live
#: correction is a bias, not an oracle, and must never invert sane
#: decisions by more than the committed-history bias could.
CLAMP = (0.25, 4.0)


def _clamped(value: float, lo: float = CLAMP[0], hi: float = CLAMP[1]) -> float:
    return min(max(value, lo), hi)


@dataclass
class CorrectionState:
    """One EWMA correction around 1.0 with time-decay toward 1.0.

    ``value`` is the stored EWMA at ``stamp_s`` (the adapter clock).  The
    *effective* value at a later time has decayed exponentially toward
    1.0 with time constant ``decay_s`` — the neutral factor — so a key
    that stops seeing traffic relaxes back to the static model instead of
    pinning a stale correction forever.
    """

    value: float = 1.0
    stamp_s: float = 0.0
    updates: int = 0

    def effective(self, now_s: float, decay_s: float) -> float:
        if self.updates == 0:
            return 1.0
        age = max(0.0, now_s - self.stamp_s)
        if decay_s <= 0:
            return 1.0 if age > 0 else self.value
        return 1.0 + (self.value - 1.0) * math.exp(-age / decay_s)

    def update(self, sample: float, now_s: float, alpha: float,
               decay_s: float) -> float:
        base = self.effective(now_s, decay_s)
        self.value = _clamped(base + alpha * (sample - base))
        self.stamp_s = now_s
        self.updates += 1
        return self.value


@dataclass
class _BackendWaits:
    """Per-backend measured transfer-wait shares, by overlap polarity.

    The measured :attr:`overlap efficiency
    <repro.service.profile.HostProfile.overlap_efficiency>` is the
    fraction of the synchronous transfer-wait share the overlapped
    pipeline removed: ``1 - overlapped_share / sync_share`` — the live
    twin of :meth:`~repro.service.planner.BenchHistory.overlap_efficiency`,
    conservative for the same reason (wait is at most the whole run).
    """

    sync_share: CorrectionState = field(default_factory=CorrectionState)
    overlap_share: CorrectionState = field(default_factory=CorrectionState)


class RequestAdapter:
    """Fold completed-request measurements into live planner corrections.

    Parameters
    ----------
    profile:
        The *static* host profile corrections are measured against (the
        same one the owning planner prices with).  Never mutated.
    alpha:
        EWMA gain per observation, in (0, 1].
    decay_s:
        Time constant of the relaxation toward the neutral factor 1.0
        when a key sees no traffic.
    clock:
        Monotonic seconds source (injectable for deterministic tests).

    Thread safety: the service's dispatcher calls :meth:`observe` while
    the submit path calls :meth:`factor`; one lock covers both.
    """

    def __init__(
        self,
        profile: Optional[HostProfile] = None,
        alpha: float = 0.3,
        decay_s: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.profile = profile or HostProfile.default()
        self.alpha = alpha
        self.decay_s = decay_s
        self._clock = clock
        self._lock = threading.Lock()
        self._corr: Dict[AdaptKey, CorrectionState] = {}
        #: Per-key diagnostic EWMAs of the PhaseReport deviation ratios
        #: (measured share over predicted share) for the communication
        #: and computation category groups of traced requests.
        self._comm_dev: Dict[AdaptKey, CorrectionState] = {}
        self._comp_dev: Dict[AdaptKey, CorrectionState] = {}
        self._waits: Dict[str, _BackendWaits] = {}
        self.updates = 0

    # -- monitor: fold one completed request ---------------------------

    def observe(
        self,
        *,
        N: int,
        backend: str,
        P: int,
        algorithm: str,
        measured_s: float,
        dtype_size: int = 4,
        fused: bool = True,
        grouped: bool = True,
        overlap: bool = False,
        chunks: int = 4,
        tracers: Optional[Sequence[Any]] = None,
    ) -> float:
        """Fold one completed request; returns the key's updated factor.

        ``measured_s`` is the request's measured run time (queue wait
        excluded; for a batch, the per-request share of the dispatch).
        The sample is ``measured / static-model`` — always against the
        *static* profile estimate, never the adapted one, so corrections
        converge to the model's true error instead of compounding
        through their own feedback.  ``tracers``, when given (a traced
        request's per-rank recorders), additionally fold the phase-share
        deviation ratios and the measured wait split.
        """
        try:
            static = self.profile.estimate(
                N, P, backend, algorithm=algorithm, fused=fused,
                grouped=grouped, overlap=overlap, chunks=chunks,
                warm=True, dtype_size=dtype_size,
            )
        except ConfigurationError:
            return 1.0
        if static <= 0.0 or measured_s <= 0.0:
            return 1.0
        sample = _clamped(measured_s / static)
        key = (backend, P, algorithm)
        now = self._clock()
        with self._lock:
            state = self._corr.setdefault(key, CorrectionState())
            factor = state.update(sample, now, self.alpha, self.decay_s)
            self.updates += 1
        if tracers:
            self._observe_trace(
                key, N, dtype_size, fused, overlap,
                [t for t in tracers if t is not None], now,
            )
        return factor

    def _observe_trace(
        self,
        key: AdaptKey,
        N: int,
        dtype_size: int,
        fused: bool,
        overlap: bool,
        tracers: Sequence[Any],
        now: float,
    ) -> None:
        """Fold a traced request's phase deviations and wait split."""
        from repro.theory.predict import predict
        from repro.trace.report import build_phase_report

        backend, P, algorithm = key
        if not tracers:
            return
        try:
            spec = self.profile.machine_spec(backend, P)
            if algorithm == "smart":
                pt = predict("smart", N, P, spec=spec, fused=fused)
            else:
                pt = predict(algorithm, N, P, spec=spec)
        except (ConfigurationError, ValueError):
            pt = None
        rep = build_phase_report(
            tracers=tracers, predicted=pt, P=P, n=max(1, N // max(P, 1))
        )
        comm_dev = _group_deviation(rep, COMM_CATEGORIES)
        comp_dev = _group_deviation(rep, COMPUTE_CATEGORIES)
        total_us = rep.total("measured")
        share = None
        if total_us > 0 and rep.measured_transfer_wait_us is not None:
            share = min(1.0, rep.measured_transfer_wait_us / total_us)
        with self._lock:
            if comm_dev is not None:
                self._comm_dev.setdefault(key, CorrectionState()).update(
                    _clamped(comm_dev), now, self.alpha, self.decay_s
                )
            if comp_dev is not None:
                self._comp_dev.setdefault(key, CorrectionState()).update(
                    _clamped(comp_dev), now, self.alpha, self.decay_s
                )
            if share is not None and algorithm == "smart" and P > 1:
                waits = self._waits.setdefault(backend, _BackendWaits())
                target = waits.overlap_share if overlap else waits.sync_share
                # Shares live in [0, 1]; reuse the EWMA/decay machinery
                # with the clamp widened below 1.0's floor.
                base = target.effective(now, self.decay_s) \
                    if target.updates else share
                target.value = min(
                    1.0, max(0.0, base + self.alpha * (share - base))
                )
                target.stamp_s = now
                target.updates += 1

    # -- model: the adapted corrections the planner prices with --------

    def factor(self, backend: str, P: int, algorithm: str) -> float:
        """The key's effective correction factor (1.0 when unobserved)."""
        corr = self.correction(backend, P, algorithm)
        return 1.0 if corr is None else corr

    def correction(self, backend: str, P: int, algorithm: str) -> Optional[float]:
        """The key's effective correction factor, or ``None`` when the
        key has never been observed — the planner then keeps pricing that
        candidate exactly as the static path would (adaptation is a delta
        on evidence, never gratuitous divergence)."""
        with self._lock:
            state = self._corr.get((backend, P, algorithm))
            if state is None or not state.updates:
                return None
            return _clamped(state.effective(self._clock(), self.decay_s))

    def overlap_efficiency(self, backend: str) -> Optional[float]:
        """Measured overlap payoff for ``backend`` from live wait splits:
        the fraction of the synchronous transfer-wait share the
        overlapped pipeline removed, in [0, 1].  ``None`` until both
        polarities have been observed traced — the planner then falls
        back to bench history (or never chooses overlap on its own)."""
        with self._lock:
            waits = self._waits.get(backend)
            if waits is None:
                return None
            if not waits.sync_share.updates or not waits.overlap_share.updates:
                return None
            now = self._clock()
            # Decay pulls both shares toward the *neutral* 1.0 of the
            # correction machinery, which is meaningless for shares; use
            # the raw EWMAs — staleness is bounded by the paired ratio.
            sync = waits.sync_share.value
            ov = waits.overlap_share.value
        if sync <= 0.0:
            return None
        return min(max(1.0 - ov / sync, 0.0), 1.0)

    def deviations(self, backend: str, P: int, algorithm: str) -> Dict[str, float]:
        """The key's diagnostic deviation EWMAs (empty when untraced)."""
        key = (backend, P, algorithm)
        out: Dict[str, float] = {}
        with self._lock:
            now = self._clock()
            for name, table in (("comm", self._comm_dev),
                                ("comp", self._comp_dev)):
                state = table.get(key)
                if state is not None and state.updates:
                    out[name] = state.effective(now, self.decay_s)
        return out

    def stats(self) -> Dict[str, Any]:
        """JSON-ready snapshot for reports and observability."""
        with self._lock:
            now = self._clock()
            return {
                "updates": self.updates,
                "factors": {
                    f"{b}:{p}:{a}": round(
                        state.effective(now, self.decay_s), 4
                    )
                    for (b, p, a), state in sorted(self._corr.items())
                },
                "overlap_efficiency": {
                    b: self.overlap_efficiency_unlocked(b)
                    for b in sorted(self._waits)
                },
            }

    def overlap_efficiency_unlocked(self, backend: str) -> Optional[float]:
        # stats() holds the lock; recompute without re-acquiring.
        waits = self._waits.get(backend)
        if (waits is None or not waits.sync_share.updates
                or not waits.overlap_share.updates
                or waits.sync_share.value <= 0.0):
            return None
        return round(min(max(
            1.0 - waits.overlap_share.value / waits.sync_share.value,
            0.0), 1.0), 4)

    # -- persistence: the profile-schema /2 adapted-state blob ----------

    def state_blob(self) -> Dict[str, Any]:
        """JSON-ready adapted state for ``HostProfile.save(adapt=...)``.

        Timestamps are stored as *ages* (seconds before the snapshot), so
        a restore on a fresh monotonic clock resumes the decay exactly
        where the snapshot left it.
        """
        def dump(state: CorrectionState) -> Dict[str, Any]:
            return {
                "value": state.value,
                "age_s": max(0.0, now - state.stamp_s),
                "updates": state.updates,
            }

        with self._lock:
            now = self._clock()
            return {
                "alpha": self.alpha,
                "decay_s": self.decay_s,
                "updates": self.updates,
                "corrections": [
                    {"backend": b, "P": p, "algorithm": a, **dump(s)}
                    for (b, p, a), s in sorted(self._corr.items())
                ],
                "deviations": [
                    {"backend": b, "P": p, "algorithm": a, "group": grp,
                     **dump(s)}
                    for grp, table in (("comm", self._comm_dev),
                                       ("comp", self._comp_dev))
                    for (b, p, a), s in sorted(table.items())
                ],
                "waits": [
                    {"backend": b, "polarity": pol, **dump(s)}
                    for b, w in sorted(self._waits.items())
                    for pol, s in (("sync", w.sync_share),
                                   ("overlap", w.overlap_share))
                    if s.updates
                ],
            }

    @classmethod
    def restore(
        cls,
        blob: Optional[Dict[str, Any]],
        profile: Optional[HostProfile] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "RequestAdapter":
        """Rebuild an adapter from a ``state_blob`` (a fresh adapter when
        the blob is ``None`` or unreadable — adapted state is a bias,
        never a requirement)."""
        blob = blob or {}
        adapter = cls(
            profile=profile,
            alpha=float(blob.get("alpha", 0.3)),
            decay_s=float(blob.get("decay_s", 600.0)),
            clock=clock,
        )
        now = clock()

        def load(entry: Dict[str, Any]) -> CorrectionState:
            return CorrectionState(
                value=_clamped(float(entry.get("value", 1.0)), 0.0, CLAMP[1]),
                stamp_s=now - max(0.0, float(entry.get("age_s", 0.0))),
                updates=max(0, int(entry.get("updates", 0))),
            )

        try:
            for entry in blob.get("corrections", []):
                key = (str(entry["backend"]), int(entry["P"]),
                       str(entry["algorithm"]))
                adapter._corr[key] = load(entry)
            for entry in blob.get("deviations", []):
                key = (str(entry["backend"]), int(entry["P"]),
                       str(entry["algorithm"]))
                table = (adapter._comm_dev if entry.get("group") == "comm"
                         else adapter._comp_dev)
                table[key] = load(entry)
            for entry in blob.get("waits", []):
                waits = adapter._waits.setdefault(
                    str(entry["backend"]), _BackendWaits()
                )
                state = load(entry)
                state.value = min(1.0, max(0.0, state.value))
                if entry.get("polarity") == "overlap":
                    waits.overlap_share = state
                else:
                    waits.sync_share = state
            adapter.updates = max(0, int(blob.get("updates", 0)))
        except (KeyError, TypeError, ValueError):
            return cls(profile=profile, clock=clock)
        return adapter


def _group_deviation(rep: Any, categories: Sequence[str]) -> Optional[float]:
    """Measured share over predicted share for a category *group* (the
    PhaseReport deviation, aggregated), ``None`` when either side lacks
    the group."""
    if rep.measured_us is None or rep.column("predicted") is None:
        return None
    measured = sum(rep.share("measured", c) for c in categories)
    predicted = sum(rep.share("predicted", c) for c in categories)
    if predicted <= 0.0:
        return None
    return measured / predicted
