"""The persistent sort service: front door, queue, dispatcher.

``SortService`` accepts sort requests (:meth:`~SortService.submit` /
:meth:`~SortService.map` / :meth:`~SortService.sort`), plans each one
with the LogGP planner, and runs it on a warm world from the pool:

* **bounded queue + admission control** — a full queue rejects
  (:class:`~repro.errors.AdmissionError`, ``reason="queue-full"``), and
  when a deadline is configured a request whose estimated completion
  time (queued work + its own planner estimate) exceeds it is shed at
  the door (``reason="deadline"``) rather than timing out after queuing;
* **same-shape batching** — consecutive requests with identical
  ``(N, dtype, plan)`` run back to back on one world acquisition, so a
  burst of lookalike requests pays one dispatch;
* **crash replacement** — a request whose world dies mid-job is retried
  once on a fresh world (the pool replaces the dead one) before the
  failure is surfaced;
* **per-request tracing** — each request can carry its own per-rank
  :class:`~repro.trace.recorder.Tracer` set plus a service-lane tracer
  recording the queue wait as a ``wait/queue`` span on the same
  monotonic timebase, exported per request (not blurred per batch);
* **online adaptation** — when the planner carries a
  :class:`~repro.service.adapt.RequestAdapter`, every served request's
  measured run time (and, for traced requests, its per-rank tracers)
  feeds back into the adapter, so the next plan prices with live
  corrections; every planned arrival is also reported to the pool
  (:meth:`~repro.service.pool.WorldPool.note_arrival`) as the
  queue-pressure signal its autoscaler prespawns from.

Everything observable lands in :class:`ServiceReport`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    AdmissionError,
    CommunicationError,
    ConfigurationError,
    MemoryBudgetError,
    RequestTimeoutError,
    ServiceClosedError,
    SpmdTimeoutError,
)
from repro.extsort import (
    estimate_spill_bytes,
    external_sort,
    inmem_working_set_bytes,
    sweep_orphaned_spill_dirs,
)
from repro.runtime.driver import BackendOptions
from repro.service.admission import DEFAULT_TENANT, TenantAdmission
from repro.service.jobs import sort_shards_job
from repro.service.planner import EXTERNAL_BACKEND, PlanDecision, Planner
from repro.service.pool import WorldPool
from repro.trace.recorder import Tracer

__all__ = ["SortService", "SortOutcome", "ServiceReport", "Ticket"]


@dataclass
class SortOutcome:
    """What one request produced."""

    request_id: int
    sorted_keys: np.ndarray
    decision: PlanDecision
    queue_wait_s: float
    run_s: float
    wall_s: float
    #: Number of requests that shared this request's world dispatch.
    batch_size: int = 1
    #: World-replacement retries this request survived.
    retries: int = 0
    #: Per-rank tracers (+ one service-lane tracer with the queue-wait
    #: span) when the request was traced; feed to write_chrome_trace.
    tracers: Optional[List[Tracer]] = None
    fault_stats: Dict[str, int] = field(default_factory=dict)


class Ticket:
    """A pending request's handle; :meth:`result` blocks for the outcome."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._done = threading.Event()
        self._outcome: Optional[SortOutcome] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, outcome: SortOutcome) -> None:
        self._outcome = outcome
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> SortOutcome:
        if not self._done.wait(timeout):
            raise RequestTimeoutError(
                f"request {self.request_id} still pending after {timeout}s",
                deadline_s=timeout or 0.0,
                elapsed_s=timeout or 0.0,
                stage="result-wait",
            )
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome


@dataclass
class _Pending:
    ticket: Ticket
    keys: np.ndarray
    decision: PlanDecision
    faults: Optional[Any]  # FaultPlan
    trace: bool
    enqueued_at: float
    tenant: str = DEFAULT_TENANT
    #: The memory budget (bytes) this request was planned under; carried
    #: so the out-of-core path spills at the budget admission priced.
    memory_budget: Optional[int] = None
    #: Absolute monotonic expiry (enqueue time + the caller's budget);
    #: ``None`` means the caller waits forever.
    deadline_at: Optional[float] = None


@dataclass
class ServiceReport:
    """Aggregate service telemetry plus one record per served request."""

    served: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    shed_deadline: int = 0
    #: Requests too big even for the spill-to-disk path (the estimated
    #: spill footprint exceeded the disk budget); rejected at the door
    #: with a typed MemoryBudgetError.
    rejected_memory: int = 0
    #: Requests the memory-budget admission degraded to the out-of-core
    #: external sort instead of dispatching to a world.
    degraded_external: int = 0
    #: Requests whose deadline passed while they queued; failed with
    #: RequestTimeoutError *before* dispatch (never run past a give-up).
    expired: int = 0
    batches: int = 0
    world_retries: int = 0
    pool: Dict[str, Any] = field(default_factory=dict)
    #: Online-adaptation snapshot (update count, live correction factors,
    #: measured overlap efficiency) when the planner carries an adapter.
    adapt: Dict[str, Any] = field(default_factory=dict)
    #: Per-tenant admission counters (queued/admitted/rejections) when a
    #: TenantAdmission controller is attached.
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: One dict per served request: id, keys, backend, P, flags,
    #: est/queue/run/wall seconds, batch size.
    requests: List[Dict[str, Any]] = field(default_factory=list)

    def latency_percentile(self, q: float) -> float:
        if not self.requests:
            return 0.0
        walls = sorted(r["wall_s"] for r in self.requests)
        idx = min(len(walls) - 1, max(0, int(round(q * (len(walls) - 1)))))
        return walls[idx]

    def describe(self) -> str:
        lines = [
            f"service: {self.served} served, {self.failed} failed, "
            f"{self.rejected_queue_full} rejected (queue), "
            f"{self.shed_deadline} shed (deadline), "
            f"{self.expired} expired (in queue), "
            f"{self.batches} batches, {self.world_retries} world retries",
            f"  pool: {self.pool}",
        ]
        if self.rejected_memory or self.degraded_external:
            lines.insert(
                1,
                f"  memory budget: {self.degraded_external} degraded to "
                f"external, {self.rejected_memory} rejected (disk budget)",
            )
        if self.adapt:
            lines.append(
                f"  adapt: {self.adapt.get('updates', 0)} updates, "
                f"factors {self.adapt.get('factors', {})}"
            )
        for tenant, st in sorted(self.tenants.items()):
            lines.append(
                f"  tenant {tenant}: {st['admitted']:.0f} admitted, "
                f"{st['rejected_rate']:.0f} rate-limited, "
                f"{st['rejected_share']:.0f} share-limited"
            )
        if self.requests:
            lines.append(
                f"  latency p50={self.latency_percentile(0.5) * 1e3:.1f}ms "
                f"p95={self.latency_percentile(0.95) * 1e3:.1f}ms "
                f"max={self.latency_percentile(1.0) * 1e3:.1f}ms"
            )
        return "\n".join(lines)


class SortService:
    """A persistent sort service over a warm world pool.

    Parameters
    ----------
    planner:
        Request planner; defaults to a :class:`Planner` over the default
        host profile (pass one built on a calibrated profile for real
        estimates).
    pool:
        Warm world pool; defaults to a fresh :class:`WorldPool`.
    queue_depth:
        Bounded-queue capacity; submissions beyond it are rejected.
    deadline_s:
        Default admission deadline: a request whose estimated completion
        (queued estimates + its own) exceeds this is shed.  ``None``
        disables deadline shedding (per-request ``deadline_s`` still
        applies).
    batch_max:
        Most same-shape requests coalesced into one world dispatch.
    trace:
        Default per-request tracing (overridable per request).
    verify:
        Element-exact output verification against ``np.sort`` per
        request (off by default: the service is the hot path; the bench
        and tests verify independently).
    timeout:
        Wall-clock budget per world dispatch.
    admission:
        Optional per-tenant :class:`~repro.service.admission.TenantAdmission`
        controller layered on the bounded queue; when attached,
        ``submit(tenant=...)`` is rate-limited and fair-share-bounded per
        tenant and :meth:`report` carries per-tenant counters.
    autoscale:
        Enable queue-driven autoscaling on the default-constructed pool
        (ignored when ``pool`` is supplied — configure that pool
        directly).
    memory_budget:
        Default per-request memory budget in bytes.  A request whose
        estimated in-memory working set exceeds it is degraded to the
        out-of-core external sort (run in-process, never dispatched to a
        world) instead of OOMing; ``None`` disables the check.
    disk_budget:
        Cap in bytes on a degraded request's estimated spill footprint;
        a request too big even for the external path is rejected at the
        door with :class:`~repro.errors.MemoryBudgetError`.  ``None``
        means unbounded disk.
    spill_root:
        Directory external-sort spill dirs are created under (default
        ``$REPRO_SPILL_ROOT`` or the system tempdir).  Orphaned spill
        dirs from crashed processes are swept here at service start.
    """

    def __init__(
        self,
        planner: Optional[Planner] = None,
        pool: Optional[WorldPool] = None,
        queue_depth: int = 32,
        deadline_s: Optional[float] = None,
        batch_max: int = 8,
        trace: bool = False,
        verify: bool = False,
        timeout: float = 120.0,
        prewarm: Sequence[Tuple[str, int]] = (),
        admission: Optional[TenantAdmission] = None,
        autoscale: bool = False,
        memory_budget: Optional[int] = None,
        disk_budget: Optional[int] = None,
        spill_root: Optional[str] = None,
    ):
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if batch_max < 1:
            raise ConfigurationError(f"batch_max must be >= 1, got {batch_max}")
        self.planner = planner or Planner()
        if pool is None:
            # A calibrated spin budget in the planner's host profile
            # reaches the worlds this service spawns (procs ranks
            # spin-then-yield on that budget; irrelevant knobs are
            # ignored by the threads backend).
            budget = self.planner.profile.spin_budget
            pool = WorldPool(
                options=BackendOptions(spin_budget=budget)
                if budget is not None else None,
                autoscale=autoscale,
            )
        self.pool = pool
        self._queue_depth = queue_depth
        self._deadline_s = deadline_s
        self._batch_max = batch_max
        self._trace = trace
        self._verify = verify
        self._timeout = timeout
        self._admission = admission
        self._memory_budget = memory_budget
        self._disk_budget = disk_budget
        self._spill_root = spill_root
        # Crash hygiene mirrors the pool's shm sweep: spill dirs leaked
        # by dead processes are reclaimed before this service spills.
        sweep_orphaned_spill_dirs(spill_root)
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        self._report = ServiceReport()
        self._report_lock = threading.Lock()
        for backend, P in prewarm:
            self.pool.prewarm(backend, P)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="sort-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- the front door -------------------------------------------------

    def submit(
        self,
        keys: np.ndarray,
        *,
        algorithm: Optional[str] = None,
        backend: Optional[str] = None,
        P: Optional[int] = None,
        fused: Optional[bool] = None,
        grouped: Optional[bool] = None,
        overlap: Optional[bool] = None,
        chunks: Optional[int] = None,
        faults: Optional[Any] = None,
        deadline_s: Optional[float] = None,
        trace: Optional[bool] = None,
        tenant: str = DEFAULT_TENANT,
        memory_budget: Optional[int] = None,
    ) -> Ticket:
        """Enqueue one sort request; returns its :class:`Ticket`.

        ``algorithm``/``backend``/``P``/``fused``/``grouped``/
        ``overlap``/``chunks`` are forced overrides for
        the planner (``None`` = planner chooses, including the
        smart-bitonic-vs-sample algorithm routing).  Raises
        :class:`~repro.errors.AdmissionError` when the queue is full, the
        deadline estimate says the request cannot finish in time, or the
        tenant is over its rate/fair-share entitlement — admission
        failures never enqueue.

        ``deadline_s`` is also the request's *absolute* remaining-time
        budget: if it is still queued when the budget runs out, it fails
        with :class:`~repro.errors.RequestTimeoutError` instead of ever
        dispatching — work is never done for a caller that has given up.

        ``memory_budget`` (bytes, default the service-wide budget)
        engages the memory-budget admission: a request whose estimated
        working set exceeds it degrades to the out-of-core external sort
        (run in-process on the serving host); when even the external
        path's estimated spill footprint exceeds the service's disk
        budget the request is rejected with
        :class:`~repro.errors.MemoryBudgetError`.
        """
        keys = np.asarray(keys)
        if keys.ndim != 1 or keys.size < 1:
            raise ConfigurationError(
                f"service sorts 1-D non-empty arrays, got shape {keys.shape}"
            )
        budget = (
            memory_budget if memory_budget is not None
            else self._memory_budget
        )
        # The external path streams runs of any length; only the SPMD
        # network paths need the power-of-two shape.
        will_external = algorithm == "external" or (
            budget is not None
            and inmem_working_set_bytes(keys.size, keys.dtype.itemsize)
            > budget
        )
        if not will_external and keys.size & (keys.size - 1):
            raise ConfigurationError(
                f"the bitonic network needs a power-of-two input, "
                f"got {keys.size} keys"
            )
        if will_external and self._disk_budget is not None:
            spill = estimate_spill_bytes(keys.nbytes)
            if spill > self._disk_budget:
                with self._report_lock:
                    self._report.rejected_memory += 1
                raise MemoryBudgetError(
                    f"request of {keys.size} keys needs ~{spill} spill "
                    f"bytes, over the {self._disk_budget}-byte disk "
                    f"budget; too big even for the out-of-core path",
                    required_bytes=spill,
                    budget_bytes=self._disk_budget,
                )
        have_faults = faults is not None and not getattr(faults, "is_null", False)
        decision = self.planner.plan(
            keys.size,
            dtype_size=keys.dtype.itemsize,
            faults=have_faults,
            algorithm=algorithm,
            backend=backend,
            P=P,
            fused=fused,
            grouped=grouped,
            overlap=overlap,
            chunks=chunks,
            memory_budget=budget,
        )
        if decision.source == "budget":
            with self._report_lock:
                self._report.degraded_external += 1
        ticket = Ticket(next(self._ids))
        deadline = deadline_s if deadline_s is not None else self._deadline_s
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if len(self._queue) >= self._queue_depth:
                with self._report_lock:
                    self._report.rejected_queue_full += 1
                raise AdmissionError(
                    f"queue full ({self._queue_depth} pending); request "
                    "rejected",
                    reason="queue-full",
                )
            if deadline is not None:
                est_completion = decision.est_seconds + sum(
                    p.decision.est_seconds for p in self._queue
                )
                if est_completion > deadline:
                    with self._report_lock:
                        self._report.shed_deadline += 1
                    raise AdmissionError(
                        f"estimated completion {est_completion:.3f}s exceeds "
                        f"the {deadline}s deadline "
                        f"({len(self._queue)} requests queued); request shed",
                        reason="deadline",
                        est_seconds=est_completion,
                    )
            if self._admission is not None:
                # Tenant checks last: their ledger increments on success,
                # so earlier rejections need no unwind.
                self._admission.admit(
                    tenant, len(self._queue), self._queue_depth
                )
            now = time.perf_counter()
            self._queue.append(
                _Pending(
                    ticket=ticket,
                    keys=keys,
                    decision=decision,
                    faults=faults if have_faults else None,
                    trace=self._trace if trace is None else trace,
                    enqueued_at=now,
                    tenant=tenant,
                    deadline_at=(
                        None if deadline is None else now + deadline
                    ),
                    memory_budget=budget,
                )
            )
            self._cond.notify()
        # Queue-pressure signal for the pool's autoscaler: one planned
        # arrival headed for the decision's shape (admitted requests
        # only — rejections never exert pressure, and external requests
        # never touch a world, so they must not make the pool prespawn).
        if decision.backend != EXTERNAL_BACKEND:
            self.pool.note_arrival(decision.backend, decision.P)
        return ticket

    def sort(self, keys: np.ndarray, **kwargs: Any) -> SortOutcome:
        """Submit and wait: the synchronous convenience spelling."""
        timeout = kwargs.pop("result_timeout", None)
        return self.submit(keys, **kwargs).result(timeout)

    def map(
        self, arrays: Sequence[np.ndarray], **kwargs: Any
    ) -> List[SortOutcome]:
        """Submit many requests, wait for all, return outcomes in order.

        Same-shape neighbours batch onto shared world dispatches."""
        timeout = kwargs.pop("result_timeout", None)
        tickets = [self.submit(a, **kwargs) for a in arrays]
        return [t.result(timeout) for t in tickets]

    # -- the dispatcher -------------------------------------------------

    def _batch_key(self, p: _Pending) -> Optional[Tuple]:
        if p.faults is not None or not 1 <= p.decision.P <= p.keys.size:
            return None  # fault runs never share a world dispatch
        if p.decision.backend == EXTERNAL_BACKEND:
            return None  # out-of-core runs are in-process, one at a time
        d = p.decision
        return (
            p.keys.size, p.keys.dtype.str, d.backend, d.P, d.algorithm,
            d.fused, d.grouped, d.overlap, d.chunks,
        )

    def _take_batch(self) -> Optional[List[_Pending]]:
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            head = self._queue.popleft()
            batch = [head]
            key = self._batch_key(head)
            if key is not None:
                # Same-shape coalescing: pull lookalikes from anywhere in
                # the queue (order within a shape is preserved; distinct
                # shapes may complete out of submission order, as in any
                # batching server).
                rest = []
                for p in self._queue:
                    if len(batch) < self._batch_max and self._batch_key(p) == key:
                        batch.append(p)
                    else:
                        rest.append(p)
                self._queue.clear()
                self._queue.extend(rest)
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            try:
                self._run_batch(batch)
            except BaseException as exc:  # noqa: BLE001 — fail the batch, not the service
                for p in batch:
                    self._release_tenant(p)
                    p.ticket._fail(exc)
                with self._report_lock:
                    self._report.failed += len(batch)

    def _release_tenant(self, p: _Pending) -> None:
        if self._admission is not None:
            self._admission.release(p.tenant)

    def _expire_overdue(self, batch: List[_Pending]) -> List[_Pending]:
        """Fail (typed, never silent) the batch members whose caller's
        budget ran out while they queued; return the still-live rest."""
        now = time.perf_counter()
        live = []
        for p in batch:
            if p.deadline_at is not None and now >= p.deadline_at:
                self._release_tenant(p)
                p.ticket._fail(
                    RequestTimeoutError(
                        f"request {p.ticket.request_id} spent its "
                        f"{p.deadline_at - p.enqueued_at:.3f}s budget in the "
                        "queue; not dispatched",
                        deadline_s=p.deadline_at - p.enqueued_at,
                        elapsed_s=now - p.enqueued_at,
                        stage="dispatch",
                    )
                )
                with self._report_lock:
                    self._report.expired += 1
            else:
                live.append(p)
        return live

    def _run_batch(self, batch: List[_Pending]) -> None:
        # The whole batch leaves the queue here — served, expired, or
        # failed, it no longer exerts queue pressure on the autoscaler.
        head = batch[0].decision
        if head.backend != EXTERNAL_BACKEND:
            self.pool.note_done(head.backend, head.P, len(batch))
        batch = self._expire_overdue(batch)
        if not batch:
            return
        if head.backend == EXTERNAL_BACKEND:
            self._run_external(batch)
            return
        d = batch[0].decision
        dispatched_at = time.perf_counter()
        injector = None
        if batch[0].faults is not None:
            from repro.faults.plan import FaultInjector

            injector = FaultInjector(batch[0].faults)
        trace = any(p.trace for p in batch)
        P = d.P
        # rank r receives its slice of every request in the batch.
        def shards_for(rank: int) -> List[np.ndarray]:
            out = []
            for p in batch:
                n = p.keys.size // P
                out.append(p.keys[rank * n : (rank + 1) * n])
            return out

        rank_args = [
            (shards_for(r), d.fused, d.grouped, trace, injector,
             d.overlap, d.chunks, d.algorithm)
            for r in range(P)
        ]
        # Deadline propagation into the world dispatch: when every batch
        # member carries a budget, the dispatch may not outlive the
        # latest of them (a lone overdue member was already expired
        # above; mixed batches keep the service-wide budget so an
        # undeadlined member is never cut short).
        timeout = self._timeout
        deadlines = [p.deadline_at for p in batch if p.deadline_at is not None]
        if deadlines and len(deadlines) == len(batch):
            remaining = max(deadlines) - time.perf_counter()
            timeout = min(timeout, max(0.05, remaining))
        retries = 0
        while True:
            world = self.pool.acquire(d.backend, P)
            try:
                rank_results = world.run(
                    sort_shards_job, rank_args=rank_args, timeout=timeout
                )
                break
            except CommunicationError as exc:
                # The world died under the job (rank crash, collapsed
                # barrier).  Release sends it to the pool's morgue; one
                # retry runs the batch on a fresh world.  Timeouts are
                # not retried — the job itself was too slow.
                self.pool.release(world)
                if isinstance(exc, SpmdTimeoutError) or retries >= 1:
                    raise
                retries += 1
                with self._report_lock:
                    self._report.world_retries += 1
            except BaseException:
                self.pool.release(world)
                raise
        self.pool.release(world)
        done_at = time.perf_counter()
        run_s = done_at - dispatched_at
        # Close the feedback loop: fold each served request's measured
        # run into the planner's adapter (fault runs excluded — the
        # clamped fault transport measures a different machine than the
        # fast path the adapter corrects).
        adapter = getattr(self.planner, "adapter", None)
        if injector is not None:
            adapter = None

        for i, p in enumerate(batch):
            out = np.concatenate([rank_results[r][0][i] for r in range(P)])
            if self._verify:
                from repro.sorts.base import verify_sorted

                verify_sorted(
                    p.keys, out, f"service[{d.algorithm}:{d.backend}x{P}]"
                )
            tracers = None
            rank_tracers = None
            if p.trace:
                rank_tracers = [
                    t for t in (rank_results[r][1][i] for r in range(P))
                    if t is not None
                ]
                lane = Tracer(rank=P)  # the service lane, after the ranks
                lane.spans.append(
                    ["wait", "queue", p.enqueued_at, dispatched_at, -1]
                )
                if adapter is not None:
                    lane.add("adapt.updates", 1)
                tracers = rank_tracers + [lane]
            if adapter is not None:
                adapter.observe(
                    N=int(p.keys.size),
                    backend=d.backend,
                    P=P,
                    algorithm=d.algorithm,
                    measured_s=run_s / len(batch),
                    dtype_size=p.keys.dtype.itemsize,
                    fused=d.fused,
                    grouped=d.grouped,
                    overlap=d.overlap,
                    chunks=d.chunks,
                    tracers=rank_tracers,
                )
            outcome = SortOutcome(
                request_id=p.ticket.request_id,
                sorted_keys=out,
                decision=p.decision,
                queue_wait_s=dispatched_at - p.enqueued_at,
                run_s=run_s,
                wall_s=done_at - p.enqueued_at,
                batch_size=len(batch),
                retries=retries,
                tracers=tracers,
                fault_stats=(
                    injector.stats.as_dict() if injector is not None else {}
                ),
            )
            with self._report_lock:
                self._report.served += 1
                self._report.requests.append(
                    {
                        "id": p.ticket.request_id,
                        "keys": int(p.keys.size),
                        "algorithm": d.algorithm,
                        "backend": d.backend,
                        "P": P,
                        "fused": d.fused,
                        "grouped": d.grouped,
                        "overlap": d.overlap,
                        "chunks": d.chunks,
                        "est_s": d.est_seconds,
                        "queue_wait_s": outcome.queue_wait_s,
                        "run_s": run_s,
                        "wall_s": outcome.wall_s,
                        "batch_size": len(batch),
                        "tenant": p.tenant,
                    }
                )
            self._release_tenant(p)
            p.ticket._resolve(outcome)
        with self._report_lock:
            self._report.batches += 1

    def _run_external(self, batch: List[_Pending]) -> None:
        """Serve out-of-core requests in-process: no world, no pool —
        the dispatcher streams each request through the spill-to-disk
        external sort under the memory budget its admission priced."""
        adapter = getattr(self.planner, "adapter", None)
        for p in batch:
            d = p.decision
            dispatched_at = time.perf_counter()
            budget = (
                p.memory_budget if p.memory_budget is not None
                else 64 << 20  # estimate_external's default working set
            )
            tracer = Tracer(rank=0) if p.trace else None
            out, ext = external_sort(
                p.keys,
                budget,
                spill_root=self._spill_root,
                disk_budget=self._disk_budget,
                tracer=tracer,
            )
            done_at = time.perf_counter()
            run_s = done_at - dispatched_at
            if self._verify:
                from repro.sorts.base import verify_sorted

                verify_sorted(p.keys, out, "service[external:localx1]")
            tracers = None
            if tracer is not None:
                lane = Tracer(rank=1)  # the service lane, after rank 0
                lane.spans.append(
                    ["wait", "queue", p.enqueued_at, dispatched_at, -1]
                )
                if adapter is not None:
                    lane.add("adapt.updates", 1)
                tracers = [tracer, lane]
            if adapter is not None:
                adapter.observe(
                    N=int(p.keys.size),
                    backend=EXTERNAL_BACKEND,
                    P=1,
                    algorithm="external",
                    measured_s=run_s,
                    dtype_size=p.keys.dtype.itemsize,
                    fused=d.fused,
                    grouped=d.grouped,
                    overlap=d.overlap,
                    chunks=d.chunks,
                    tracers=[tracer] if tracer is not None else None,
                )
            outcome = SortOutcome(
                request_id=p.ticket.request_id,
                sorted_keys=out,
                decision=d,
                queue_wait_s=dispatched_at - p.enqueued_at,
                run_s=run_s,
                wall_s=done_at - p.enqueued_at,
                batch_size=1,
                tracers=tracers,
            )
            with self._report_lock:
                self._report.served += 1
                self._report.batches += 1
                self._report.requests.append(
                    {
                        "id": p.ticket.request_id,
                        "keys": int(p.keys.size),
                        "algorithm": "external",
                        "backend": EXTERNAL_BACKEND,
                        "P": 1,
                        "fused": d.fused,
                        "grouped": d.grouped,
                        "overlap": d.overlap,
                        "chunks": d.chunks,
                        "est_s": d.est_seconds,
                        "queue_wait_s": outcome.queue_wait_s,
                        "run_s": run_s,
                        "wall_s": outcome.wall_s,
                        "batch_size": 1,
                        "tenant": p.tenant,
                        "memory_budget": budget,
                        "spill_bytes": ext.spill_bytes,
                        "merge_passes": ext.merge_passes,
                    }
                )
            self._release_tenant(p)
            p.ticket._resolve(outcome)

    # -- lifecycle -------------------------------------------------------

    def report(self) -> ServiceReport:
        """A snapshot of the service's telemetry (pool stats included)."""
        with self._report_lock:
            snap = ServiceReport(
                served=self._report.served,
                failed=self._report.failed,
                rejected_queue_full=self._report.rejected_queue_full,
                shed_deadline=self._report.shed_deadline,
                rejected_memory=self._report.rejected_memory,
                degraded_external=self._report.degraded_external,
                expired=self._report.expired,
                batches=self._report.batches,
                world_retries=self._report.world_retries,
                pool=self.pool.stats(),
                adapt=(
                    self.planner.adapter.stats()
                    if getattr(self.planner, "adapter", None) is not None
                    else {}
                ),
                tenants=(
                    self._admission.stats()
                    if self._admission is not None
                    else {}
                ),
                requests=list(self._report.requests),
            )
        return snap

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting requests, optionally drain the queue, stop the
        dispatcher and close the pool.  Idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
                for p in abandoned:
                    self._release_tenant(p)
                    p.ticket._fail(
                        ServiceClosedError(
                            "service closed before the request ran"
                        )
                    )
            self._cond.notify_all()
        self._dispatcher.join(timeout=timeout)
        self.pool.close()

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
