"""The SPMD communicator protocol.

A deliberately small subset of the MPI interface (lower-case, object-based
— the mpi4py convention for generic payloads), enough to express the
paper's algorithms:

* ``rank`` / ``size`` — who am I, how many of us;
* ``barrier()`` — synchronize all ranks;
* ``alltoallv(buckets)`` — each rank provides one array per destination
  (``None`` or empty allowed); receives the list of arrays addressed to it,
  indexed by source;
* ``allgather(value)`` — everyone gets everyone's value, indexed by rank;
* ``bcast(value, root)`` — root's value, everywhere;
* ``sendrecv(send, dst, src)`` — simultaneous exchange with two peers
  (the pairwise pattern of blocked-merge and of column sort's shifts).

An implementation over ``mpi4py`` maps each method to its MPI namesake;
the in-process :class:`~repro.runtime.threads.ThreadComm` implements them
with shared memory and barriers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — avoid a runtime->trace import cycle
    from repro.trace.recorder import Tracer

__all__ = ["Comm"]


class Comm(ABC):
    """Abstract SPMD communicator (one instance per rank)."""

    #: This rank's id, ``0 <= rank < size``.
    rank: int
    #: Number of ranks.
    size: int
    #: Whether every rank of this world shares the caller's address space.
    #: Cross-process backends (:class:`~repro.runtime.procs.ProcComm`)
    #: override this to ``False``; layers that rely on shared in-process
    #: state (e.g. the fault-injection transport) must check it.
    in_process: bool = True
    #: Optional per-rank :class:`~repro.trace.recorder.Tracer`.  When set,
    #: backends record ``wait`` spans at their barriers and message/byte
    #: counters per collective, and the SPMD algorithms record their phase
    #: spans; when ``None`` (the default) every instrumented path takes a
    #: zero-allocation no-op branch.  Assign it on the rank's communicator
    #: before the algorithm runs (``comm.tracer = Tracer(comm.rank)``).
    tracer: Optional["Tracer"] = None

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

    @abstractmethod
    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        """Personalized all-to-all.

        ``buckets[q]`` is the array this rank sends to rank ``q`` (``None``
        or empty to send nothing; ``buckets[rank]`` is returned to self).
        Returns ``received`` with ``received[p]`` the array rank ``p``
        addressed to this rank (``None`` where nothing was sent).
        """

    @abstractmethod
    def allgather(self, value: Any) -> List[Any]:
        """Gather one value from every rank, everywhere."""

    @abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s value to every rank."""

    def sendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> Optional[np.ndarray]:
        """Send ``send`` to ``dst`` while receiving from ``src``.

        The exchange pattern must be *matched*: when this rank names
        ``src``, rank ``src`` must concurrently call :meth:`sendrecv`
        with its ``dst`` set to this rank (possibly with ``send=None``) —
        the simultaneous pairwise pattern of blocked-merge and of column
        sort's shifts.  Sends to self are dropped and receives from self
        return ``None``, matching the fallback's behaviour.

        This default implementation pays a full ``size``-wide
        :meth:`alltoallv` for what is a 2-peer exchange; both bundled
        backends override it with a genuinely pairwise path (the trace
        counters ``coll.slots`` / ``coll.alltoallv`` make the difference
        observable).
        """
        buckets: List[Optional[np.ndarray]] = [None] * self.size
        if send is not None and dst != self.rank:
            buckets[dst] = send
        received = self.alltoallv(buckets)
        return received[src]
