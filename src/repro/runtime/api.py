"""The SPMD communicator protocol.

A deliberately small subset of the MPI interface (lower-case, object-based
— the mpi4py convention for generic payloads), enough to express the
paper's algorithms:

* ``rank`` / ``size`` — who am I, how many of us;
* ``barrier()`` — synchronize all ranks;
* ``alltoallv(buckets)`` — each rank provides one array per destination
  (``None`` or empty allowed); receives the list of arrays addressed to it,
  indexed by source;
* ``allgather(value)`` — everyone gets everyone's value, indexed by rank;
* ``bcast(value, root)`` — root's value, everywhere;
* ``sendrecv(send, dst, src)`` — simultaneous exchange with two peers
  (the pairwise pattern of blocked-merge and of column sort's shifts);
* ``group_alltoallv(buckets, group)`` — ``alltoallv`` scoped to a
  communication group (Lemma 4: a remap only exchanges data within groups
  of ``2**N_BitsChanged`` ranks, so synchronization and descriptor work
  need not span the world);
* ``alltoallv_fused(data, plan, out, group)`` — the §4.3 fused
  pack/transfer/unpack as one collective: gather straight from ``data``
  through the plan's indices into the transport, scatter arrivals straight
  into ``out`` — no intermediate bucket arrays on a backend's fast path.

Each collective also has a **nonblocking** post/complete spelling —
``ialltoallv`` / ``igroup_alltoallv`` / ``isendrecv`` /
``ialltoallv_fused`` — returning a :class:`PendingOp` handle with
``test()`` / ``wait()``, mirroring MPI's ``Ialltoallv``/``Request``
pairs.  Posting publishes this rank's outgoing data immediately and
returns; completion (the matching data movement and any synchronization)
happens inside ``wait()``.  That split is what lets the sort overlap the
unpack/merge of one remap chunk with the in-flight transfer of the next
(the chunked schedule of :func:`repro.runtime.bitonic_spmd.spmd_bitonic_sort`).

An implementation over ``mpi4py`` maps each method to its MPI namesake
(``group_alltoallv`` to an ``alltoallv`` on a split communicator,
``alltoallv_fused`` to ``alltoallw`` with derived datatypes); the
in-process :class:`~repro.runtime.threads.ThreadComm` implements them with
shared memory and barriers.  The group/fused methods carry default
implementations composed from :meth:`Comm.alltoallv`, so wrappers such as
:class:`~repro.faults.transport.ReliableComm` stay correct automatically —
they just do not get the zero-copy fast path.  The same composition rule
covers the nonblocking methods: the defaults run the blocking collective
eagerly and hand back an already-complete :class:`PendingOp`, so any
wrapper supports the nonblocking interface, just without actual overlap —
callers that *need* overlap check :attr:`Comm.overlap_capable` first.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — avoid a runtime->trace import cycle
    from repro.remap.plan import RemapPlan
    from repro.trace.recorder import Tracer

__all__ = ["Comm", "PendingOp"]


class PendingOp:
    """Handle for one posted nonblocking collective.

    ``wait()`` blocks until the operation completes and returns its result
    (what the blocking spelling would have returned; ``None`` for fused
    collectives, which scatter into the caller's buffer).  ``test()``
    reports, without blocking, whether ``wait()`` would return
    immediately.  ``wait()`` is idempotent — repeated calls return the
    same result.

    Every posted op **must** be waited before the rank's job ends: the
    worlds' workers treat a nonzero :meth:`Comm.pending_ops` count at job
    exit as a job failure (a leaked op leaves peers' data undrained and
    would corrupt the next job's collective sequence).
    """

    __slots__ = ("_comm", "_done", "_result")

    def __init__(self, comm: "Comm"):
        self._comm = comm
        self._done = False
        self._result: Any = None
        comm._op_posted()

    def test(self) -> bool:
        """True when :meth:`wait` would return without blocking."""
        return self._done or self._ready()

    def wait(self) -> Any:
        """Complete the operation; return its result (idempotent)."""
        if not self._done:
            result = self._complete()
            self._done = True
            self._result = result
            self._comm._op_done()
        return self._result

    # -- substrate hooks ----------------------------------------------

    def _ready(self) -> bool:
        """Non-blocking completion probe; overridden by real backends."""
        return True

    def _complete(self) -> Any:
        raise NotImplementedError  # pragma: no cover — abstract


class _CompletedOp(PendingOp):
    """The composed default: the blocking collective already ran, this
    handle merely carries its result.  Keeps wrappers (fault transports)
    correct under the nonblocking interface without real overlap."""

    __slots__ = ()

    def __init__(self, comm: "Comm", result: Any):
        super().__init__(comm)
        self._done = True
        self._result = result
        comm._op_done()


class Comm(ABC):
    """Abstract SPMD communicator (one instance per rank)."""

    #: This rank's id, ``0 <= rank < size``.
    rank: int
    #: Number of ranks.
    size: int
    #: Whether every rank of this world shares the caller's address space.
    #: Cross-process backends (:class:`~repro.runtime.procs.ProcComm`)
    #: override this to ``False``; layers that rely on shared in-process
    #: state (e.g. the fault-injection transport) must check it.
    in_process: bool = True
    #: Optional per-rank :class:`~repro.trace.recorder.Tracer`.  When set,
    #: backends record ``wait`` spans at their barriers and message/byte
    #: counters per collective, and the SPMD algorithms record their phase
    #: spans; when ``None`` (the default) every instrumented path takes a
    #: zero-allocation no-op branch.  Assign it on the rank's communicator
    #: before the algorithm runs (``comm.tracer = Tracer(comm.rank)``).
    tracer: Optional["Tracer"] = None
    #: Whether the nonblocking collectives genuinely overlap: posting
    #: returns before the data movement completes.  ``False`` here (and on
    #: wrappers such as the fault transport, which inherit it) means the
    #: ``i*`` methods run eagerly via the composed defaults — correct, but
    #: with nothing in flight.  Schedules that *pipeline* on pending ops
    #: (the chunked remap) check this and fall back to their synchronous
    #: path rather than pay chunking overhead for no overlap.
    overlap_capable: bool = False
    #: Posted-but-unwaited nonblocking ops (leak accounting; see
    #: :class:`PendingOp`).  Class-level default so implementations need
    #: not cooperate in ``__init__``.
    _pending_ops: int = 0

    # -- pending-op accounting ----------------------------------------

    def _op_posted(self) -> None:
        self._pending_ops = self._pending_ops + 1

    def _op_done(self) -> None:
        self._pending_ops = self._pending_ops - 1

    def pending_ops(self) -> int:
        """Posted nonblocking ops not yet waited on this communicator.

        The persistent worlds check this after every job and fail the job
        on a leak — an unwaited op leaves peers undrained and poisons the
        world's collective sequence."""
        return self._pending_ops

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

    @abstractmethod
    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        """Personalized all-to-all.

        ``buckets[q]`` is the array this rank sends to rank ``q`` (``None``
        or empty to send nothing; ``buckets[rank]`` is returned to self).
        Returns ``received`` with ``received[p]`` the array rank ``p``
        addressed to this rank (``None`` where nothing was sent).
        """

    @abstractmethod
    def allgather(self, value: Any) -> List[Any]:
        """Gather one value from every rank, everywhere."""

    @abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s value to every rank."""

    def sendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> Optional[np.ndarray]:
        """Send ``send`` to ``dst`` while receiving from ``src``.

        The exchange pattern must be *matched*: when this rank names
        ``src``, rank ``src`` must concurrently call :meth:`sendrecv`
        with its ``dst`` set to this rank (possibly with ``send=None``) —
        the simultaneous pairwise pattern of blocked-merge and of column
        sort's shifts.  Sends to self are dropped and receives from self
        return ``None``, matching the fallback's behaviour.

        This default implementation pays a full ``size``-wide
        :meth:`alltoallv` for what is a 2-peer exchange; both bundled
        backends override it with a genuinely pairwise path (the trace
        counters ``coll.slots`` / ``coll.alltoallv`` make the difference
        observable).
        """
        buckets: List[Optional[np.ndarray]] = [None] * self.size
        if send is not None and dst != self.rank:
            buckets[dst] = send
        received = self.alltoallv(buckets)
        return received[src]

    # -- group-scoped and fused collectives ----------------------------

    def _check_group(
        self, buckets: Sequence[Optional[np.ndarray]], group: Sequence[int]
    ) -> Tuple[int, ...]:
        """Validate a communication group against this rank and its
        buckets; returns the group as a tuple."""
        from repro.errors import CommunicationError

        g = tuple(group)
        members = set(g)
        if len(members) != len(g):
            raise CommunicationError(
                f"rank {self.rank}: group {g} repeats a member"
            )
        if self.rank not in members:
            raise CommunicationError(
                f"rank {self.rank}: not a member of its own group {g}"
            )
        if not all(0 <= m < self.size for m in members):
            raise CommunicationError(
                f"rank {self.rank}: group {g} outside world of {self.size}"
            )
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: group_alltoallv needs {self.size} "
                f"world-indexed buckets, got {len(buckets)}"
            )
        for q, payload in enumerate(buckets):
            if payload is not None and q not in members:
                raise CommunicationError(
                    f"rank {self.rank}: bucket addressed to rank {q}, "
                    f"outside its communication group {g} (Lemma 4 would "
                    "be violated — the remap plan and group disagree)"
                )
        return g

    def group_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> List[Optional[np.ndarray]]:
        """Personalized all-to-all within a communication group.

        ``group`` is the sorted tuple of ranks (including this one) that
        exchange data in this collective — for a remap, the Lemma-4 group
        from :func:`repro.remap.groups.remap_group`.  ``buckets`` stays
        *world-indexed* (length ``size``); entries outside the group must
        be ``None``.  Returns a world-indexed ``received`` list, ``None``
        outside the group — a drop-in replacement for :meth:`alltoallv`.

        Every member of a group must call this collective with the same
        group at the same point of the program; distinct groups of the
        same partition proceed independently (no world-wide barrier).
        This default implementation validates the group but still pays a
        world-wide :meth:`alltoallv`; the bundled backends override it
        with genuinely group-scoped synchronization and descriptor work
        (observable via the ``coll.group_size`` / ``coll.slots`` trace
        counters).
        """
        self._check_group(buckets, group)
        return self.alltoallv(buckets)

    def alltoallv_fused(
        self,
        data: np.ndarray,
        plan: "RemapPlan",
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> None:
        """Fused pack/transfer/unpack (§4.3) as one collective.

        Gathers ``data[idx]`` for every outgoing message of ``plan`` into
        the transport, exchanges within ``group`` (the world when
        ``None``), and scatters each arrival straight into ``out`` through
        the plan's receive indices.  The caller moves its kept elements
        (``out[plan.keep_dst] = data[plan.keep_src]``) itself — that is
        the fused surcharge that remains of the pack phase.

        Backends override this with a zero-copy path (elements written
        once, straight into send windows, and merged straight out of
        receive windows); this default composes the same semantics from
        :meth:`group_alltoallv` / :meth:`alltoallv`, so any communicator —
        including wrappers like the fault-injection transport — supports
        the fused call, just without the copy savings.
        """
        from repro.errors import CommunicationError

        if self.tracer is not None:
            self.tracer.add("coll.fused")
        buckets: List[Optional[np.ndarray]] = [None] * self.size
        for q, idx in plan.send_sorted:
            buckets[q] = data[idx]
        if group is not None and len(group) < self.size:
            received = self.group_alltoallv(buckets, group)
        else:
            received = self.alltoallv(buckets)
        for p, slots in plan.recv_sorted:
            payload = received[p]
            if payload is None or payload.size != slots.size:
                raise CommunicationError(
                    f"rank {self.rank}: expected {slots.size} keys from "
                    f"rank {p}, got "
                    f"{0 if payload is None else payload.size}"
                )
            out[slots] = payload
        for p, payload in enumerate(received):
            if p != self.rank and payload is not None and p not in plan.recv:
                raise CommunicationError(
                    f"rank {self.rank}: unexpected payload of "
                    f"{payload.size} keys from rank {p}"
                )

    # -- nonblocking post/complete pairs --------------------------------

    def ialltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> PendingOp:
        """Nonblocking :meth:`alltoallv`; ``wait()`` returns ``received``.

        This composed default runs the blocking collective eagerly and
        returns an already-complete handle — correct for any communicator
        (wrappers included), with no overlap.  Backends with
        :attr:`overlap_capable` substrates override it with a genuine
        post/complete split.
        """
        return _CompletedOp(self, self.alltoallv(buckets))

    def igroup_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> PendingOp:
        """Nonblocking :meth:`group_alltoallv` (same default composition
        rule as :meth:`ialltoallv`)."""
        return _CompletedOp(self, self.group_alltoallv(buckets, group))

    def isendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> PendingOp:
        """Nonblocking :meth:`sendrecv`; ``wait()`` returns the payload
        received from ``src`` (same default composition rule as
        :meth:`ialltoallv`)."""
        return _CompletedOp(self, self.sendrecv(send, dst, src))

    def ialltoallv_fused(
        self,
        data: np.ndarray,
        plan: "RemapPlan",
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> PendingOp:
        """Nonblocking :meth:`alltoallv_fused`; arrivals are scattered
        into ``out`` by the time ``wait()`` returns (``wait()`` itself
        returns ``None``).  Senders must not mutate ``data`` before the
        op completes.  Same default composition rule as
        :meth:`ialltoallv`."""
        self.alltoallv_fused(data, plan, out, group=group)
        return _CompletedOp(self, None)
