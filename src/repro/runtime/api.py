"""The SPMD communicator protocol.

A deliberately small subset of the MPI interface (lower-case, object-based
— the mpi4py convention for generic payloads), enough to express the
paper's algorithms:

* ``rank`` / ``size`` — who am I, how many of us;
* ``barrier()`` — synchronize all ranks;
* ``alltoallv(buckets)`` — each rank provides one array per destination
  (``None`` or empty allowed); receives the list of arrays addressed to it,
  indexed by source;
* ``allgather(value)`` — everyone gets everyone's value, indexed by rank;
* ``bcast(value, root)`` — root's value, everywhere;
* ``sendrecv(send, dst, src)`` — simultaneous exchange with two peers
  (the pairwise pattern of blocked-merge and of column sort's shifts).

An implementation over ``mpi4py`` maps each method to its MPI namesake;
the in-process :class:`~repro.runtime.threads.ThreadComm` implements them
with shared memory and barriers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence

import numpy as np

__all__ = ["Comm"]


class Comm(ABC):
    """Abstract SPMD communicator (one instance per rank)."""

    #: This rank's id, ``0 <= rank < size``.
    rank: int
    #: Number of ranks.
    size: int
    #: Whether every rank of this world shares the caller's address space.
    #: Cross-process backends (:class:`~repro.runtime.procs.ProcComm`)
    #: override this to ``False``; layers that rely on shared in-process
    #: state (e.g. the fault-injection transport) must check it.
    in_process: bool = True

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

    @abstractmethod
    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        """Personalized all-to-all.

        ``buckets[q]`` is the array this rank sends to rank ``q`` (``None``
        or empty to send nothing; ``buckets[rank]`` is returned to self).
        Returns ``received`` with ``received[p]`` the array rank ``p``
        addressed to this rank (``None`` where nothing was sent).
        """

    @abstractmethod
    def allgather(self, value: Any) -> List[Any]:
        """Gather one value from every rank, everywhere."""

    @abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s value to every rank."""

    def sendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> Optional[np.ndarray]:
        """Send ``send`` to ``dst`` while receiving from ``src``.

        Default implementation over :meth:`alltoallv`; backends may
        specialize.
        """
        buckets: List[Optional[np.ndarray]] = [None] * self.size
        if send is not None and dst != self.rank:
            buckets[dst] = send
        received = self.alltoallv(buckets)
        return received[src]
