"""The in-process threads backend of the SPMD runtime.

Each rank runs on its own Python thread.  Collectives are implemented with
a shared mailbox matrix plus a reusable barrier: a phase's senders deposit
references, everyone synchronizes, receivers pick up, everyone synchronizes
again (so the mailbox can be reused).  NumPy array payloads are passed by
reference — callers must not mutate a sent buffer afterwards, same as with
a zero-copy MPI transport; the SPMD algorithms here always send freshly
gathered arrays.

NumPy kernels drop the GIL, so ranks' local phases genuinely overlap on
multicore hosts, but this backend's purpose is *correct concurrent
semantics* (races, deadlocks and ordering are real here), not peak speed.
"""

from __future__ import annotations

import threading
import time
from queue import Empty, SimpleQueue
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CommunicationError, ConfigurationError, SpmdTimeoutError
from repro.runtime.api import Comm
from repro.trace.recorder import trace_span

__all__ = ["ThreadComm", "run_spmd"]


def _payload_nbytes(payload: Any) -> int:
    """Byte size of a collective payload for the trace counters.

    Payloads are usually ndarrays, but wrappers (the fault transport's
    framed messages) send lists/tuples mixing arrays and metadata — a
    blind ``np.asarray`` on those is a ragged-array error.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(p) for p in payload)
    arr = np.asarray(payload)
    return int(arr.nbytes) if arr.dtype != object else 0


class _SharedState:
    """State shared by the ``P`` ThreadComm instances of one world."""

    def __init__(self, size: int):
        self.size = size
        self.barrier = threading.Barrier(size)
        # mailbox[src][dst] — written by src, read by dst, between barriers.
        self.mailbox: List[List[Any]] = [[None] * size for _ in range(size)]
        self.gather_slots: List[Any] = [None] * size
        self.failures: List[BaseException] = []
        self.failure_lock = threading.Lock()
        # Pairwise sendrecv channels, created on first use: (src, dst) ->
        # FIFO queue.  Unlike the mailbox they need no barrier — a pair
        # exchanging data does not synchronize the rest of the world.
        self.channels: Dict[Tuple[int, int], SimpleQueue] = {}
        self.channel_lock = threading.Lock()
        # Sub-world barriers for group-scoped collectives (Lemma 4),
        # created on first use per distinct member tuple.  A group barrier
        # only synchronizes the group's members, so disjoint groups cross
        # their exchanges concurrently instead of waiting world-wide.
        self.group_barriers: Dict[Tuple[int, ...], threading.Barrier] = {}
        self.group_lock = threading.Lock()
        self.aborted = False

    def channel(self, src: int, dst: int) -> SimpleQueue:
        ch = self.channels.get((src, dst))
        if ch is None:
            with self.channel_lock:
                ch = self.channels.setdefault((src, dst), SimpleQueue())
        return ch

    def group_barrier_for(self, group: Tuple[int, ...]) -> threading.Barrier:
        bar = self.group_barriers.get(group)
        if bar is None:
            with self.group_lock:
                if self.aborted:
                    # A peer already failed; joining a fresh barrier would
                    # hang forever waiting for the dead.
                    raise threading.BrokenBarrierError
                bar = self.group_barriers.setdefault(
                    group, threading.Barrier(len(group))
                )
        return bar

    def abort_all(self) -> None:
        """Break the world barrier *and* every group barrier, so no rank
        can block on a synchronization the failed peer will never join."""
        with self.group_lock:
            self.aborted = True
            barriers = list(self.group_barriers.values())
        self.barrier.abort()
        for bar in barriers:
            bar.abort()


class ThreadComm(Comm):
    """One rank's endpoint of an in-process SPMD world."""

    def __init__(self, rank: int, state: _SharedState):
        if not 0 <= rank < state.size:
            raise ConfigurationError(f"rank {rank} outside world of {state.size}")
        self.rank = rank
        self.size = state.size
        self._state = state

    # -- primitives ---------------------------------------------------

    def barrier(self) -> None:
        with trace_span(self.tracer, "wait", "barrier"):
            try:
                self._state.barrier.wait()
            except threading.BrokenBarrierError as exc:
                raise CommunicationError(
                    "SPMD world collapsed: a peer rank failed (see its traceback)"
                ) from exc

    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: alltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        tr = self.tracer
        if tr is not None:
            tr.add("coll.alltoallv")
            tr.add("coll.slots", self.size)
            for q, payload in enumerate(buckets):
                if q != self.rank and payload is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(payload))
        row = self._state.mailbox[self.rank]
        for q, payload in enumerate(buckets):
            row[q] = payload
        self.barrier()  # all deposits visible
        received: List[Optional[np.ndarray]] = []
        for p in range(self.size):
            received.append(self._state.mailbox[p][self.rank])
            # Slot [p][rank] is read only by this rank: clear it at pickup
            # so the world does not pin every transferred array for its
            # lifetime (writer p touches it again only after the barrier).
            self._state.mailbox[p][self.rank] = None
        self.barrier()  # all pickups done; mailbox reusable
        return received

    def _group_barrier(self, group: Tuple[int, ...]) -> None:
        with trace_span(self.tracer, "wait", "group-barrier"):
            try:
                self._state.group_barrier_for(group).wait()
            except threading.BrokenBarrierError as exc:
                raise CommunicationError(
                    "SPMD world collapsed: a peer rank failed (see its "
                    "traceback)"
                ) from exc

    def group_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> List[Optional[np.ndarray]]:
        """Group-scoped ``alltoallv``: only the group's mailbox slots are
        deposited/scanned and only the group's members synchronize, so
        per-stage slot work and barrier fan-in drop from ``O(P)`` to
        ``O(len(group))`` — the executable face of Lemma 4."""
        g = self._check_group(buckets, group)
        tr = self.tracer
        if tr is not None:
            tr.add("coll.group_alltoallv")
            tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
            for q in g:
                payload = buckets[q]
                if q != self.rank and payload is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(payload))
        row = self._state.mailbox[self.rank]
        for q in g:
            row[q] = buckets[q]
        self._group_barrier(g)  # group deposits visible
        received: List[Optional[np.ndarray]] = [None] * self.size
        for p in g:
            received[p] = self._state.mailbox[p][self.rank]
            self._state.mailbox[p][self.rank] = None
        self._group_barrier(g)  # group pickups done; slots reusable
        return received

    def alltoallv_fused(
        self,
        data: np.ndarray,
        plan,
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> None:
        """Zero-copy fused pack/transfer/unpack.

        The sender deposits *references* — ``(data, gather indices)`` per
        destination — and each receiver gathers straight from the peer's
        source array into its own fresh partition (``out[slots] =
        peer_data[idx]``): every transferred element is written exactly
        once into its final slot, with no per-destination bucket arrays
        and no concatenate pass (the executable analogue of ``fused=True``
        in :func:`repro.remap.exchange.perform_remap`).  Senders must not
        mutate ``data`` until the collective returns — the SPMD sort
        builds its new partition in a fresh buffer, so it never does.
        """
        me, P = self.rank, self.size
        g = tuple(group) if group is not None else tuple(range(P))
        tr = self.tracer
        if tr is not None:
            tr.add("coll.fused")
            tr.add("coll.fused_direct")
            if group is not None and len(g) < P:
                tr.add("coll.group_alltoallv")
                tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
            for q, idx in plan.send_sorted:
                tr.add("messages")
                tr.add("bytes_sent", int(idx.size * data.dtype.itemsize))
        row = self._state.mailbox[me]
        for q in g:
            row[q] = None
        for q, idx in plan.send_sorted:
            if q not in g or q == me:
                raise CommunicationError(
                    f"rank {me}: fused plan sends to rank {q}, outside its "
                    f"communication group {g}"
                )
            row[q] = (data, idx)
        self._group_barrier(g)  # deposits visible
        expected = dict(plan.recv_sorted)
        for p in g:
            if p == me:
                continue
            entry = self._state.mailbox[p][me]
            self._state.mailbox[p][me] = None
            slots = expected.pop(p, None)
            if entry is None:
                if slots is not None:
                    raise CommunicationError(
                        f"rank {me}: expected {slots.size} keys from rank "
                        f"{p}, got none"
                    )
                continue
            src_data, src_idx = entry
            if slots is None or src_idx.size != slots.size:
                raise CommunicationError(
                    f"rank {me}: rank {p} sent {src_idx.size} keys, "
                    f"expected {0 if slots is None else slots.size}"
                )
            # The fused write: gather from the peer's partition, scatter
            # into the final slots, one pass, no intermediate buffer.
            out[slots] = src_data[src_idx]
        self._group_barrier(g)  # pickups done; slots and data reusable
        if expected:
            raise CommunicationError(
                f"rank {me}: no payload arrived from rank(s) "
                f"{sorted(expected)}"
            )

    def allgather(self, value: Any) -> List[Any]:
        if self.tracer is not None:
            self.tracer.add("coll.allgather")
        self._state.gather_slots[self.rank] = value
        self.barrier()
        out = list(self._state.gather_slots)
        self.barrier()
        # Slot [rank] is written only by this rank, and peers read only
        # between the two barriers above — dropping the reference here is
        # race-free and keeps the world from retaining the payload.
        self._state.gather_slots[self.rank] = None
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommunicationError(f"bcast root {root} outside world")
        if self.tracer is not None:
            self.tracer.add("coll.bcast")
        if self.rank == root:
            self._state.gather_slots[root] = value
        self.barrier()
        out = self._state.gather_slots[root]
        self.barrier()
        if self.rank == root:
            self._state.gather_slots[root] = None
        return out

    def sendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> Optional[np.ndarray]:
        """Genuinely pairwise exchange over per-pair FIFO channels.

        Unlike the :class:`~repro.runtime.api.Comm` fallback this never
        crosses the world barrier or scans ``size`` mailbox slots: the
        pair (and only the pair) synchronizes, so disjoint pairs exchange
        concurrently without waiting on each other.
        """
        if not (0 <= dst < self.size and 0 <= src < self.size):
            raise CommunicationError(
                f"rank {self.rank}: sendrecv peers ({dst}, {src}) outside "
                f"world of {self.size}"
            )
        tr = self.tracer
        with trace_span(tr, "transfer", "sendrecv"):
            if tr is not None:
                tr.add("coll.sendrecv")
                tr.add("coll.slots")
            if dst != self.rank:
                # Always deposit (None included) so the matched receiver
                # never blocks on a nothing-to-send exchange.
                if tr is not None and send is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(send))
                self._state.channel(self.rank, dst).put(send)
            if src == self.rank:
                return None
            channel = self._state.channel(src, self.rank)
            with trace_span(tr, "wait", "sendrecv-recv"):
                while True:
                    try:
                        return channel.get(timeout=0.05)
                    except Empty:
                        if self._state.barrier.broken:
                            raise CommunicationError(
                                "SPMD world collapsed: a peer rank failed "
                                "while this rank waited in sendrecv"
                            ) from None


def run_spmd(size: int, fn: Callable[[Comm], Any], timeout: float = 120.0) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` concurrent ranks; return the per-rank
    results, indexed by rank.

    If any rank raises, the world's barrier is broken (unblocking peers)
    and the first failure is re-raised in the caller.
    """
    if size < 1:
        raise ConfigurationError(f"need at least 1 rank, got {size}")
    state = _SharedState(size)
    results: List[Any] = [None] * size

    def worker(rank: int) -> None:
        comm = ThreadComm(rank, state)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 — re-raised in caller
            with state.failure_lock:
                state.failures.append(exc)
            state.abort_all()

    threads = [
        # daemon=True: a wedged rank must never be able to block
        # interpreter exit (the watchdog below already reports it).
        threading.Thread(
            target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True
        )
        for r in range(size)
    ]
    for t in threads:
        t.start()
    # One deadline for the whole world: join each thread with the budget
    # that remains, so total wall-clock is bounded by ``timeout`` rather
    # than ``size × timeout``.
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            state.abort_all()
            raise SpmdTimeoutError(
                f"SPMD rank {t.name} did not finish within the world's "
                f"{timeout}s budget (deadlock or runaway work)",
                phase="run_spmd",
            )
    if state.failures:
        raise state.failures[0]
    return results
