"""The in-process threads backend of the SPMD runtime.

Each rank runs on its own Python thread.  Collectives are implemented with
a shared mailbox matrix plus a reusable barrier: a phase's senders deposit
references, everyone synchronizes, receivers pick up, everyone synchronizes
again (so the mailbox can be reused).  NumPy array payloads are passed by
reference — callers must not mutate a sent buffer afterwards, same as with
a zero-copy MPI transport; the SPMD algorithms here always send freshly
gathered arrays.

NumPy kernels drop the GIL, so ranks' local phases genuinely overlap on
multicore hosts, but this backend's purpose is *correct concurrent
semantics* (races, deadlocks and ordering are real here), not peak speed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from queue import Empty, SimpleQueue
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CommunicationError, ConfigurationError, SpmdTimeoutError
from repro.runtime.api import Comm, PendingOp
from repro.runtime.world import World
from repro.trace.recorder import trace_span

__all__ = ["ThreadComm", "ThreadWorld", "run_spmd"]


def _payload_nbytes(payload: Any) -> int:
    """Byte size of a collective payload for the trace counters.

    Payloads are usually ndarrays, but wrappers (the fault transport's
    framed messages) send lists/tuples mixing arrays and metadata — a
    blind ``np.asarray`` on those is a ragged-array error.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(p) for p in payload)
    arr = np.asarray(payload)
    return int(arr.nbytes) if arr.dtype != object else 0


class _SharedState:
    """State shared by the ``P`` ThreadComm instances of one world."""

    def __init__(self, size: int):
        self.size = size
        self.barrier = threading.Barrier(size)
        # mailbox[src][dst] — written by src, read by dst, between barriers.
        self.mailbox: List[List[Any]] = [[None] * size for _ in range(size)]
        self.gather_slots: List[Any] = [None] * size
        self.failures: List[BaseException] = []
        self.failure_lock = threading.Lock()
        # Pairwise sendrecv channels, created on first use: (src, dst) ->
        # FIFO queue.  Unlike the mailbox they need no barrier — a pair
        # exchanging data does not synchronize the rest of the world.
        self.channels: Dict[Tuple[int, int], SimpleQueue] = {}
        self.channel_lock = threading.Lock()
        # Sub-world barriers for group-scoped collectives (Lemma 4),
        # created on first use per distinct member tuple.  A group barrier
        # only synchronizes the group's members, so disjoint groups cross
        # their exchanges concurrently instead of waiting world-wide.
        self.group_barriers: Dict[Tuple[int, ...], threading.Barrier] = {}
        self.group_lock = threading.Lock()
        self.aborted = False

    def channel(self, src: int, dst: int) -> SimpleQueue:
        ch = self.channels.get((src, dst))
        if ch is None:
            with self.channel_lock:
                ch = self.channels.setdefault((src, dst), SimpleQueue())
        return ch

    def group_barrier_for(self, group: Tuple[int, ...]) -> threading.Barrier:
        bar = self.group_barriers.get(group)
        if bar is None:
            with self.group_lock:
                if self.aborted:
                    # A peer already failed; joining a fresh barrier would
                    # hang forever waiting for the dead.
                    raise threading.BrokenBarrierError
                bar = self.group_barriers.setdefault(
                    group, threading.Barrier(len(group))
                )
        return bar

    def abort_all(self) -> None:
        """Break the world barrier *and* every group barrier, so no rank
        can block on a synchronization the failed peer will never join."""
        with self.group_lock:
            self.aborted = True
            barriers = list(self.group_barriers.values())
        self.barrier.abort()
        for bar in barriers:
            bar.abort()


class _ThreadPending(PendingOp):
    """A posted nonblocking op on the threads backend.

    Every outgoing deposit already happened at post time (the per-pair
    channels are unbounded queues, so posting never blocks); completion
    only drains one tagged item per expected source and hands the
    payloads to the op's ``finish`` closure.
    """

    __slots__ = ("_sources", "_finish")

    def __init__(
        self,
        comm: "ThreadComm",
        sources: Tuple[Tuple[int, int], ...],
        finish: Callable[[Dict[int, Any]], Any],
    ):
        super().__init__(comm)
        self._sources = sources
        self._finish = finish

    def _ready(self) -> bool:
        comm = self._comm
        return all(comm._chan_poll(p, tag) for p, tag in self._sources)

    def _complete(self) -> Any:
        comm = self._comm
        with trace_span(comm.tracer, "wait", "complete"):
            payloads = {
                p: comm._chan_recv(p, tag) for p, tag in self._sources
            }
        return self._finish(payloads)


class ThreadComm(Comm):
    """One rank's endpoint of an in-process SPMD world."""

    overlap_capable = True

    def __init__(self, rank: int, state: _SharedState):
        if not 0 <= rank < state.size:
            raise ConfigurationError(f"rank {rank} outside world of {state.size}")
        self.rank = rank
        self.size = state.size
        self._state = state
        # Nonblocking-op plumbing: per-ordered-pair sequence counters (tx
        # counts deposits to dst, rx counts expected pickups from src) and
        # a per-source stash for items drained out of arrival order.  Both
        # sides advance their counter at post time in SPMD program order,
        # so matching tags meet without any synchronization.
        self._ntx: Dict[int, int] = {}
        self._nrx: Dict[int, int] = {}
        self._stash: Dict[int, Dict[Any, Any]] = {}

    # -- channel wire protocol ----------------------------------------
    #
    # Every channel item is a ``(tag, payload)`` pair.  The blocking
    # sendrecv stream uses ``tag=None`` (strictly FIFO per pair, as
    # before); nonblocking ops tag each deposit with the pair's next
    # sequence number so out-of-order ``wait()`` calls can claim their
    # own items while stashing anything that arrives early.

    def _next_tx(self, dst: int) -> int:
        seq = self._ntx.get(dst, 0) + 1
        self._ntx[dst] = seq
        return seq

    def _next_rx(self, src: int) -> int:
        seq = self._nrx.get(src, 0) + 1
        self._nrx[src] = seq
        return seq

    def _src_stash(self, src: int) -> Dict[Any, Any]:
        st = self._stash.get(src)
        if st is None:
            st = self._stash[src] = {}
        return st

    def _chan_send(self, dst: int, tag: Any, payload: Any) -> None:
        self._state.channel(self.rank, dst).put((tag, payload))

    def _chan_recv(self, src: int, tag: Any) -> Any:
        """Block until the item tagged ``tag`` from ``src`` is available,
        stashing any other arrivals from that source along the way."""
        stash = self._src_stash(src)
        if tag is None:
            plain = stash.get(None)
            if plain:
                return plain.popleft()
        elif tag in stash:
            return stash.pop(tag)
        channel = self._state.channel(src, self.rank)
        while True:
            try:
                got, payload = channel.get(timeout=0.05)
            except Empty:
                if self._state.barrier.broken:
                    raise CommunicationError(
                        "SPMD world collapsed: a peer rank failed while "
                        "this rank waited on a channel"
                    ) from None
                continue
            if got == tag:
                return payload
            if got is None:
                stash.setdefault(None, deque()).append(payload)
            else:
                stash[got] = payload

    def _chan_poll(self, src: int, tag: Any) -> bool:
        """Whether the tagged item from ``src`` is claimable without
        blocking; drains whatever is already queued into the stash."""
        stash = self._src_stash(src)
        if tag in stash:
            return True
        channel = self._state.channel(src, self.rank)
        while True:
            try:
                got, payload = channel.get_nowait()
            except Empty:
                return tag in stash
            if got is None:
                stash.setdefault(None, deque()).append(payload)
            else:
                stash[got] = payload
            if got == tag:
                return True

    # -- primitives ---------------------------------------------------

    def barrier(self) -> None:
        with trace_span(self.tracer, "wait", "barrier"):
            try:
                self._state.barrier.wait()
            except threading.BrokenBarrierError as exc:
                raise CommunicationError(
                    "SPMD world collapsed: a peer rank failed (see its traceback)"
                ) from exc

    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: alltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        tr = self.tracer
        if tr is not None:
            tr.add("coll.alltoallv")
            tr.add("coll.slots", self.size)
            for q, payload in enumerate(buckets):
                if q != self.rank and payload is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(payload))
        row = self._state.mailbox[self.rank]
        for q, payload in enumerate(buckets):
            row[q] = payload
        self.barrier()  # all deposits visible
        received: List[Optional[np.ndarray]] = []
        for p in range(self.size):
            received.append(self._state.mailbox[p][self.rank])
            # Slot [p][rank] is read only by this rank: clear it at pickup
            # so the world does not pin every transferred array for its
            # lifetime (writer p touches it again only after the barrier).
            self._state.mailbox[p][self.rank] = None
        self.barrier()  # all pickups done; mailbox reusable
        return received

    def _group_barrier(self, group: Tuple[int, ...]) -> None:
        with trace_span(self.tracer, "wait", "group-barrier"):
            try:
                self._state.group_barrier_for(group).wait()
            except threading.BrokenBarrierError as exc:
                raise CommunicationError(
                    "SPMD world collapsed: a peer rank failed (see its "
                    "traceback)"
                ) from exc

    def group_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> List[Optional[np.ndarray]]:
        """Group-scoped ``alltoallv``: only the group's mailbox slots are
        deposited/scanned and only the group's members synchronize, so
        per-stage slot work and barrier fan-in drop from ``O(P)`` to
        ``O(len(group))`` — the executable face of Lemma 4."""
        g = self._check_group(buckets, group)
        tr = self.tracer
        if tr is not None:
            tr.add("coll.group_alltoallv")
            tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
            for q in g:
                payload = buckets[q]
                if q != self.rank and payload is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(payload))
        row = self._state.mailbox[self.rank]
        for q in g:
            row[q] = buckets[q]
        self._group_barrier(g)  # group deposits visible
        received: List[Optional[np.ndarray]] = [None] * self.size
        for p in g:
            received[p] = self._state.mailbox[p][self.rank]
            self._state.mailbox[p][self.rank] = None
        self._group_barrier(g)  # group pickups done; slots reusable
        return received

    def alltoallv_fused(
        self,
        data: np.ndarray,
        plan,
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> None:
        """Zero-copy fused pack/transfer/unpack.

        The sender deposits *references* — ``(data, gather indices)`` per
        destination — and each receiver gathers straight from the peer's
        source array into its own fresh partition (``out[slots] =
        peer_data[idx]``): every transferred element is written exactly
        once into its final slot, with no per-destination bucket arrays
        and no concatenate pass (the executable analogue of ``fused=True``
        in :func:`repro.remap.exchange.perform_remap`).  Senders must not
        mutate ``data`` until the collective returns — the SPMD sort
        builds its new partition in a fresh buffer, so it never does.
        """
        me, P = self.rank, self.size
        g = tuple(group) if group is not None else tuple(range(P))
        tr = self.tracer
        if tr is not None:
            tr.add("coll.fused")
            tr.add("coll.fused_direct")
            if group is not None and len(g) < P:
                tr.add("coll.group_alltoallv")
                tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
            for q, idx in plan.send_sorted:
                tr.add("messages")
                tr.add("bytes_sent", int(idx.size * data.dtype.itemsize))
        row = self._state.mailbox[me]
        for q in g:
            row[q] = None
        for q, idx in plan.send_sorted:
            if q not in g or q == me:
                raise CommunicationError(
                    f"rank {me}: fused plan sends to rank {q}, outside its "
                    f"communication group {g}"
                )
            row[q] = (data, idx)
        self._group_barrier(g)  # deposits visible
        expected = dict(plan.recv_sorted)
        for p in g:
            if p == me:
                continue
            entry = self._state.mailbox[p][me]
            self._state.mailbox[p][me] = None
            slots = expected.pop(p, None)
            if entry is None:
                if slots is not None:
                    raise CommunicationError(
                        f"rank {me}: expected {slots.size} keys from rank "
                        f"{p}, got none"
                    )
                continue
            src_data, src_idx = entry
            if slots is None or src_idx.size != slots.size:
                raise CommunicationError(
                    f"rank {me}: rank {p} sent {src_idx.size} keys, "
                    f"expected {0 if slots is None else slots.size}"
                )
            # The fused write: gather from the peer's partition, scatter
            # into the final slots, one pass, no intermediate buffer.
            out[slots] = src_data[src_idx]
        self._group_barrier(g)  # pickups done; slots and data reusable
        if expected:
            raise CommunicationError(
                f"rank {me}: no payload arrived from rank(s) "
                f"{sorted(expected)}"
            )

    def allgather(self, value: Any) -> List[Any]:
        if self.tracer is not None:
            self.tracer.add("coll.allgather")
        self._state.gather_slots[self.rank] = value
        self.barrier()
        out = list(self._state.gather_slots)
        self.barrier()
        # Slot [rank] is written only by this rank, and peers read only
        # between the two barriers above — dropping the reference here is
        # race-free and keeps the world from retaining the payload.
        self._state.gather_slots[self.rank] = None
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommunicationError(f"bcast root {root} outside world")
        if self.tracer is not None:
            self.tracer.add("coll.bcast")
        if self.rank == root:
            self._state.gather_slots[root] = value
        self.barrier()
        out = self._state.gather_slots[root]
        self.barrier()
        if self.rank == root:
            self._state.gather_slots[root] = None
        return out

    def sendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> Optional[np.ndarray]:
        """Genuinely pairwise exchange over per-pair FIFO channels.

        Unlike the :class:`~repro.runtime.api.Comm` fallback this never
        crosses the world barrier or scans ``size`` mailbox slots: the
        pair (and only the pair) synchronizes, so disjoint pairs exchange
        concurrently without waiting on each other.
        """
        if not (0 <= dst < self.size and 0 <= src < self.size):
            raise CommunicationError(
                f"rank {self.rank}: sendrecv peers ({dst}, {src}) outside "
                f"world of {self.size}"
            )
        tr = self.tracer
        with trace_span(tr, "transfer", "sendrecv"):
            if tr is not None:
                tr.add("coll.sendrecv")
                tr.add("coll.slots")
            if dst != self.rank:
                # Always deposit (None included) so the matched receiver
                # never blocks on a nothing-to-send exchange.
                if tr is not None and send is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(send))
                self._chan_send(dst, None, send)
            if src == self.rank:
                return None
            with trace_span(tr, "wait", "sendrecv-recv"):
                return self._chan_recv(src, None)

    # -- nonblocking post/complete pairs ------------------------------

    def ialltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> PendingOp:
        """Post a world alltoallv; barrier-free — one tagged deposit per
        peer at post time, pickups deferred to the handle's ``wait()``."""
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: ialltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        me, P = self.rank, self.size
        tr = self.tracer
        if tr is not None:
            tr.add("coll.alltoallv")
            tr.add("coll.overlapped")
            tr.add("coll.slots", P)
            for q, payload in enumerate(buckets):
                if q != me and payload is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(payload))
        with trace_span(tr, "wait", "post"):
            for q in range(P):
                if q != me:
                    self._chan_send(q, self._next_tx(q), buckets[q])
        sources = tuple((p, self._next_rx(p)) for p in range(P) if p != me)
        own = buckets[me]

        def finish(payloads: Dict[int, Any]) -> List[Optional[np.ndarray]]:
            received: List[Optional[np.ndarray]] = [None] * P
            for p, payload in payloads.items():
                received[p] = payload
            received[me] = own
            return received

        return _ThreadPending(self, sources, finish)

    def igroup_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> PendingOp:
        """Post a group-scoped alltoallv (Lemma 4 scope, no barrier at
        all): deposits and expected pickups range over the group only."""
        g = self._check_group(buckets, group)
        me = self.rank
        tr = self.tracer
        if tr is not None:
            tr.add("coll.group_alltoallv")
            tr.add("coll.group_size", len(g))
            tr.add("coll.overlapped")
            tr.add("coll.slots", len(g))
            for q in g:
                payload = buckets[q]
                if q != me and payload is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(payload))
        with trace_span(tr, "wait", "post"):
            for q in g:
                if q != me:
                    self._chan_send(q, self._next_tx(q), buckets[q])
        sources = tuple((p, self._next_rx(p)) for p in g if p != me)
        own = buckets[me]
        size = self.size

        def finish(payloads: Dict[int, Any]) -> List[Optional[np.ndarray]]:
            received: List[Optional[np.ndarray]] = [None] * size
            for p, payload in payloads.items():
                received[p] = payload
            received[me] = own
            return received

        return _ThreadPending(self, sources, finish)

    def isendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> PendingOp:
        """Post a pairwise exchange; the deposit happens now, the pickup
        on ``wait()``."""
        if not (0 <= dst < self.size and 0 <= src < self.size):
            raise CommunicationError(
                f"rank {self.rank}: isendrecv peers ({dst}, {src}) outside "
                f"world of {self.size}"
            )
        tr = self.tracer
        if tr is not None:
            tr.add("coll.sendrecv")
            tr.add("coll.overlapped")
            tr.add("coll.slots")
        with trace_span(tr, "wait", "post"):
            if dst != self.rank:
                if tr is not None and send is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", _payload_nbytes(send))
                self._chan_send(dst, self._next_tx(dst), send)
        if src == self.rank:
            sources: Tuple[Tuple[int, int], ...] = ()
        else:
            sources = ((src, self._next_rx(src)),)

        def finish(payloads: Dict[int, Any]) -> Optional[np.ndarray]:
            return payloads.get(src)

        return _ThreadPending(self, sources, finish)

    def ialltoallv_fused(
        self,
        data: np.ndarray,
        plan,
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> PendingOp:
        """Post the zero-copy fused exchange: ``(data, gather indices)``
        references go onto the per-pair channels now; the fused
        gather/scatter into ``out`` runs at ``wait()``.  The remap plan
        is symmetric (q receives from p iff p sends to q), so sender and
        receiver advance each pair's tag counter in lockstep without a
        barrier.  Senders must not mutate ``data`` until ``wait()``
        returns — same reference discipline as the blocking fused path.
        """
        me, P = self.rank, self.size
        g = tuple(group) if group is not None else tuple(range(P))
        members = frozenset(g)
        tr = self.tracer
        if tr is not None:
            tr.add("coll.fused")
            tr.add("coll.fused_direct")
            tr.add("coll.overlapped")
            if group is not None and len(g) < P:
                tr.add("coll.group_alltoallv")
                tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
            for q, idx in plan.send_sorted:
                tr.add("messages")
                tr.add("bytes_sent", int(idx.size * data.dtype.itemsize))
        with trace_span(tr, "wait", "post"):
            for q, idx in plan.send_sorted:
                if q not in members or q == me:
                    raise CommunicationError(
                        f"rank {me}: fused plan sends to rank {q}, outside "
                        f"its communication group {g}"
                    )
                self._chan_send(q, self._next_tx(q), (data, idx))
        sources = tuple((p, self._next_rx(p)) for p, _ in plan.recv_sorted)
        expected = dict(plan.recv_sorted)

        def finish(payloads: Dict[int, Any]) -> None:
            for p, entry in payloads.items():
                slots = expected[p]
                src_data, src_idx = entry
                if src_idx.size != slots.size:
                    raise CommunicationError(
                        f"rank {me}: rank {p} sent {src_idx.size} keys, "
                        f"expected {slots.size}"
                    )
                out[slots] = src_data[src_idx]
            return None

        return _ThreadPending(self, sources, finish)


class ThreadWorld(World):
    """A persistent in-process SPMD world.

    ``size`` daemon rank threads are started once; each builds its
    :class:`ThreadComm` against one shared :class:`_SharedState` and then
    loops on a per-rank job queue, so mailbox matrix, barriers and
    channels are reused across jobs.  A job failure breaks the world's
    barriers permanently (:meth:`_SharedState.abort_all`), so the world
    goes dead and refuses further jobs — pools replace dead worlds.
    """

    backend = "threads"

    def __init__(self, size: int):
        if size < 1:
            raise ConfigurationError(f"need at least 1 rank, got {size}")
        self.size = size
        self._state = _SharedState(size)
        self._job_qs: List[SimpleQueue] = [SimpleQueue() for _ in range(size)]
        self._result_q: SimpleQueue = SimpleQueue()
        self._job = 0
        self._dead = False
        self._closed = False
        self._threads = [
            # daemon=True: a wedged rank must never be able to block
            # interpreter exit (run()'s watchdog already reports it).
            threading.Thread(
                target=self._worker, args=(r,), name=f"spmd-rank-{r}", daemon=True
            )
            for r in range(size)
        ]
        for t in self._threads:
            t.start()

    def _worker(self, rank: int) -> None:
        comm = ThreadComm(rank, self._state)
        while True:
            msg = self._job_qs[rank].get()
            if msg is None:
                return  # orderly close()
            job, fn, args = msg
            try:
                result = fn(comm) if args is None else fn(comm, *args)
                leaked = comm.pending_ops()
                if leaked:
                    # A posted-but-never-waited op leaves tagged items on
                    # the pair channels that would corrupt the next job's
                    # exchanges — fail loudly instead.
                    raise CommunicationError(
                        f"rank {rank}: job finished with {leaked} "
                        "nonblocking op(s) posted but never waited "
                        "(pending-op leak)"
                    )
            except BaseException as exc:  # noqa: BLE001 — re-raised in caller
                self._state.abort_all()  # unblock peers before reporting
                self._result_q.put((rank, job, False, exc))
                return  # broken barriers are permanent: rank retires
            comm.tracer = None  # jobs arm their own tracer; never leak
            self._result_q.put((rank, job, True, result))

    def healthy(self) -> bool:
        return (
            not self._dead
            and not self._closed
            and all(t.is_alive() for t in self._threads)
        )

    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        timeout: float = 120.0,
    ) -> List[Any]:
        if self._closed:
            raise ConfigurationError("cannot run a job on a closed world")
        if self._dead:
            raise CommunicationError(
                "SPMD world is dead (a previous job failed); spawn a "
                "replacement world"
            )
        if rank_args is not None and len(rank_args) != self.size:
            raise ConfigurationError(
                f"rank_args needs one entry per rank "
                f"({self.size}), got {len(rank_args)}"
            )
        self._job += 1
        job = self._job
        for r in range(self.size):
            args = None if rank_args is None else tuple(rank_args[r])
            self._job_qs[r].put((job, fn, args))
        # One deadline for the whole world, whatever order results land.
        deadline = time.monotonic() + timeout
        results: List[Any] = [None] * self.size
        failures: List[BaseException] = []
        reported = [False] * self.size
        while not all(reported):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._dead = True
                self._state.abort_all()
                stuck = reported.index(False)
                raise SpmdTimeoutError(
                    f"SPMD rank spmd-rank-{stuck} did not finish within "
                    f"the world's {timeout}s budget (deadlock or runaway "
                    "work)",
                    phase="run_spmd",
                )
            try:
                rank, got, ok, payload = self._result_q.get(timeout=remaining)
            except Empty:
                continue
            if got != job:
                continue  # stale report from an abandoned job
            reported[rank] = True
            if ok:
                results[rank] = payload
            else:
                failures.append(payload)
        if failures:
            self._dead = True
            # Prefer the root cause over peers' collapsed-barrier echoes
            # (stable sort: arrival order breaks ties).
            failures.sort(key=lambda e: type(e) is CommunicationError)
            raise failures[0]
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for q in self._job_qs:
            q.put(None)
        deadline = time.monotonic() + 1.0
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        # Still-alive threads are wedged rank jobs: they are daemons and
        # their world is unreachable from here on, so they cannot disturb
        # anything — same abandonment the one-shot driver practiced.


def run_spmd(size: int, fn: Callable[[Comm], Any], timeout: float = 120.0) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` concurrent ranks; return the per-rank
    results, indexed by rank.

    If any rank raises, the world's barrier is broken (unblocking peers)
    and the first failure is re-raised in the caller.  One-shot
    spawn/run/close over :class:`ThreadWorld`.
    """
    world = ThreadWorld(size)
    try:
        return world.run(fn, timeout=timeout)
    finally:
        world.close()
