"""The in-process threads backend of the SPMD runtime.

Each rank runs on its own Python thread.  Collectives are implemented with
a shared mailbox matrix plus a reusable barrier: a phase's senders deposit
references, everyone synchronizes, receivers pick up, everyone synchronizes
again (so the mailbox can be reused).  NumPy array payloads are passed by
reference — callers must not mutate a sent buffer afterwards, same as with
a zero-copy MPI transport; the SPMD algorithms here always send freshly
gathered arrays.

NumPy kernels drop the GIL, so ranks' local phases genuinely overlap on
multicore hosts, but this backend's purpose is *correct concurrent
semantics* (races, deadlocks and ordering are real here), not peak speed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import CommunicationError, ConfigurationError, SpmdTimeoutError
from repro.runtime.api import Comm

__all__ = ["ThreadComm", "run_spmd"]


class _SharedState:
    """State shared by the ``P`` ThreadComm instances of one world."""

    def __init__(self, size: int):
        self.size = size
        self.barrier = threading.Barrier(size)
        # mailbox[src][dst] — written by src, read by dst, between barriers.
        self.mailbox: List[List[Any]] = [[None] * size for _ in range(size)]
        self.gather_slots: List[Any] = [None] * size
        self.failures: List[BaseException] = []
        self.failure_lock = threading.Lock()


class ThreadComm(Comm):
    """One rank's endpoint of an in-process SPMD world."""

    def __init__(self, rank: int, state: _SharedState):
        if not 0 <= rank < state.size:
            raise ConfigurationError(f"rank {rank} outside world of {state.size}")
        self.rank = rank
        self.size = state.size
        self._state = state

    # -- primitives ---------------------------------------------------

    def barrier(self) -> None:
        try:
            self._state.barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise CommunicationError(
                "SPMD world collapsed: a peer rank failed (see its traceback)"
            ) from exc

    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: alltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        row = self._state.mailbox[self.rank]
        for q, payload in enumerate(buckets):
            row[q] = payload
        self.barrier()  # all deposits visible
        received: List[Optional[np.ndarray]] = []
        for p in range(self.size):
            received.append(self._state.mailbox[p][self.rank])
            # Slot [p][rank] is read only by this rank: clear it at pickup
            # so the world does not pin every transferred array for its
            # lifetime (writer p touches it again only after the barrier).
            self._state.mailbox[p][self.rank] = None
        self.barrier()  # all pickups done; mailbox reusable
        return received

    def allgather(self, value: Any) -> List[Any]:
        self._state.gather_slots[self.rank] = value
        self.barrier()
        out = list(self._state.gather_slots)
        self.barrier()
        # Slot [rank] is written only by this rank, and peers read only
        # between the two barriers above — dropping the reference here is
        # race-free and keeps the world from retaining the payload.
        self._state.gather_slots[self.rank] = None
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommunicationError(f"bcast root {root} outside world")
        if self.rank == root:
            self._state.gather_slots[root] = value
        self.barrier()
        out = self._state.gather_slots[root]
        self.barrier()
        if self.rank == root:
            self._state.gather_slots[root] = None
        return out


def run_spmd(size: int, fn: Callable[[Comm], Any], timeout: float = 120.0) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` concurrent ranks; return the per-rank
    results, indexed by rank.

    If any rank raises, the world's barrier is broken (unblocking peers)
    and the first failure is re-raised in the caller.
    """
    if size < 1:
        raise ConfigurationError(f"need at least 1 rank, got {size}")
    state = _SharedState(size)
    results: List[Any] = [None] * size

    def worker(rank: int) -> None:
        comm = ThreadComm(rank, state)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 — re-raised in caller
            with state.failure_lock:
                state.failures.append(exc)
            state.barrier.abort()

    threads = [
        # daemon=True: a wedged rank must never be able to block
        # interpreter exit (the watchdog below already reports it).
        threading.Thread(
            target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True
        )
        for r in range(size)
    ]
    for t in threads:
        t.start()
    # One deadline for the whole world: join each thread with the budget
    # that remains, so total wall-clock is bounded by ``timeout`` rather
    # than ``size × timeout``.
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            state.barrier.abort()
            raise SpmdTimeoutError(
                f"SPMD rank {t.name} did not finish within the world's "
                f"{timeout}s budget (deadlock or runaway work)",
                phase="run_spmd",
            )
    if state.failures:
        raise state.failures[0]
    return results
