"""Persistent SPMD worlds: construction split from job execution.

Historically each :func:`repro.runtime.run_spmd` call built a world (rank
threads or processes, barriers, shared-memory arenas), ran exactly one
``fn(comm)`` and tore everything down.  A serving workload pays that
construction cost per request, so the lifecycle is now split:

* :func:`repro.runtime.driver.spawn_world` builds a world once;
* :meth:`World.run` dispatches a job to the resident ranks and collects
  the per-rank results — arenas, rank processes and barriers are reused
  across jobs;
* :meth:`World.close` releases the ranks and their segments.

``run_spmd`` is now a thin spawn/run/close composition, so the one-shot
contract (first failure re-raised, one wall-clock deadline per job,
broken barrier unblocking survivors) is literally the same code path.

A world on which a job failed or timed out is **dead**: collective
numbering and barrier state are unrecoverable across ranks, so the world
refuses further jobs (:class:`~repro.errors.CommunicationError`) and must
be replaced — that is the pool's job (:mod:`repro.service.pool`), not the
world's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["World"]


class World(ABC):
    """A spawned SPMD world: ``size`` resident ranks awaiting jobs.

    Jobs are callables ``fn(comm, *args)`` executed SPMD-style on every
    rank.  ``rank_args`` (optional, one tuple per rank) carries per-rank
    arguments — the serving layer uses it to ship each rank only its own
    shard instead of closing over the full input.  On the ``procs``
    backend both ``fn`` and the arguments must be picklable (they travel
    over a pipe to the resident rank processes); the ``threads`` backend
    passes references.
    """

    #: Backend name, matching :data:`repro.runtime.driver.BACKENDS`.
    backend: str = "?"
    size: int = 0

    @abstractmethod
    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        timeout: float = 120.0,
    ) -> List[Any]:
        """Run one job on every rank; return per-rank results by rank.

        Mirrors the one-shot contract: the first rank failure is
        re-raised here, a broken barrier unblocks the survivors, and one
        wall-clock ``timeout`` bounds the job.  Any failure or timeout
        marks the world dead.
        """

    @abstractmethod
    def healthy(self) -> bool:
        """Whether the world can accept another job (no rank dead, no
        prior job failed, not closed)."""

    @abstractmethod
    def close(self) -> None:
        """Release ranks and any shared segments.  Idempotent."""

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
