"""The multi-core process backend of the SPMD runtime.

Each rank runs in its own OS process, so NumPy pack/merge kernels execute
on separate cores with no GIL in sight.  Collectives move bulk data through
``multiprocessing.shared_memory`` **double buffers**: every rank owns two
byte arenas; a collective writes its outgoing buckets into the arena of the
current parity, publishes ``(nbytes, offset, kind, dtype)`` descriptors in
a shared control block, crosses one world barrier, and reads peers' buckets
straight out of their arenas.  Alternating parities means a single barrier
per collective: arena ``b`` is only rewritten at collective ``i + 2``,
after barrier ``i + 1`` has proven every reader of collective ``i`` moved
on.  NumPy payloads travel as raw bytes (one memcpy into the arena, one
memcpy out — no pickling on the bulk path); other Python values fall back
to pickle.

Arenas grow on demand (a rank that needs more room creates a new
generation of its segment and bumps a generation counter that readers
check on every pickup), so callers never size anything.  The parent
process is the watchdog: it owns segment cleanup, converts a dead rank
into a broken barrier for the survivors, and enforces one wall-clock
deadline for the whole world, exactly like the threads backend.

**Group-scoped collectives** (Lemma 4) synchronize through per-rank
``post``/``done`` sequence counters in the control block instead of the
world barrier: a group member publishes its descriptors, advances its
``post`` counter, and waits only for its group peers' counters — wait
fan-in and descriptor slot work drop from ``O(P)`` to ``O(len(group))``,
and disjoint groups cross their exchanges concurrently.  Because group
members no longer synchronize with the rest of the world, the
single-barrier parity argument is generalized: every collective is
numbered, every rank advances ``done[rank]`` when its reads finish, and a
rank re-uses an arena parity only after the readers it served two
collectives ago have advanced past that collective (checked wait-free in
the all-world-barrier steady state).  The counter handshake assumes
program-order store visibility across ranks (true on x86's TSO model and
in practice wherever CPython's shared-memory users run); all collectives
on a world must be called by every rank in the same order, which the
world-barrier protocol already required.

This backend runs ranks in *separate address spaces*: in-process state
(checkpoint stores, fault injectors) is copied at fork, not shared — the
fault-injection transport refuses to arm on top of it for that reason
(see :class:`repro.faults.transport.ReliableComm`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue as queue_mod
import secrets
import threading
import time
from contextlib import suppress
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _sentinel_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CommunicationError, ConfigurationError, SpmdTimeoutError
from repro.runtime.api import Comm, PendingOp
from repro.runtime.world import World
from repro.trace.recorder import trace_span

__all__ = ["ProcComm", "ProcWorld", "run_spmd_procs"]

#: Bucket encodings in the control block.
_KIND_NONE = 0
_KIND_NDARRAY = 1
_KIND_PICKLE = 2

#: Initial arena capacity per (rank, parity) — grown on demand.
_DEFAULT_ARENA_BYTES = 1 << 16


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


#: Fewer cores than typical worlds — the group-sync spin loops must
#: yield immediately instead of burning the core their peer needs.
_OVERSUBSCRIBED = _usable_cpus() < 4


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker side effects.

    On Python < 3.13 attaching also *registers* the name with the resource
    tracker (there is no ``track=False``), and the forked ranks share one
    tracker process — the duplicate registrations then collapse into
    spurious KeyError tracebacks at teardown.  Registration must stay
    symmetric (exactly one ``create`` per name, exactly one ``unlink``),
    so attaches are made silent.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _encode_dtype(dtype: np.dtype) -> Optional[int]:
    """Pack a simple dtype's ``.str`` (e.g. ``'<u4'``) into one int64;
    ``None`` when it does not fit and the bucket must travel pickled."""
    if dtype.hasobject:
        return None
    code = dtype.str.encode("ascii", "replace")
    if len(code) > 8:
        return None
    return int.from_bytes(code.ljust(8, b"\0"), "little")


def _decode_dtype(code: int) -> np.dtype:
    raw = int(code).to_bytes(8, "little").rstrip(b"\0")
    return np.dtype(raw.decode("ascii"))


def _arena_name(base: str, rank: int, parity: int, gen: int) -> str:
    return f"{base}-{rank}-{parity}-{gen}"


class _ControlBlock:
    """Typed views over the world's shared int64 control segment.

    Layout (all int64)::

        gen[P][2]            arena generation per (rank, parity)
        cap[P][2]            arena capacity in bytes per (rank, parity)
        post[P]              last collective whose descriptors rank posted
                             via the group handshake (group sync)
        done[P]              last collective rank fully completed, reads
                             included (arena-reuse guard)
        meta[2][P][P][4]     per parity, src, dst: nbytes, offset, kind, dtype

    Call :meth:`release` before closing the underlying segment — the NumPy
    views export the buffer and would otherwise make ``close()`` raise.
    """

    def __init__(self, shm: shared_memory.SharedMemory, P: int):
        self.shm = shm
        words = np.ndarray((6 * P + 2 * P * P * 4,), dtype=np.int64, buffer=shm.buf)
        self.gen = words[: 2 * P].reshape(P, 2)
        self.cap = words[2 * P : 4 * P].reshape(P, 2)
        self.post = words[4 * P : 5 * P]
        self.done = words[5 * P : 6 * P]
        self.meta = words[6 * P :].reshape(2, P, P, 4)

    @staticmethod
    def nbytes(P: int) -> int:
        return 8 * (6 * P + 2 * P * P * 4)

    def release(self) -> None:
        self.gen = self.cap = self.post = self.done = self.meta = None


class _ProcPending(PendingOp):
    """A posted nonblocking op on the procs backend.

    The arena bytes and descriptors were published at post time and this
    rank's ``post`` counter advanced; completion spins on the peers'
    counters (only inside ``wait()``), runs the op's read closure against
    the parity window, and feeds the collective into the contiguous
    ``done`` accounting.
    """

    __slots__ = ("_k", "_peers", "_finish")

    def __init__(self, comm: "ProcComm", k: int, peers, finish):
        super().__init__(comm)
        self._k = k
        self._peers = peers
        self._finish = finish

    def _ready(self) -> bool:
        comm = self._comm
        post = comm._ctl.post
        return all(
            int(post[p]) >= self._k for p in self._peers if p != comm.rank
        )

    def _complete(self) -> Any:
        comm = self._comm
        with trace_span(comm.tracer, "wait", "complete"):
            comm._spin(comm._ctl.post, self._peers, self._k, "pending-op post")
            result = self._finish()
        comm._mark_done(self._k)
        return result


class ProcComm(Comm):
    """One rank's endpoint of a multi-process SPMD world."""

    #: Ranks live in separate address spaces (see :class:`Comm`).
    in_process = False
    #: Nonblocking collectives genuinely overlap here: posting writes the
    #: arena + descriptors and advances ``post[rank]``; completion spins
    #: on peers' counters only inside ``wait()``.
    overlap_capable = True

    def __init__(
        self,
        rank: int,
        size: int,
        base: str,
        barrier,
        spin_budget: Optional[int] = None,
    ):
        if not 0 <= rank < size:
            raise ConfigurationError(f"rank {rank} outside world of {size}")
        self.rank = rank
        self.size = size
        self._base = base
        self._barrier = barrier
        self._ctl = _ControlBlock(_attach(f"{base}-ctl"), size)
        #: Attached segments, (rank, parity) -> (generation, SharedMemory).
        self._segs = {}
        self._parity = 0
        #: Collectives entered by this rank (the world executes the same
        #: sequence, so the index is globally meaningful).
        self._coll = 0
        #: Highest collective index every rank is known to have completed
        #: (learned at world-barrier crossings; lets the arena-reuse guard
        #: skip its counter scan in the all-world steady state).
        self._world_seq = 0
        #: Reader sets by collective index — who may still hold views into
        #: the arena that collective filled.  Registered at post time,
        #: consumed by the arena-reuse guard two collectives later.
        self._readers: Dict[int, Tuple[int, ...]] = {}
        #: Contiguous-completion bookkeeping for ``done[rank]``: with
        #: nonblocking ops, collectives can *complete* out of post order,
        #: but the shared counter must stay monotone — it advances only to
        #: the highest ``k`` with every collective ``<= k`` complete.
        self._done_upto = 0
        self._done_pending: set = set()
        #: Iterations of pure busy-spin before yielding in completion
        #: polls.  From the host profile when the launcher provides it;
        #: the default burns a few hundred iterations only when cores
        #: outnumber typical worlds (on a 1-core CI host, spinning just
        #: delays the peer being waited for — yield immediately).
        self._spin_budget = (
            spin_budget
            if spin_budget is not None
            else (0 if _OVERSUBSCRIBED else 256)
        )
        for b in (0, 1):
            gen = int(self._ctl.gen[rank, b])
            self._segs[(rank, b)] = (gen, _attach(_arena_name(base, rank, b, gen)))

    # -- primitives ---------------------------------------------------

    def _wait_world(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise CommunicationError(
                "SPMD world collapsed: a peer rank failed (see its traceback)"
            ) from exc

    def barrier(self) -> None:
        with trace_span(self.tracer, "wait", "barrier"):
            self._wait_world()
        # Everyone crossed with the same collective count (collectives are
        # world-ordered), so everything so far is globally complete —
        # *unless* ops are still pending: a posted-but-unwaited collective
        # crosses barriers unfinished, so the fast path must not record it
        # (SPMD order means peers carry the same pending set here).
        if self._pending_ops == 0:
            self._world_seq = max(self._world_seq, self._coll)

    # -- the collective sequence protocol ------------------------------

    def _spin(self, cells: np.ndarray, who, target: int, what: str) -> None:
        """Wait until ``cells[p] >= target`` for every ``p`` in ``who``,
        yielding the CPU between checks; a broken world barrier (peer
        failure, parent watchdog) aborts the wait."""
        busy = self._spin_budget
        for p in who:
            if p == self.rank:
                continue
            tries = 0
            while int(cells[p]) < target:
                if self._barrier.broken:
                    raise CommunicationError(
                        f"SPMD world collapsed: a peer rank failed while "
                        f"this rank waited for rank {p} ({what})"
                    )
                tries += 1
                # Busy for the budget (group peers are usually in step),
                # then yield the core, then back off to 50 µs sleeps.
                if tries > busy:
                    time.sleep(0 if tries <= busy + 64 else 5e-5)

    def _begin_collective(self) -> int:
        """Number this collective and enforce arena re-use safety: the
        readers served two collectives ago (same parity) must have
        finished before this rank rewrites that arena.  Free whenever a
        world barrier has been crossed since — only sequences that mix in
        group-scoped or nonblocking collectives ever wait here."""
        if self._pending_ops >= 2:
            # A third in-flight collective would rewrite the arena parity
            # of the oldest pending one, and the reuse guard below would
            # wait on completions that, in SPMD program order, can only
            # happen *after* this post — a guaranteed deadlock.  Two
            # in-flight ops (the chunk pipeline's depth) is the most the
            # double-buffer protocol can support.
            raise CommunicationError(
                f"rank {self.rank}: a third collective posted while two "
                "nonblocking ops are in flight — the double-buffer arena "
                "protocol supports at most two; wait() one first"
            )
        self._coll += 1
        k = self._coll
        readers = self._readers.pop(k - 2, None)
        if readers and self._world_seq < k - 2:
            with trace_span(self.tracer, "wait", "arena-reuse"):
                self._spin(self._ctl.done, readers, k - 2, "arena re-use")
        return k

    def _mark_done(self, k: int) -> None:
        """Record completion of collective ``k`` (reads included).  With
        out-of-order ``wait()`` calls completions arrive unordered; the
        shared ``done`` counter advances only contiguously."""
        pend = self._done_pending
        pend.add(k)
        upto = self._done_upto
        while upto + 1 in pend:
            upto += 1
            pend.discard(upto)
        if upto != self._done_upto:
            self._done_upto = upto
            self._ctl.done[self.rank] = upto

    def _end_collective(self, k: int, readers) -> None:
        """Publish completion of collective ``k`` and remember who may
        hold views into the arena it filled."""
        self._readers[k] = tuple(readers)
        self._mark_done(k)

    def alltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: alltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        if self.tracer is not None:
            # One descriptor slot per destination: the size-wide cost the
            # pairwise sendrecv specialization avoids (it writes one).
            self.tracer.add("coll.alltoallv")
            self.tracer.add("coll.slots", self.size)
        received = self._exchange(list(buckets))
        received[self.rank] = buckets[self.rank]  # self-bucket: by reference
        return received

    def allgather(self, value: Any) -> List[Any]:
        if self.tracer is not None:
            self.tracer.add("coll.allgather")
        out = self._exchange([value] * self.size, share_payload=True)
        out[self.rank] = value
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommunicationError(f"bcast root {root} outside world")
        if self.tracer is not None:
            self.tracer.add("coll.bcast")
        sends: List[Any] = [None] * self.size
        if self.rank == root:
            sends = [value] * self.size
        out = self._exchange(sends, share_payload=True)
        return value if self.rank == root else out[root]

    def sendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> Optional[np.ndarray]:
        """Pairwise exchange: one descriptor written, one read.

        The arena parity protocol still needs every rank to cross the
        collective barrier together (so ``sendrecv`` remains a matched,
        world-wide step here), but each rank serializes at most one
        payload and touches exactly one descriptor slot each way, instead
        of the fallback's ``size``-wide serialize/scan loops.
        """
        if not (0 <= dst < self.size and 0 <= src < self.size):
            raise CommunicationError(
                f"rank {self.rank}: sendrecv peers ({dst}, {src}) outside "
                f"world of {self.size}"
            )
        me = self.rank
        tr = self.tracer
        with trace_span(tr, "transfer", "sendrecv"):
            if tr is not None:
                tr.add("coll.sendrecv")
                tr.add("coll.slots")
            k = self._begin_collective()
            b = self._parity
            self._parity ^= 1
            ctl = self._ctl
            # Clear my descriptor row (vectorized) so a mismatched pattern
            # reads NONE, never a stale descriptor from two collectives ago.
            ctl.meta[b, me] = (-1, 0, _KIND_NONE, 0)
            wrote = dst != me and send is not None
            if wrote:
                kind, raw, dtcode = self._serialize(send)
                nbytes = len(raw)
                if tr is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", nbytes)
                arena = self._ensure_capacity(b, nbytes)
                arena.buf[:nbytes] = raw
                ctl.meta[b, me, dst] = (nbytes, 0, kind, dtcode)
            with trace_span(tr, "wait", "barrier"):
                self._wait_world()
            if self._pending_ops == 0:
                self._world_seq = max(self._world_seq, k - 1)
            try:
                if src == me:
                    return None
                nbytes, off, kind, dtcode = (int(x) for x in ctl.meta[b, src, me])
                if kind == _KIND_NONE:
                    return None
                seg = self._peer_arena(src, b)
                raw = seg.buf[off : off + nbytes]
                try:
                    if kind == _KIND_NDARRAY:
                        # Copy out: the sender recycles this arena two
                        # collectives from now (same rule as _exchange).
                        return np.frombuffer(
                            raw, dtype=_decode_dtype(dtcode)
                        ).copy()
                    return pickle.loads(raw)
                finally:
                    raw.release()
            finally:
                self._end_collective(k, (dst,) if wrote else ())

    # -- the double-buffer exchange ------------------------------------

    def _exchange(
        self,
        sends: List[Any],
        share_payload: bool = False,
        group: Optional[Tuple[int, ...]] = None,
    ) -> List[Any]:
        """One collective: deposit ``sends[q]`` for each peer ``q``,
        synchronize, pick up what every peer deposited for this rank.

        ``share_payload=True`` asserts every non-None entry is the same
        object (allgather/bcast), so it is serialized once and every
        descriptor points at the same extent of the arena.

        ``group`` scopes the collective (Lemma 4): only the group's
        descriptor slots are written and scanned, and synchronization is
        the post-counter handshake among the group's members instead of
        the world barrier.  ``None`` is the world-wide collective.
        """
        me, P = self.rank, self.size
        targets = range(P) if group is None else group
        tr = self.tracer
        k = self._begin_collective()
        b = self._parity
        self._parity ^= 1
        ctl = self._ctl
        self._post_payloads(b, sends, targets, share_payload)

        if group is None:
            with trace_span(tr, "wait", "barrier"):
                self._wait_world()
            # Crossing collective ``k``'s barrier proves every rank
            # entered ``k``, i.e. (with nothing pending) completed
            # ``k - 1``.
            if self._pending_ops == 0:
                self._world_seq = max(self._world_seq, k - 1)
        else:
            ctl.post[me] = k
            with trace_span(tr, "wait", "group-post"):
                self._spin(ctl.post, group, k, "group descriptor post")

        out = self._read_targets(b, targets)
        self._end_collective(k, tuple(range(P)) if group is None else group)
        return out

    def _post_payloads(
        self,
        b: int,
        sends: List[Any],
        targets,
        share_payload: bool = False,
    ) -> None:
        """The deposit half of an exchange: serialize ``sends[q]`` per
        target, lay the blobs out in the parity-``b`` arena, write the
        bytes and publish the descriptors.  No synchronization."""
        me = self.rank
        tr = self.tracer
        ctl = self._ctl

        # Serialize: (kind, buffer, dtype_code) per destination.
        blobs: dict = {}
        shared: Optional[Tuple[int, memoryview, int]] = None
        for q in targets:
            payload = sends[q]
            if q == me or payload is None:
                blobs[q] = (_KIND_NONE, None, 0)
            elif share_payload and shared is not None:
                blobs[q] = shared
            else:
                blob = self._serialize(payload)
                blobs[q] = blob
                if share_payload:
                    shared = blob

        # Lay out the arena; a shared payload occupies one extent.
        offsets: dict = {}
        total = 0
        shared_off: Optional[int] = None
        for q in targets:
            kind, raw, _ = blobs[q]
            if kind == _KIND_NONE:
                continue
            if share_payload and shared_off is not None:
                offsets[q] = shared_off
                continue
            offsets[q] = total
            if share_payload:
                shared_off = total
            total += len(raw)

        arena = self._ensure_capacity(b, total)
        view = arena.buf
        written = set()
        for q in targets:
            kind, raw, dtcode = blobs[q]
            if kind == _KIND_NONE:
                ctl.meta[b, me, q] = (-1, 0, _KIND_NONE, 0)
                continue
            off = offsets[q]
            if off not in written:
                view[off : off + len(raw)] = raw
                written.add(off)
                if tr is not None:
                    tr.add("bytes_sent", len(raw))
            if tr is not None:
                tr.add("messages")
            ctl.meta[b, me, q] = (len(raw), off, kind, dtcode)

    def _read_targets(self, b: int, targets) -> List[Any]:
        """The pickup half of an exchange: scan the targets' descriptors
        of parity ``b`` and copy out every payload addressed to this rank.
        Callers synchronize first and mark completion after."""
        me, P = self.rank, self.size
        ctl = self._ctl
        out: List[Any] = [None] * P
        for p in targets:
            if p == me:
                continue
            nbytes, off, kind, dtcode = (int(x) for x in ctl.meta[b, p, me])
            if kind == _KIND_NONE:
                continue
            seg = self._peer_arena(p, b)
            raw = seg.buf[off : off + nbytes]
            try:
                if kind == _KIND_NDARRAY:
                    # Copy out — required, not habit: the sender recycles
                    # this arena two collectives from now, while the
                    # ``alltoallv``/``allgather`` contract hands the caller
                    # an array it may hold indefinitely (the SPMD sort's
                    # restart path does).  A view would silently change
                    # under the holder at the sender's collective ``k+2``;
                    # ``tests/test_group_fused.py`` pins both halves of
                    # this argument.  The fused path
                    # (:meth:`alltoallv_fused`) avoids the copy instead of
                    # unsafely skipping it: it scatters straight from the
                    # peer window into the caller's buffer while the
                    # parity window is provably open.
                    out[p] = np.frombuffer(raw, dtype=_decode_dtype(dtcode)).copy()
                else:
                    out[p] = pickle.loads(raw)
            finally:
                raw.release()
        return out

    def group_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> List[Optional[np.ndarray]]:
        """Group-scoped ``alltoallv``: descriptor writes/scans and the
        synchronization handshake touch only the group's ``len(group)``
        slots and ranks instead of all ``P`` (Lemma 4)."""
        g = self._check_group(buckets, group)
        tr = self.tracer
        if tr is not None:
            tr.add("coll.group_alltoallv")
            tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
        received = self._exchange(list(buckets), group=g)
        received[self.rank] = buckets[self.rank]  # self-bucket: by reference
        return received

    def alltoallv_fused(
        self,
        data: np.ndarray,
        plan,
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> None:
        """Zero-copy fused pack/transfer/unpack over the shared arenas.

        Pack is one ``np.take`` straight from ``data`` into this rank's
        send window — no per-destination bucket arrays, no pickling.
        Unpack scatters each arrival straight out of the peer's receive
        window into ``out``'s final slots — no ``frombuffer().copy()``, no
        concatenate.  Every transferred element is copied exactly twice
        end to end (in, out of shared memory), the hardware minimum for a
        cross-address-space move; the window views never outlive the
        collective, which is what the arena parity protocol licenses.

        Falls back to the composed default (bucket arrays over
        :meth:`group_alltoallv`) for payloads the raw-ndarray descriptor
        encoding cannot carry.
        """
        data = np.asarray(data)
        dtcode = _encode_dtype(data.dtype) if data.ndim == 1 else None
        if (
            dtcode is None
            or out.ndim != 1
            or out.dtype != data.dtype
            or not data.flags.c_contiguous
        ):
            return super().alltoallv_fused(data, plan, out, group=group)
        me, P = self.rank, self.size
        g = tuple(group) if group is not None else tuple(range(P))
        tr = self.tracer
        if tr is not None:
            tr.add("coll.fused")
            tr.add("coll.fused_direct")
            if group is not None and len(g) < P:
                tr.add("coll.group_alltoallv")
                tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
        k = self._begin_collective()
        b = self._parity
        self._parity ^= 1
        ctl = self._ctl
        self._fused_post(b, data, plan, g, dtcode)

        if len(g) == P:
            with trace_span(tr, "wait", "barrier"):
                self._wait_world()
            if self._pending_ops == 0:
                self._world_seq = max(self._world_seq, k - 1)
        else:
            ctl.post[me] = k
            with trace_span(tr, "wait", "group-post"):
                self._spin(ctl.post, g, k, "group descriptor post")

        self._fused_unpack(b, g, plan, data.dtype, dtcode, out)
        self._end_collective(k, g)

    def _fused_post(
        self, b: int, data: np.ndarray, plan, g, dtcode: int
    ) -> None:
        """Fused pack: one gather pass straight from ``data`` into this
        rank's parity-``b`` send window, plus the descriptor row.  No
        synchronization."""
        me = self.rank
        tr = self.tracer
        ctl = self._ctl
        members = set(g)
        itemsize = data.dtype.itemsize
        gather = plan.send_concat_src
        arena = self._ensure_capacity(b, gather.size * itemsize)
        if gather.size:
            window = np.ndarray((gather.size,), dtype=data.dtype, buffer=arena.buf)
            np.take(data, gather, out=window)
            del window
        for q in g:
            ctl.meta[b, me, q] = (-1, 0, _KIND_NONE, 0)
        for q, off, count in plan.send_extents:
            if q not in members or q == me:
                raise CommunicationError(
                    f"rank {me}: fused plan sends to rank {q}, outside its "
                    f"communication group {g}"
                )
            if tr is not None:
                tr.add("messages")
                tr.add("bytes_sent", count * itemsize)
            ctl.meta[b, me, q] = (
                count * itemsize,
                off * itemsize,
                _KIND_NDARRAY,
                dtcode,
            )

    def _fused_unpack(
        self, b: int, g, plan, dtype: np.dtype, dtcode: int, out: np.ndarray
    ) -> None:
        """Fused unpack: scatter straight from each peer's parity-``b``
        receive window into the final slots of ``out``.  Callers
        synchronize first and mark completion after."""
        me = self.rank
        ctl = self._ctl
        itemsize = dtype.itemsize
        expected = dict(plan.recv_sorted)
        for p in g:
            if p == me:
                continue
            nbytes, off, kind, code = (int(x) for x in ctl.meta[b, p, me])
            slots = expected.pop(p, None)
            if kind == _KIND_NONE:
                if slots is not None:
                    raise CommunicationError(
                        f"rank {me}: expected {slots.size} keys from rank "
                        f"{p}, got none"
                    )
                continue
            if slots is None:
                raise CommunicationError(
                    f"rank {me}: unexpected payload of {nbytes} bytes from "
                    f"rank {p}"
                )
            if (
                kind != _KIND_NDARRAY
                or code != dtcode
                or nbytes != slots.size * itemsize
            ):
                raise CommunicationError(
                    f"rank {me}: rank {p} sent a mismatched fused payload "
                    f"({nbytes} bytes, kind {kind}) where {slots.size} "
                    f"elements of {dtype} were expected"
                )
            seg = self._peer_arena(p, b)
            window = np.ndarray(
                (slots.size,), dtype=dtype, buffer=seg.buf, offset=off
            )
            out[slots] = window
            del window
        if expected:
            raise CommunicationError(
                f"rank {me}: no payload arrived from rank(s) "
                f"{sorted(expected)}"
            )

    # -- nonblocking post/complete pairs ------------------------------
    #
    # Pending ops never touch the world barrier: the post half advances
    # this rank's ``post`` counter after publishing its descriptors, and
    # the complete half spins on the peers' counters — same handshake the
    # group-scoped collectives already use, applied at any scope.  At most
    # two ops may be in flight (``_begin_collective`` enforces it): a
    # third would need the arena parity of the oldest, whose readers can
    # only finish after this very post in SPMD program order.

    def _ipost(self, sends: List[Any], targets, readers) -> Tuple[int, int]:
        """Shared post half of the nonblocking exchanges: number the
        collective, deposit payloads + descriptors, register the readers
        for the arena-reuse guard, advance this rank's post counter."""
        k = self._begin_collective()
        b = self._parity
        self._parity ^= 1
        with trace_span(self.tracer, "wait", "post"):
            self._post_payloads(b, sends, targets)
            self._readers[k] = tuple(readers)
            self._ctl.post[self.rank] = k
        return k, b

    def ialltoallv(
        self, buckets: Sequence[Optional[np.ndarray]]
    ) -> PendingOp:
        if len(buckets) != self.size:
            raise CommunicationError(
                f"rank {self.rank}: ialltoallv needs {self.size} buckets, "
                f"got {len(buckets)}"
            )
        me, P = self.rank, self.size
        tr = self.tracer
        if tr is not None:
            tr.add("coll.alltoallv")
            tr.add("coll.overlapped")
            tr.add("coll.slots", P)
        targets = tuple(range(P))
        k, b = self._ipost(list(buckets), targets, targets)
        own = buckets[me]

        def finish() -> List[Optional[np.ndarray]]:
            out = self._read_targets(b, targets)
            out[me] = own
            return out

        return _ProcPending(self, k, targets, finish)

    def igroup_alltoallv(
        self,
        buckets: Sequence[Optional[np.ndarray]],
        group: Sequence[int],
    ) -> PendingOp:
        g = self._check_group(buckets, group)
        me = self.rank
        tr = self.tracer
        if tr is not None:
            tr.add("coll.group_alltoallv")
            tr.add("coll.group_size", len(g))
            tr.add("coll.overlapped")
            tr.add("coll.slots", len(g))
        k, b = self._ipost(list(buckets), g, g)
        own = buckets[me]

        def finish() -> List[Optional[np.ndarray]]:
            out = self._read_targets(b, g)
            out[me] = own
            return out

        return _ProcPending(self, k, g, finish)

    def isendrecv(
        self, send: Optional[np.ndarray], dst: int, src: int
    ) -> PendingOp:
        """Nonblocking pairwise exchange.  Still a world-ordered
        collective (every rank must post it at the same program point, as
        with the blocking spelling), but completion spins only on the
        source's post counter — no barrier anywhere."""
        if not (0 <= dst < self.size and 0 <= src < self.size):
            raise CommunicationError(
                f"rank {self.rank}: isendrecv peers ({dst}, {src}) outside "
                f"world of {self.size}"
            )
        me = self.rank
        tr = self.tracer
        if tr is not None:
            tr.add("coll.sendrecv")
            tr.add("coll.overlapped")
            tr.add("coll.slots")
        k = self._begin_collective()
        b = self._parity
        self._parity ^= 1
        ctl = self._ctl
        with trace_span(tr, "wait", "post"):
            ctl.meta[b, me] = (-1, 0, _KIND_NONE, 0)
            wrote = dst != me and send is not None
            if wrote:
                kind, raw, dtcode = self._serialize(send)
                nbytes = len(raw)
                if tr is not None:
                    tr.add("messages")
                    tr.add("bytes_sent", nbytes)
                arena = self._ensure_capacity(b, nbytes)
                arena.buf[:nbytes] = raw
                ctl.meta[b, me, dst] = (nbytes, 0, kind, dtcode)
            self._readers[k] = (dst,) if wrote else ()
            ctl.post[me] = k
        peers = (src,) if src != me else ()

        def finish() -> Optional[np.ndarray]:
            if src == me:
                return None
            nbytes, off, kind, dtcode = (int(x) for x in ctl.meta[b, src, me])
            if kind == _KIND_NONE:
                return None
            seg = self._peer_arena(src, b)
            raw = seg.buf[off : off + nbytes]
            try:
                if kind == _KIND_NDARRAY:
                    return np.frombuffer(
                        raw, dtype=_decode_dtype(dtcode)
                    ).copy()
                return pickle.loads(raw)
            finally:
                raw.release()

        return _ProcPending(self, k, peers, finish)

    def ialltoallv_fused(
        self,
        data: np.ndarray,
        plan,
        out: np.ndarray,
        group: Optional[Sequence[int]] = None,
    ) -> PendingOp:
        """Nonblocking fused exchange: the gather into this rank's send
        window happens at post time; the scatter out of the peers' windows
        into ``out`` happens at ``wait()``.  Falls back to the composed
        (eager) default for payloads the raw-ndarray descriptor encoding
        cannot carry, exactly like the blocking spelling."""
        data = np.asarray(data)
        dtcode = _encode_dtype(data.dtype) if data.ndim == 1 else None
        if (
            dtcode is None
            or out.ndim != 1
            or out.dtype != data.dtype
            or not data.flags.c_contiguous
        ):
            return super().ialltoallv_fused(data, plan, out, group=group)
        me, P = self.rank, self.size
        g = tuple(group) if group is not None else tuple(range(P))
        tr = self.tracer
        if tr is not None:
            tr.add("coll.fused")
            tr.add("coll.fused_direct")
            tr.add("coll.overlapped")
            if group is not None and len(g) < P:
                tr.add("coll.group_alltoallv")
                tr.add("coll.group_size", len(g))
            tr.add("coll.slots", len(g))
        k = self._begin_collective()
        b = self._parity
        self._parity ^= 1
        with trace_span(tr, "wait", "post"):
            self._fused_post(b, data, plan, g, dtcode)
            self._readers[k] = g
            self._ctl.post[me] = k
        dtype = data.dtype

        def finish() -> None:
            self._fused_unpack(b, g, plan, dtype, dtcode, out)
            return None

        return _ProcPending(self, k, g, finish)

    def _serialize(self, payload: Any) -> Tuple[int, memoryview, int]:
        if isinstance(payload, np.ndarray) and payload.ndim == 1:
            dtcode = _encode_dtype(payload.dtype)
            if dtcode is not None:
                data = np.ascontiguousarray(payload)
                return (_KIND_NDARRAY, data.view(np.uint8).data, dtcode)
        return (_KIND_PICKLE, memoryview(pickle.dumps(payload)), 0)

    def _ensure_capacity(self, parity: int, nbytes: int) -> shared_memory.SharedMemory:
        """My arena of this parity, regrown (next power of two) if the
        collective needs more room than it currently has."""
        me = self.rank
        gen, seg = self._segs[(me, parity)]
        cap = int(self._ctl.cap[me, parity])
        if nbytes <= cap:
            return seg
        new_cap = max(cap, _DEFAULT_ARENA_BYTES)
        while new_cap < nbytes:
            new_cap *= 2
        new_gen = gen + 1
        fresh = shared_memory.SharedMemory(
            create=True,
            name=_arena_name(self._base, me, parity, new_gen),
            size=new_cap,
        )
        # Publish the new generation *before* retiring the old segment so
        # the driver's teardown sweep always finds the live name.
        self._ctl.gen[me, parity] = new_gen
        self._ctl.cap[me, parity] = new_cap
        seg.close()
        with suppress(FileNotFoundError):
            seg.unlink()
        self._segs[(me, parity)] = (new_gen, fresh)
        return fresh

    def _peer_arena(self, p: int, parity: int) -> shared_memory.SharedMemory:
        """Attach (with caching) to peer ``p``'s arena of this parity,
        re-attaching when the peer grew it to a new generation."""
        gen = int(self._ctl.gen[p, parity])
        cached = self._segs.get((p, parity))
        if cached is not None and cached[0] == gen:
            return cached[1]
        if cached is not None:
            with suppress(Exception):
                cached[1].close()
        seg = _attach(_arena_name(self._base, p, parity, gen))
        self._segs[(p, parity)] = (gen, seg)
        return seg

    def _close(self) -> None:
        for _, seg in self._segs.values():
            with suppress(Exception):
                seg.close()
        self._segs.clear()
        ctl_shm = self._ctl.shm
        self._ctl.release()
        self._ctl = None
        with suppress(Exception):
            ctl_shm.close()


# -- the world driver ----------------------------------------------------


def _put(result_q, rank: int, job: int, ok: bool, payload: Any) -> None:
    """Ship ``(rank, job, ok, payload)`` to the parent, pre-pickled so
    that a pickling failure surfaces *here* (``mp.Queue`` serializes in a
    feeder thread, where an error would silently strand the parent)."""
    try:
        blob = pickle.dumps((rank, job, ok, payload))
    except Exception as exc:  # noqa: BLE001 — degrade to a description
        blob = pickle.dumps(
            (
                rank,
                job,
                False,
                CommunicationError(
                    f"rank {rank} produced an unpicklable "
                    f"{'result' if ok else 'error'} "
                    f"({type(payload).__name__}): {exc}"
                ),
            )
        )
    result_q.put(blob)


def _run_one(comm, fn, args, job: int, barrier, result_q) -> bool:
    """Run one job on this rank; report to the parent.  Returns whether
    the rank may accept further jobs (a failure breaks the world barrier,
    which is unrecoverable — collective numbering across ranks diverges —
    so the rank retires)."""
    try:
        result = fn(comm) if args is None else fn(comm, *args)
        leaked = comm.pending_ops()
        if leaked:
            # A posted-but-never-waited op leaves peers spinning on this
            # rank's counters and desynchronizes the collective numbering
            # for the next job — fail loudly instead.
            raise CommunicationError(
                f"rank {comm.rank}: job finished with {leaked} nonblocking "
                "op(s) posted but never waited (pending-op leak)"
            )
    except BaseException as exc:  # noqa: BLE001 — re-raised in the parent
        barrier.abort()  # unblock peers before reporting
        _put(result_q, comm.rank, job, False, exc)
        return False
    comm.tracer = None  # jobs arm their own tracer; never leak across jobs
    _put(result_q, comm.rank, job, True, result)
    return True


def _worker_loop(
    rank: int,
    size: int,
    base: str,
    barrier,
    job_conn,
    result_q,
    first_job,
    spin_budget: Optional[int] = None,
) -> None:
    """Resident rank process: one ProcComm (arenas, collective counters)
    for the world's lifetime, jobs arriving over ``job_conn``.

    ``first_job`` rides along at fork so one-shot callers
    (:func:`run_spmd_procs`) keep closure support — anything sent through
    the pipe later must be picklable.
    """
    comm = ProcComm(rank, size, base, barrier, spin_budget=spin_budget)
    try:
        if first_job is not None and not _run_one(
            comm, first_job, None, 1, barrier, result_q
        ):
            return
        while True:
            try:
                msg = job_conn.recv()
            except (EOFError, OSError):
                return  # parent went away: retire quietly
            if msg is None:
                return  # orderly close()
            job, fn, args = msg
            if not _run_one(comm, fn, args, job, barrier, result_q):
                return
    finally:
        with suppress(Exception):
            comm._close()
        with suppress(Exception):
            job_conn.close()


def _sweep_segments(ctl_shm: shared_memory.SharedMemory, base: str, size: int) -> None:
    """Unlink every arena generation the control block knows about (plus
    one ahead, in case a rank died between creating a generation and
    publishing it), then the control segment itself."""
    gens = []
    ctl = _ControlBlock(ctl_shm, size)
    for r in range(size):
        for b in (0, 1):
            gens.append((r, b, int(ctl.gen[r, b])))
    ctl.release()
    for r, b, gen in gens:
        for g in (gen, gen + 1):
            with suppress(Exception):
                stale = shared_memory.SharedMemory(name=_arena_name(base, r, b, g))
                stale.close()
                stale.unlink()
    with suppress(Exception):
        ctl_shm.close()
    with suppress(Exception):
        ctl_shm.unlink()


#: Worlds this process spawned and has not yet closed, swept at
#: interpreter exit so a crashed or careless run cannot strand /dev/shm
#: segments (or resident rank processes).  Keyed by ``id(world)``; the
#: creating pid rides along so a forked child inheriting the registry
#: never closes its parent's worlds (rank processes exit via
#: ``os._exit`` and run no atexit hooks, but user-forked helpers do).
_LIVE: Dict[int, Tuple[int, "ProcWorld"]] = {}


def _sweep_leaked_worlds() -> None:
    me = os.getpid()
    for pid, world in list(_LIVE.values()):
        if pid != me:
            continue
        with suppress(Exception):
            world.close(join_timeout=0.2)
    # Same hygiene for the out-of-core tier: spill directories whose
    # owning process is gone are dead weight on the same host, so the
    # shm sweep reclaims them too (deferred import — the sweep must
    # never be the thing that fails interpreter exit).
    with suppress(Exception):
        from repro.extsort import sweep_orphaned_spill_dirs

        sweep_orphaned_spill_dirs()


atexit.register(_sweep_leaked_worlds)


class ProcWorld(World):
    """A persistent multi-process SPMD world.

    ``size`` rank processes are forked once; each builds its
    :class:`ProcComm` (attaching the shared-memory arenas) and then loops
    on a job pipe.  :meth:`run` ships ``(fn, args)`` to every rank and
    collects results, so repeated sorts pay the fork + arena cost once.
    Arena state (generations, collective counters) carries across jobs —
    safe because every rank executes the same job sequence and the parent
    collects all of job *k* before dispatching *k + 1*.

    A job failure breaks the world barrier, which is unrecoverable (the
    surviving ranks' collective numbering has diverged): the world goes
    dead and :meth:`run` refuses further work.  Pools replace dead worlds
    (:mod:`repro.service.pool`).
    """

    backend = "procs"

    def __init__(
        self,
        size: int,
        arena_bytes: int = _DEFAULT_ARENA_BYTES,
        spin_budget: Optional[int] = None,
        _first_job: Optional[Callable[[Comm], Any]] = None,
    ):
        if size < 1:
            raise ConfigurationError(f"need at least 1 rank, got {size}")
        if arena_bytes < 1:
            raise ConfigurationError(
                f"arena_bytes must be positive, got {arena_bytes}"
            )
        if spin_budget is not None and spin_budget < 0:
            raise ConfigurationError(
                f"spin_budget must be non-negative, got {spin_budget}"
            )
        self.size = size
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._base = f"rspmd{os.getpid():x}{secrets.token_hex(4)}"
        self._barrier = ctx.Barrier(size)
        self._result_q = ctx.Queue()
        #: Jobs dispatched so far; the preloaded first job is number 1.
        self._job = 1 if _first_job is not None else 0
        self._dead = False
        self._closed = False

        self._ctl_shm = shared_memory.SharedMemory(
            create=True, name=f"{self._base}-ctl", size=_ControlBlock.nbytes(size)
        )
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        try:
            ctl = _ControlBlock(self._ctl_shm, size)
            ctl.gen[:] = 0
            ctl.cap[:] = arena_bytes
            ctl.post[:] = 0
            ctl.done[:] = 0
            ctl.meta[:] = 0
            ctl.release()
            for r in range(size):
                for b in (0, 1):
                    seg = shared_memory.SharedMemory(
                        create=True,
                        name=_arena_name(self._base, r, b, 0),
                        size=arena_bytes,
                    )
                    seg.close()
            child_ends = []
            for r in range(size):
                recv_end, send_end = ctx.Pipe(duplex=False)
                child_ends.append(recv_end)
                self._conns.append(send_end)
            self._procs = [
                # daemon=True: a wedged rank must never outlive the caller.
                ctx.Process(
                    target=_worker_loop,
                    args=(
                        r,
                        size,
                        self._base,
                        self._barrier,
                        child_ends[r],
                        self._result_q,
                        _first_job,
                        spin_budget,
                    ),
                    name=f"spmd-rank-{r}",
                    daemon=True,
                )
                for r in range(size)
            ]
            for p in self._procs:
                p.start()
            for end in child_ends:
                end.close()  # parent keeps only the send ends
        except BaseException:
            self._closed = True  # nothing dispatched; just reclaim
            for p in self._procs:
                with suppress(Exception):
                    p.terminate()
            with suppress(Exception):
                self._result_q.close()
            _sweep_segments(self._ctl_shm, self._base, size)
            raise
        _LIVE[id(self)] = (os.getpid(), self)

    # -- lifecycle -----------------------------------------------------

    def healthy(self) -> bool:
        return (
            not self._dead
            and not self._closed
            and all(p.is_alive() for p in self._procs)
        )

    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        timeout: float = 120.0,
    ) -> List[Any]:
        if self._closed:
            raise ConfigurationError("cannot run a job on a closed world")
        if self._dead:
            raise CommunicationError(
                "SPMD world is dead (a rank died or a previous job "
                "failed); spawn a replacement world"
            )
        if rank_args is not None and len(rank_args) != self.size:
            raise ConfigurationError(
                f"rank_args needs one entry per rank "
                f"({self.size}), got {len(rank_args)}"
            )
        # Pre-flight the job callable alone: an unpicklable fn fails
        # *before* anything is dispatched, leaving the world healthy
        # (a partial dispatch would desynchronize the ranks for good).
        try:
            pickle.dumps(fn)
        except Exception as exc:
            raise ConfigurationError(
                f"procs world jobs must be picklable to travel the job "
                f"pipe ({type(fn).__name__}: {exc}); use a module-level "
                f"function, or run_spmd_procs for one-shot closures"
            ) from exc
        self._job += 1
        job = self._job
        try:
            for r, conn in enumerate(self._conns):
                args = None if rank_args is None else tuple(rank_args[r])
                conn.send((job, fn, args))
        except Exception as exc:
            self._dead = True  # partial dispatch: ranks out of step
            raise CommunicationError(
                f"could not ship job to the procs world: {exc}"
            ) from exc
        return self._collect(job, timeout)

    def _collect(self, job: int, timeout: float) -> List[Any]:
        size, procs = self.size, self._procs
        deadline = time.monotonic() + timeout
        results: List[Any] = [None] * size
        failures: List[BaseException] = []
        reported = [False] * size
        # The parent blocks on the queue's read pipe *and* every
        # unreported rank's process sentinel, bounded by the job
        # deadline — it wakes exactly when there is something to do (a
        # result arrived or a rank died), never on a polling interval.
        reader = getattr(self._result_q, "_reader", None)
        while not all(reported):
            progressed = False
            while True:  # drain everything already in the pipe
                try:
                    rank, got, ok, payload = pickle.loads(
                        self._result_q.get_nowait()
                    )
                except queue_mod.Empty:
                    break
                if got != job:
                    continue  # stale report from an abandoned job
                progressed = True
                reported[rank] = True
                if ok:
                    results[rank] = payload
                else:
                    failures.append(payload)
            if all(reported):
                break
            for r, p in enumerate(procs):
                if not reported[r] and not p.is_alive() and p.exitcode:
                    # Died without reporting (hard kill / segfault):
                    # break the barrier so the survivors can exit too.
                    progressed = True
                    reported[r] = True
                    failures.append(
                        CommunicationError(
                            f"SPMD rank {r} died with exit code "
                            f"{p.exitcode} before reporting a result"
                        )
                    )
                    self._barrier.abort()
            if progressed:
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._dead = True
                self._barrier.abort()
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                raise SpmdTimeoutError(
                    f"SPMD world did not finish within its {timeout}s "
                    "budget (deadlock or runaway work)",
                    phase="run_spmd",
                )
            if reader is not None:
                # Sentinels of unreported ranks, except clean exits: a
                # clean-exit rank's result is already in (or about to
                # enter) the pipe, and its closed sentinel must not turn
                # this wait into a hot spin while the feeder flushes.
                # Hard deaths stay in the set even when already dead —
                # a rank dying between the liveness check above and this
                # wait would otherwise wake nothing until the deadline.
                sentinels = [
                    p.sentinel
                    for r, p in enumerate(procs)
                    if not reported[r] and (p.is_alive() or p.exitcode)
                ]
                _sentinel_wait([reader] + sentinels, timeout=remaining)
            else:  # pragma: no cover — Queue without a read pipe handle
                with suppress(queue_mod.Empty):
                    rank, got, ok, payload = pickle.loads(
                        self._result_q.get(timeout=min(remaining, 0.25))
                    )
                    if got == job:
                        reported[rank] = True
                        if ok:
                            results[rank] = payload
                        else:
                            failures.append(payload)
        if failures:
            self._dead = True
            # Prefer the root cause over peers' collapsed-barrier echoes
            # (stable sort: original arrival order breaks ties).
            failures.sort(key=lambda e: type(e) is CommunicationError)
            raise failures[0]
        return results

    def close(self, join_timeout: float = 1.0) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            with suppress(Exception):
                conn.send(None)  # orderly retirement
            with suppress(Exception):
                conn.close()
        deadline = time.monotonic() + join_timeout
        for p in self._procs:
            with suppress(Exception):
                p.join(timeout=max(0.0, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            if p.exitcode is None:
                with suppress(Exception):
                    p.join(timeout=0.5)
        with suppress(Exception):
            self._result_q.close()
        _sweep_segments(self._ctl_shm, self._base, self.size)
        _LIVE.pop(id(self), None)


def run_spmd_procs(
    size: int,
    fn: Callable[[Comm], Any],
    timeout: float = 120.0,
    arena_bytes: int = _DEFAULT_ARENA_BYTES,
    spin_budget: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` ranks, one OS process each; return the
    per-rank results, indexed by rank.

    Mirrors :func:`repro.runtime.threads.run_spmd`: one wall-clock deadline
    for the whole world, the first rank failure re-raised in the caller,
    and a broken barrier unblocking the survivors.  ``arena_bytes`` sizes
    the initial shared-memory arenas (they grow on demand);
    ``spin_budget`` bounds busy-spinning in the counter-handshake waits
    (default: from the host's core count).

    Prefers the ``fork`` start method so ``fn`` may be any closure (it
    rides along at fork rather than through the job pipe); under ``spawn``
    (platforms without fork) ``fn`` must be picklable.
    """
    world = ProcWorld(
        size, arena_bytes=arena_bytes, spin_budget=spin_budget, _first_job=fn
    )
    try:
        return world._collect(1, timeout)
    finally:
        world.close()
