"""A real SPMD runtime: run the paper's algorithm as a message-passing
program, not a simulation.

Everything else in this package *simulates* the parallel machine (real data
movement, virtual clocks).  :mod:`repro.runtime` is the complement: an
mpi4py-style SPMD programming interface (:class:`~repro.runtime.api.Comm`)
with two interchangeable backends behind :func:`run_spmd` —

* ``backend="threads"`` (:mod:`repro.runtime.threads`): each rank a Python
  thread; NumPy kernels release the GIL, so ranks genuinely overlap;
* ``backend="procs"`` (:mod:`repro.runtime.procs`): each rank its own OS
  process, collectives over shared-memory double buffers; no GIL at all,
  so every core works —

and a from-scratch SPMD implementation of the smart bitonic sort written
against that interface alone (:mod:`repro.runtime.bitonic_spmd`).

The SPMD sort is a second, independent realization of Algorithm 1: it
shares the layout/schedule algebra with the simulator version but none of
its execution path, and the tests check the two produce identical output.
Porting to MPI is a matter of implementing :class:`Comm` over
``mpi4py.MPI.COMM_WORLD`` (the method names match deliberately).
"""

from repro.runtime.api import Comm, PendingOp
from repro.runtime.driver import BACKENDS, BackendOptions, run_spmd, spawn_world
from repro.runtime.world import World
from repro.runtime.threads import ThreadComm, ThreadWorld
from repro.runtime.procs import ProcComm, ProcWorld, run_spmd_procs
from repro.runtime.bitonic_spmd import spmd_bitonic_sort
from repro.runtime.sample_spmd import spmd_sample_sort
from repro.runtime.fft_spmd import (
    gather_natural_order,
    local_bitrev_slice,
    spmd_fft,
)

__all__ = [
    "BACKENDS",
    "BackendOptions",
    "Comm",
    "PendingOp",
    "ThreadComm",
    "ThreadWorld",
    "ProcComm",
    "ProcWorld",
    "World",
    "run_spmd",
    "run_spmd_procs",
    "spawn_world",
    "spmd_bitonic_sort",
    "spmd_sample_sort",
    "spmd_fft",
    "local_bitrev_slice",
    "gather_natural_order",
]
