"""The parallel FFT as an SPMD message-passing program.

Same pattern as :mod:`repro.runtime.bitonic_spmd`: every rank derives the
butterfly's sliding-window schedule from ``(N, P)``, runs the levels whose
bits are local, and re-tiles via one ``alltoallv`` per window — the
message-passing realization of [CKP+93]'s one-remap FFT (and its n < P
generalization).

Input/output convention matches :class:`repro.fft.parallel.ParallelFFT`:
each rank passes its *blocked* slice of the bit-reversed input (helper
:func:`local_bitrev_slice` prepares it from a natural-order signal) and
receives its slice of the natural-order spectrum under the final window
layout (column-cyclic for ``n >= P``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import CommunicationError
from repro.fft.layouts import butterfly_schedule
from repro.fft.sequential import bit_reverse_permute, fft_level
from repro.remap.plan import build_remap_plan
from repro.runtime.api import Comm
from repro.utils.validation import require_sizes

__all__ = ["spmd_fft", "local_bitrev_slice", "gather_natural_order"]


def local_bitrev_slice(x: np.ndarray, rank: int, size: int) -> np.ndarray:
    """Rank ``rank``'s blocked slice of the bit-reversed ``x``."""
    x = np.asarray(x, dtype=np.complex128)
    N, P, n = require_sizes(x.size, size)
    rev = bit_reverse_permute(x)
    return rev[rank * n:(rank + 1) * n].copy()


def spmd_fft(comm: Comm, local: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Distributed radix-2 FFT; returns this rank's partition under the
    final window layout (use :func:`gather_natural_order` to reassemble)."""
    data = np.asarray(local, dtype=np.complex128).copy()
    P, r = comm.size, comm.rank
    n = data.size
    sizes = comm.allgather(n)
    if len(set(sizes)) != 1:
        raise CommunicationError(f"ranks hold unequal partitions: {sizes}")
    N = n * P
    phases = butterfly_schedule(N, P)

    layout = phases[0][0]
    first = True
    for new_layout, levels in phases:
        if not first:
            plan = build_remap_plan(layout, new_layout, r)
            buckets: List[Optional[np.ndarray]] = [None] * P
            for q, idx in plan.send.items():
                buckets[q] = data[idx]
            fresh = np.empty_like(data)
            fresh[plan.keep_dst] = data[plan.keep_src]
            for p, payload in enumerate(comm.alltoallv(buckets)):
                if p != r and payload is not None:
                    fresh[plan.recv[p]] = payload
            data = fresh
            layout = new_layout
        first = False
        absaddr = layout.absolute_addresses(r)
        for level in levels:
            lb = layout.local_bit_of_abs_bit(level - 1)
            fft_level(data, absaddr, level, N, lb, inverse=inverse)
    return data


def gather_natural_order(comm: Comm, local: np.ndarray) -> np.ndarray:
    """All-gather the per-rank outputs of :func:`spmd_fft` into the full
    natural-order spectrum (available on every rank)."""
    parts = comm.allgather(local)
    P = comm.size
    N = sum(p.size for p in parts)
    _, _, n = require_sizes(N, P)
    phases = butterfly_schedule(N, P)
    layout = phases[-1][0]
    out = np.empty(N, dtype=np.complex128)
    for rank, part in enumerate(parts):
        out[layout.absolute_addresses(rank)] = part
    return out
