"""Backend dispatch for the SPMD runtime.

:func:`run_spmd` is the single entry point for launching an SPMD world.
The ``backend`` argument picks the substrate:

``"threads"`` (default)
    One Python thread per rank (:mod:`repro.runtime.threads`).  Portable
    and cheap to launch; NumPy kernels overlap because they release the
    GIL, but pure-Python control flow serializes.

``"procs"``
    One OS process per rank with shared-memory collectives
    (:mod:`repro.runtime.procs`).  No GIL anywhere: pack/merge kernels
    use all cores.  Higher launch cost; rank functions should be
    fork-safe (under ``spawn`` they must also be picklable).

Both backends honour the same contract: ``fn(comm)`` runs on every rank
against the same :class:`~repro.runtime.api.Comm` interface, results come
back indexed by rank, the first rank failure is re-raised in the caller,
and one wall-clock ``timeout`` bounds the whole world.

Backend tuning lives in one typed :class:`BackendOptions` dataclass
rather than loose keyword arguments; the old ``**options`` spelling
(``run_spmd(..., arena_bytes=...)``) still works for one release but
warns with :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any, Callable, List, Optional

from repro.errors import ConfigurationError
from repro.runtime.api import Comm
from repro.runtime.world import World

__all__ = ["BackendOptions", "run_spmd", "spawn_world", "BACKENDS"]

#: Names accepted by :func:`run_spmd`'s ``backend`` argument.
BACKENDS = ("threads", "procs")


#: Fields consumed by the sort layer (:func:`repro.api.sort` /
#: :func:`repro.runtime.bitonic_spmd.spmd_bitonic_sort`), not by the
#: world launcher — valid on every backend.
_ALGO_FIELDS = ("fused", "grouped", "overlap", "chunks")


@dataclass(frozen=True)
class BackendOptions:
    """Typed tuning knobs for the SPMD backends.

    Every field defaults to "backend decides"; *launch* fields that only
    apply to one backend are rejected elsewhere (the threads backend
    takes no launch tuning at all, so any set launch field raises there —
    same behaviour the old loose-kwargs interface had).  The *algorithm*
    fields (``fused``, ``grouped``, ``overlap``, ``chunks``) tune the
    sort running on top and are accepted on every SPMD backend.

    Attributes
    ----------
    arena_bytes:
        ``procs`` only — initial shared-memory arena capacity per
        (rank, parity); arenas grow on demand, so this is a preallocation
        hint, not a limit.
    spin_budget:
        ``procs`` only — busy-spin iterations before the counter-handshake
        waits start yielding the CPU (0 yields immediately — right for
        oversubscribed hosts; the backend defaults it from the core
        count, and :class:`repro.service.profile.HostProfile` can carry a
        calibrated value).
    fused:
        Route each remap through the fused pack/transfer/unpack
        collective (:meth:`repro.runtime.api.Comm.alltoallv_fused`) —
        zero-copy on the backends' raw-ndarray fast paths, compatibility
        fallback elsewhere.  Default (``None``) means **on**.
    grouped:
        Scope each remap exchange to its Lemma-4 communication group of
        ``2**N_BitsChanged`` ranks instead of the world.  Default
        (``None``) means **on**.
    overlap:
        Run each remap as a chunked pipeline over the nonblocking
        collectives, overlapping unpack/merge of one chunk with the
        in-flight transfer of the next.  Default (``None``) means **off**
        — deliberately the opposite polarity of ``fused``/``grouped``:
        overlap is a measured trade (pipelining overhead vs hidden
        transfer wait) that the service planner prices per host, so it is
        opt-in rather than presumed.
    chunks:
        Chunks per overlapped remap (default 4 when ``overlap`` is on;
        the sort clamps so chunks never drop below 64 elements).
    """

    arena_bytes: Optional[int] = None
    spin_budget: Optional[int] = None
    fused: Optional[bool] = None
    grouped: Optional[bool] = None
    overlap: Optional[bool] = None
    chunks: Optional[int] = None

    def set_fields(self) -> List[str]:
        """Names of the fields explicitly set (non-``None``)."""
        return [f.name for f in fields(self) if getattr(self, f.name) is not None]

    def set_launch_fields(self) -> List[str]:
        """Set fields the world launcher itself consumes (algorithm
        fields excluded)."""
        return [f for f in self.set_fields() if f not in _ALGO_FIELDS]


def run_spmd(
    size: int,
    fn: Callable[[Comm], Any],
    timeout: float = 120.0,
    backend: str = "threads",
    options: Optional[BackendOptions] = None,
    **legacy_options: Any,
) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` ranks of the chosen backend.

    ``options`` carries backend tuning (:class:`BackendOptions`).  Extra
    keyword arguments are the deprecated loose spelling of the same
    fields — they warn, then fold into ``options``.  Returns the per-rank
    results, indexed by rank.
    """
    if legacy_options:
        known = {f.name for f in fields(BackendOptions)}
        unknown = sorted(set(legacy_options) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown run_spmd option(s) {unknown}; "
                f"BackendOptions accepts {sorted(known)}"
            )
        warnings.warn(
            "passing backend options to run_spmd as loose keyword arguments "
            f"({sorted(legacy_options)}) is deprecated; pass "
            "options=BackendOptions(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if options is not None:
            raise ConfigurationError(
                "pass backend options either as BackendOptions or as legacy "
                "keywords, not both"
            )
        options = BackendOptions(**legacy_options)
    options = options or BackendOptions()

    if backend == "threads":
        set_fields = options.set_launch_fields()
        if set_fields:
            raise ConfigurationError(
                f"threads backend takes no extra options, got {set_fields}"
            )
        from repro.runtime.threads import run_spmd as run_threads

        return run_threads(size, fn, timeout=timeout)
    if backend == "procs":
        from repro.runtime.procs import run_spmd_procs

        kwargs = {}
        if options.arena_bytes is not None:
            kwargs["arena_bytes"] = options.arena_bytes
        if options.spin_budget is not None:
            kwargs["spin_budget"] = options.spin_budget
        return run_spmd_procs(size, fn, timeout=timeout, **kwargs)
    raise ConfigurationError(
        f"unknown SPMD backend {backend!r}; choose from {list(BACKENDS)}"
    )


def spawn_world(
    size: int,
    backend: str = "threads",
    options: Optional[BackendOptions] = None,
) -> World:
    """Build a persistent SPMD world of ``size`` ranks without running
    anything on it yet.

    The returned :class:`~repro.runtime.world.World` accepts repeated
    jobs via ``world.run(fn, rank_args=...)`` — rank processes/threads,
    barriers and shared-memory arenas are reused across jobs, which is
    what makes warm serving cheap (:mod:`repro.service`).  Close it (or
    use it as a context manager) when done; never-closed procs worlds are
    swept at interpreter exit.

    ``options`` carries the same launch tuning :func:`run_spmd` accepts
    (``arena_bytes``, ``spin_budget`` on procs); the algorithm fields
    (``fused``, ``grouped``, ``overlap``, ``chunks``) are per-job
    concerns and are ignored here.
    """
    options = options or BackendOptions()
    if backend == "threads":
        set_fields = options.set_launch_fields()
        if set_fields:
            raise ConfigurationError(
                f"threads backend takes no extra options, got {set_fields}"
            )
        from repro.runtime.threads import ThreadWorld

        return ThreadWorld(size)
    if backend == "procs":
        from repro.runtime.procs import ProcWorld

        kwargs = {}
        if options.arena_bytes is not None:
            kwargs["arena_bytes"] = options.arena_bytes
        if options.spin_budget is not None:
            kwargs["spin_budget"] = options.spin_budget
        return ProcWorld(size, **kwargs)
    raise ConfigurationError(
        f"unknown SPMD backend {backend!r}; choose from {list(BACKENDS)}"
    )
