"""Backend dispatch for the SPMD runtime.

:func:`run_spmd` is the single entry point for launching an SPMD world.
The ``backend`` argument picks the substrate:

``"threads"`` (default)
    One Python thread per rank (:mod:`repro.runtime.threads`).  Portable
    and cheap to launch; NumPy kernels overlap because they release the
    GIL, but pure-Python control flow serializes.

``"procs"``
    One OS process per rank with shared-memory collectives
    (:mod:`repro.runtime.procs`).  No GIL anywhere: pack/merge kernels
    use all cores.  Higher launch cost; rank functions should be
    fork-safe (under ``spawn`` they must also be picklable).

Both backends honour the same contract: ``fn(comm)`` runs on every rank
against the same :class:`~repro.runtime.api.Comm` interface, results come
back indexed by rank, the first rank failure is re-raised in the caller,
and one wall-clock ``timeout`` bounds the whole world.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.errors import ConfigurationError
from repro.runtime.api import Comm

__all__ = ["run_spmd", "BACKENDS"]

#: Names accepted by :func:`run_spmd`'s ``backend`` argument.
BACKENDS = ("threads", "procs")


def run_spmd(
    size: int,
    fn: Callable[[Comm], Any],
    timeout: float = 120.0,
    backend: str = "threads",
    **options: Any,
) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` ranks of the chosen backend.

    Extra keyword ``options`` are forwarded to the backend launcher
    (e.g. ``arena_bytes`` for ``"procs"``).  Returns the per-rank results,
    indexed by rank.
    """
    if backend == "threads":
        if options:
            raise ConfigurationError(
                f"threads backend takes no extra options, got {sorted(options)}"
            )
        from repro.runtime.threads import run_spmd as run_threads

        return run_threads(size, fn, timeout=timeout)
    if backend == "procs":
        from repro.runtime.procs import run_spmd_procs

        return run_spmd_procs(size, fn, timeout=timeout, **options)
    raise ConfigurationError(
        f"unknown SPMD backend {backend!r}; choose from {list(BACKENDS)}"
    )
