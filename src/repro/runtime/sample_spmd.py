"""The [AISS95] sample sort as a genuine SPMD message-passing program.

This is the real-backend twin of the simulated comparator
(:class:`~repro.sorts.sample_parallel.ParallelSampleSort`), which serves
as its executable spec: local radix sort, gathered splitter selection
(oversampling — the evenly spaced per-rank sample of the arXiv
2204.04599 single-round scheme), histogram partition at the splitters,
one all-to-all bucket exchange, and a local p-way merge.  One data
redistribution total, against the bitonic sort's ``lg P``-ish remaps —
which is exactly the crossover the paper's Figures 5.7/5.8 measure and
the service planner now prices.

Like :func:`~repro.runtime.bitonic_spmd.spmd_bitonic_sort` it shares no
execution machinery with the simulator version: only the local kernels
and a :class:`~repro.runtime.api.Comm`.  It speaks nothing but
``allgather`` and ``alltoallv``, both of which every communicator —
including the fault-injection :class:`~repro.faults.transport.ReliableComm`
wrapper — implements, so chaos tests compose without a fallback switch.

Unlike the bitonic network, the *output* partition sizes are data
dependent: rank ``q`` ends up with every key in splitter interval ``q``,
so skewed inputs produce unequal partitions (the §5.5 sensitivity).  The
concatenation of the returned partitions in rank order is byte-identical
to ``np.sort`` of the concatenated input — splitters are computed from
the same allgathered sample pool by the same pure algebra on every rank,
and ``searchsorted(..., side="right")`` ships splitter-equal duplicates
to the lower rank deterministically.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import CommunicationError
from repro.localsort.merges import p_way_merge
from repro.localsort.radix import radix_sort
from repro.runtime.api import Comm
from repro.trace.recorder import trace_span

__all__ = ["spmd_sample_sort"]


def spmd_sample_sort(
    comm: Comm,
    local_keys: np.ndarray,
    key_bits: int = 32,
    radix_bits: int = 8,
    oversample: int = 32,
) -> np.ndarray:
    """Sort the distributed array whose rank-``r`` partition is
    ``local_keys``, returning this rank's partition of the globally
    sorted (blocked) result.

    Every rank must hold the same number of input keys; the *returned*
    partitions are generally unequal (bucket sizes follow the key
    distribution).  The concatenation across ranks equals
    ``np.sort`` of the whole input, element for element.

    When ``comm.tracer`` carries a :class:`~repro.trace.recorder.Tracer`
    the sort records its phase spans (``local_sort``, ``address``,
    ``pack``, ``transfer``, ``merge``) plus the ``remaps`` counter (one:
    the single redistribution) and an ``algo.sample`` marker counter —
    what lets trace gates assert that an auto-routed request really ran
    sample sort.  With no tracer the instrumentation is a
    zero-allocation no-op.
    """
    data = np.asarray(local_keys).copy()
    P, r = comm.size, comm.rank
    n = data.size
    set_phase = getattr(comm, "set_phase", None)
    tracer = getattr(comm, "tracer", None)
    if tracer is not None:
        tracer.add("algo.sample")

    # Agree on the problem shape (and catch ragged partitions early).
    sizes = comm.allgather(n)
    if len(set(sizes)) != 1:
        raise CommunicationError(
            f"ranks hold unequal partitions: {sizes} — sample sort "
            "redistributes from a balanced input"
        )

    if set_phase is not None:
        set_phase("local-sort", 0)
    # 1. Local sort (radix, as §4.4 argues for the bitonic stages too).
    with trace_span(tracer, "local_sort"):
        data = radix_sort(data, key_bits=key_bits, radix_bits=radix_bits)
    if P == 1:
        return data

    # 2. Oversampling + splitter selection.  Each rank contributes
    # ``oversample`` evenly spaced keys of its sorted partition; the
    # pool is gathered everywhere and every rank picks the same P - 1
    # splitters by the same pure algebra — no broadcast needed, and the
    # choice is deterministic (ties included).
    if set_phase is not None:
        set_phase("sample", 1)
    s = min(oversample, n)
    idx = np.linspace(0, n - 1, s).astype(np.int64)
    with trace_span(tracer, "transfer", 1):
        all_samples = comm.allgather(data[idx])
    with trace_span(tracer, "local_sort", 1):
        pool = np.sort(np.concatenate(all_samples))
        cut = np.linspace(0, pool.size, P + 1).astype(np.int64)[1:-1]
        splitters = pool[np.maximum(cut - 1, 0)]

    # 3. Histogram partition + the single all-to-all redistribution.
    # ``side="right"`` sends splitter-equal duplicates to the lower
    # bucket on every rank, so the global order of duplicates is fixed.
    if set_phase is not None:
        set_phase("redistribute", 2)
    if tracer is not None:
        tracer.add("remaps")
    with trace_span(tracer, "address", 2):
        bounds = np.searchsorted(data, splitters, side="right")
        edges = np.concatenate([[0], bounds, [n]])
    with trace_span(tracer, "pack", 2):
        buckets: List[Optional[np.ndarray]] = [None] * P
        for q in range(P):
            bucket = data[edges[q]: edges[q + 1]]
            if bucket.size:
                buckets[q] = bucket
    with trace_span(tracer, "transfer", 2):
        received = comm.alltoallv(buckets)

    # 4. p-way merge of the received sorted runs.
    if set_phase is not None:
        set_phase("merge", 3)
    runs = [p for p in received if p is not None and p.size]
    with trace_span(tracer, "merge", 3):
        if runs:
            merged = p_way_merge(runs)
        else:
            merged = np.empty(0, dtype=data.dtype)
    comm.barrier()
    return merged
