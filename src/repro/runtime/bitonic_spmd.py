"""Algorithm 1 as a genuine SPMD message-passing program.

This is how a user would implement the paper's sort on a real machine: each
rank owns its ``n`` keys, derives the smart remap schedule from ``(N, P)``
(pure index algebra — every rank computes the same schedule, no
coordination needed), and alternates merge-based local phases with
``alltoallv`` exchanges whose buckets come straight from the remap plan's
pack indices.

It deliberately shares *no execution machinery* with the simulator version
(:class:`~repro.sorts.smart.SmartBitonicSort`): no ``Machine``, no
``perform_remap`` — only the layout algebra, the local kernels, and a
:class:`~repro.runtime.api.Comm`.  The tests cross-check the two
implementations element for element, and run this one concurrently on the
threads backend where real races would surface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.errors import CommunicationError

if TYPE_CHECKING:  # pragma: no cover — avoid a runtime->faults import cycle
    from repro.faults.checkpoint import CheckpointStore
from repro.layouts.schedule import smart_schedule
from repro.layouts.smart import smart_params
from repro.localsort.radix import radix_sort
from repro.remap.cache import cached_remap_plan
from repro.remap.exchange import chunk_plan
from repro.remap.groups import remap_group
from repro.runtime.api import Comm
from repro.sorts.smart import SmartBitonicSort
from repro.trace.recorder import trace_span
from repro.utils.bits import ilog2

__all__ = ["spmd_bitonic_sort"]

#: Minimum partition elements per chunk worth pipelining: below this the
#: fixed per-chunk collective overhead (an extra post/wait round trip per
#: remap per chunk) exceeds any transfer the pipeline could hide, so the
#: effective chunk count is clamped to ``n // _MIN_CHUNK_ELEMS`` — down
#: to 1, which runs the plain synchronous path (pure local algebra:
#: every rank computes the same clamp from the same ``n``).  Measured on
#: the bench trajectory: chunking 4 096-element partitions costs 20-30%
#: end-to-end; 16 384-element partitions amortize the posts.
_MIN_CHUNK_ELEMS = 4096


def _unpack_chunk(fresh, plan, received, r: int) -> None:
    """Scatter one exchange's arrivals into ``fresh``: payloads
    concatenated in ascending source order land in one fancy-index
    assignment through the plan's precomputed scatter vector.  ``plan``
    is a full remap plan or one of its :func:`chunk_plan` sub-plans."""
    payloads: List[np.ndarray] = []
    for p, slots in plan.recv_sorted:
        payload = received[p]
        if payload is None or payload.size != slots.size:
            raise CommunicationError(
                f"rank {r}: expected {slots.size} keys from rank {p}, "
                f"got {0 if payload is None else payload.size}"
            )
        payloads.append(payload)
    for p, payload in enumerate(received):
        if p != r and payload is not None and p not in plan.recv:
            raise CommunicationError(
                f"rank {r}: unexpected payload of {payload.size} keys "
                f"from rank {p}"
            )
    if payloads:
        fresh[plan.recv_concat] = np.concatenate(payloads)


def spmd_bitonic_sort(
    comm: Comm,
    local_keys: np.ndarray,
    key_bits: int = 32,
    radix_bits: int = 8,
    checkpoint: Optional["CheckpointStore"] = None,
    fused: bool = True,
    grouped: bool = True,
    overlap: bool = False,
    chunks: int = 4,
) -> np.ndarray:
    """Sort the distributed array whose rank-``r`` partition is
    ``local_keys``, returning this rank's partition of the globally sorted
    (blocked) result.

    Every rank must hold the same power-of-two number of keys.

    With a :class:`~repro.faults.checkpoint.CheckpointStore` the rank
    snapshots its shard after the initial local sort (stage 0) and after
    every remap phase (stage *i*); if the store already holds snapshots —
    this run is a restart after a crash — all ranks agree on the newest
    stage everyone completed and resume from it instead of re-sorting.
    Fault-aware communicators (:class:`~repro.faults.transport.ReliableComm`)
    are phase-labelled via their ``set_phase`` hook so errors and injected
    faults can name the sort phase they hit.

    ``fused`` (the default) routes each remap through
    :meth:`~repro.runtime.api.Comm.alltoallv_fused` — pack, transfer and
    unpack collapse into one collective whose fast path gathers straight
    into the transport and scatters straight into the destination buffer
    (the executable §4.3 fusion); the ``pack`` span shrinks to the fused
    surcharge (moving the kept elements) and the ``unpack`` span
    disappears.  ``grouped`` (the default) scopes every remap exchange to
    its Lemma-4 communication group of ``2**N_BitsChanged`` ranks, so
    synchronization fan-in no longer spans the world.  Both flags degrade
    gracefully: communicators without a native fast path (e.g. the
    fault-injection transport) run the same semantics via their composed
    defaults.

    ``overlap`` (off by default) runs each remap as a chunked pipeline
    over the nonblocking collectives: the exchange is split into up to
    ``chunks`` positional sub-plans (:func:`repro.remap.exchange.chunk_plan`)
    and posted two-deep, so the unpack/merge work of chunk ``c`` — and the
    keep-move of the pack phase — overlaps the in-flight transfer of chunk
    ``c + 1``.  The schedule engages only when the communicator reports
    :attr:`~repro.runtime.api.Comm.overlap_capable` (wrappers such as the
    fault transport do not, so armed injectors transparently force the
    synchronous path) and when partitions are large enough for chunking to
    pay (at least ``64`` elements per chunk); otherwise the remap runs
    exactly as without the flag.  Results are byte-identical either way.

    When ``comm.tracer`` carries a :class:`~repro.trace.recorder.Tracer`,
    the sort records its phase spans (``local_sort`` and per-remap
    ``address`` / ``pack`` / ``transfer`` [/ ``unpack`` when unfused] /
    ``merge``) plus a ``remaps`` counter; the communicator's own ``wait``
    spans nest inside.  With no tracer the instrumentation is a
    zero-allocation no-op.
    """
    data = np.asarray(local_keys).copy()
    P, r = comm.size, comm.rank
    n = data.size
    set_phase = getattr(comm, "set_phase", None)
    # With no tracer armed every trace_span below is one shared no-op
    # context — the hot path allocates nothing (tests pin this).
    tracer = getattr(comm, "tracer", None)

    # Agree on the problem shape (and catch ragged partitions early).
    sizes = comm.allgather(n)
    if len(set(sizes)) != 1:
        raise CommunicationError(
            f"ranks hold unequal partitions: {sizes} — the bitonic network "
            "needs the same n everywhere"
        )
    if P == 1:
        with trace_span(tracer, "local_sort"):
            return radix_sort(data, key_bits=key_bits, radix_bits=radix_bits)
    N = n * P
    schedule = smart_schedule(N, P)  # same on every rank: pure algebra
    lgn = ilog2(n)

    # Restart support: resume from the newest stage every rank completed
    # (stage 0 = after the initial local sort, stage i = after phase i).
    resume = -1
    if checkpoint is not None:
        resume = min(comm.allgather(checkpoint.latest_stage(r)))

    if set_phase is not None:
        set_phase("local-sort", 0)
    if resume >= 0:
        restored = checkpoint.load(r, resume)
        if restored is None:
            raise CommunicationError(
                f"rank {r}: checkpoint for agreed resume stage {resume} "
                "is missing (store pruned too aggressively?)"
            )
        data = restored
    else:
        # First lg n stages: one local sort, alternating direction (Lemma 6).
        with trace_span(tracer, "local_sort"):
            data = radix_sort(data, ascending=(r % 2 == 0),
                              key_bits=key_bits, radix_bits=radix_bits)
        if checkpoint is not None:
            checkpoint.save(r, 0, data)

    layout = (
        schedule.initial_layout if resume < 1
        else schedule.phases[resume - 1].layout
    )
    # Effective chunk count for the overlapped schedule: pure local
    # algebra (every rank computes the same K), 1 means synchronous.
    K = 1
    if overlap and getattr(comm, "overlap_capable", False):
        K = max(1, min(int(chunks), n // _MIN_CHUNK_ELEMS))
    for stage, phase in enumerate(schedule.phases, start=1):
        if stage <= resume:
            continue  # completed before the crash; restored above
        if set_phase is not None:
            set_phase(f"phase-{stage}", stage)
        if tracer is not None:
            tracer.add("remaps")
        with trace_span(tracer, "address", stage):
            plan = cached_remap_plan(layout, phase.layout, r)
            # Lemma 4: this remap only exchanges within a group of
            # 2**N_BitsChanged ranks — pure bit algebra, no coordination.
            group = remap_group(layout, phase.layout, r) if grouped else None
            subs = chunk_plan(plan, K) if K > 1 else None
        if tracer is not None and subs is not None:
            tracer.add("coll.chunks", len(subs))
        if fused and subs is not None:
            # Overlapped fused pipeline: chunk 0's transfer is in flight
            # while the kept elements move; each later chunk is posted
            # before the previous one's wait() scatters its arrivals, so
            # at most two ops fly and unpack(c) overlaps transfer(c+1).
            fresh = np.empty_like(data)
            with trace_span(tracer, "transfer", stage):
                prev = comm.ialltoallv_fused(data, subs[0], fresh, group=group)
            with trace_span(tracer, "pack", stage):
                fresh[plan.keep_dst] = data[plan.keep_src]
            with trace_span(tracer, "transfer", stage):
                for c in range(1, len(subs)):
                    nxt = comm.ialltoallv_fused(
                        data, subs[c], fresh, group=group
                    )
                    prev.wait()
                    prev = nxt
                prev.wait()
        elif fused:
            # Fused pack/transfer/unpack (§4.3): the surviving pack work
            # is moving the kept elements; the collective gathers the
            # departing ones straight from ``data`` and scatters arrivals
            # straight into ``fresh`` — no buckets, no concatenate.
            with trace_span(tracer, "pack", stage):
                fresh = np.empty_like(data)
                fresh[plan.keep_dst] = data[plan.keep_src]
            with trace_span(tracer, "transfer", stage):
                comm.alltoallv_fused(data, plan, fresh, group=group)
        elif subs is not None:
            # Overlapped bucketed pipeline: pack + post chunk c, then
            # unpack chunk c - 1 while c's transfer is in flight.
            with trace_span(tracer, "pack", stage):
                fresh = np.empty_like(data)
                fresh[plan.keep_dst] = data[plan.keep_src]
            prev_op = prev_sub = None
            for sub in subs:
                with trace_span(tracer, "pack", stage):
                    buckets: List[Optional[np.ndarray]] = [None] * P
                    for q, idx in sub.send_sorted:
                        buckets[q] = data[idx]
                with trace_span(tracer, "transfer", stage):
                    if group is not None and len(group) < P:
                        op = comm.igroup_alltoallv(buckets, group)
                    else:
                        op = comm.ialltoallv(buckets)
                if prev_op is not None:
                    with trace_span(tracer, "transfer", stage):
                        received = prev_op.wait()
                    with trace_span(tracer, "unpack", stage):
                        _unpack_chunk(fresh, prev_sub, received, r)
                prev_op, prev_sub = op, sub
            with trace_span(tracer, "transfer", stage):
                received = prev_op.wait()
            with trace_span(tracer, "unpack", stage):
                _unpack_chunk(fresh, prev_sub, received, r)
        else:
            # Pack: one bucket per destination, by the plan's indices.
            with trace_span(tracer, "pack", stage):
                buckets = [None] * P
                for q, idx in plan.send_sorted:
                    buckets[q] = data[idx]
                fresh = np.empty_like(data)
                fresh[plan.keep_dst] = data[plan.keep_src]
            # Transfer.
            with trace_span(tracer, "transfer", stage):
                if group is not None and len(group) < P:
                    received = comm.group_alltoallv(buckets, group)
                else:
                    received = comm.alltoallv(buckets)
            # Unpack: payloads concatenated in ascending source order land
            # in one scatter through the plan's precomputed index vector.
            with trace_span(tracer, "unpack", stage):
                _unpack_chunk(fresh, plan, received, r)
        data = fresh
        layout = phase.layout
        # Local computation (Theorems 2/3) — the shared merge kernel.
        with trace_span(tracer, "merge", stage):
            params = smart_params(N, P, *phase.columns[0])
            data = SmartBitonicSort._merge_local(data, layout, params, lgn, r)
        if checkpoint is not None:
            checkpoint.save(r, stage, data)
    return data
