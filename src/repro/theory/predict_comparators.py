"""Approximate time predictions for the comparator sorts (radix, sample).

Unlike the bitonic algorithms — whose communication pattern is oblivious
and therefore predictable exactly (:mod:`repro.theory.predict`) — radix and
sample sort move data-dependent volumes.  Under the uniform-key workload of
the evaluation the expectations are sharp (each pass of radix scatters a
``(1 - 1/P)`` fraction; sample sort's buckets are balanced to within the
oversampling error), so these predictors model the *expected* cost and are
tested against simulation within a few percent on uniform keys.

They exist to make Figure 5.7/5.8-style analysis (who wins where, and the
bitonic-vs-radix crossover point) answerable analytically at any size.
"""

from __future__ import annotations

from typing import Optional

from repro.model.machines import MEIKO_CS2, MachineSpec
from repro.theory.predict import PredictedTime, _long_transfer
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["predict_radix", "predict_sample", "crossover_keys_per_proc"]


def predict_radix(
    N: int,
    P: int,
    spec: MachineSpec = MEIKO_CS2,
    *,
    key_bits: int = 32,
    radix_bits: int = 8,
) -> PredictedTime:
    """Expected busy time of the long-message parallel radix sort."""
    N, P, n = require_sizes(N, P)
    pt = PredictedTime("radix", N, P)
    costs = spec.compute
    passes = -(-key_bits // radix_bits)
    radix = 1 << radix_bits
    expected_sent = n - n // P  # uniform digits: keep 1/P per pass
    for _ in range(passes):
        # Bucketed local work stays in-cache ([AISS95]); see radix_parallel.
        pt._add("local_sort", n * (costs.radix_pass + costs.radix_permute))
        pt._add("address", n * costs.address)
        pt._add("pack", n * costs.fused_pack)
        pt._add("unpack", expected_sent * costs.unpack)
        if P > 1:
            # Histogram all-gather: P-1 messages of `radix` counters (8 B).
            hist_bytes = radix * 8
            net = spec.network
            busy = net.o + (hist_bytes - 1) * net.G
            pt._add("transfer",
                    (P - 1) * (busy + net.o) + max(net.g - busy, 0.0) * (P - 2))
            # Data all-to-all: P-1 messages of ~n/P keys.
            pt._add("transfer", _long_transfer(spec, P, n // P, P - 1))
    return pt


def predict_sample(
    N: int,
    P: int,
    spec: MachineSpec = MEIKO_CS2,
    *,
    oversample: int = 32,
    key_bits: int = 32,
    radix_bits: int = 8,
) -> PredictedTime:
    """Expected busy time of the long-message parallel sample sort
    (balanced buckets assumed — uniform keys)."""
    N, P, n = require_sizes(N, P)
    pt = PredictedTime("sample", N, P)
    costs = spec.compute
    passes = -(-key_bits // radix_bits)
    pt._add("local_sort", n * passes * costs.radix_pass * spec.cache.factor(n))
    if P == 1:
        return pt
    net = spec.network
    s = min(oversample, n)
    # Sample gathering (P-1 messages of s keys) + sorting the pool.
    busy = net.o + (s * spec.key_bytes - 1) * net.G
    pt._add("transfer",
            (P - 1) * (busy + net.o) + max(net.g - busy, 0.0) * (P - 2))
    pt._add("local_sort",
            s * P * passes * costs.radix_pass * spec.cache.factor(n))
    # Partition + one balanced all-to-all.
    pt._add("address", n * costs.address * spec.cache.factor(n))
    pt._add("pack", n * costs.fused_pack * spec.cache.factor(n))
    pt._add("transfer", _long_transfer(spec, P, n // P, P - 1))
    # p-way merge of the received runs: lg P two-way levels.
    pt._add("merge",
            n * max(ilog2(P), 1) * costs.merge * spec.cache.factor(n))
    return pt


def crossover_keys_per_proc(
    P: int,
    spec: MachineSpec = MEIKO_CS2,
    max_lgn: int = 24,
) -> Optional[int]:
    """The smallest power-of-two keys-per-processor at which the predicted
    radix time drops below the predicted smart-bitonic time (the Figure 5.8
    crossover), or ``None`` if bitonic wins through ``2**max_lgn``."""
    from repro.theory.predict import predict_smart

    for lgn in range(max(ilog2(P), 1) + 1, max_lgn + 1):
        n = 1 << lgn
        N = n * P
        if predict_radix(N, P, spec).total < predict_smart(N, P, spec).total:
            return n
    return None
