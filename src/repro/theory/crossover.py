"""Which remap strategy communicates fastest for a given machine and size?

§3.4.3 closes with: "Given the model parameters L, o, g, G and P we can
decide which algorithm is the best (communication-wise) for a given data
size n, by plugging in all numbers in the above formulas and comparing the
results."  This module is that sentence as code.  The interesting regimes:

* tiny ``P`` (e.g. 2): the blocked strategy sends one huge message per step
  and its minimal message count wins under LogGP;
* everywhere else: smart wins (fewest remaps *and* least volume);
* under pure LogP (short messages) smart wins on all three metrics
  simultaneously, so it is unconditionally optimal (§3.4.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.logp import LogGPParams
from repro.theory.counts import STRATEGIES, counts_for
from repro.theory.logp_time import loggp_comm_time, logp_comm_time

__all__ = ["comm_time_table", "best_algorithm"]


def comm_time_table(
    N: int,
    P: int,
    net: LogGPParams,
    long_messages: bool = True,
    key_bytes: int = 4,
) -> Dict[str, float]:
    """Per-processor communication time (µs) of each strategy."""
    out: Dict[str, float] = {}
    for strat in STRATEGIES:
        counts = counts_for(strat, N, P)
        out[strat] = (
            loggp_comm_time(counts, net, key_bytes)
            if long_messages
            else logp_comm_time(counts, net)
        )
    return out


def best_algorithm(
    N: int,
    P: int,
    net: LogGPParams,
    long_messages: bool = True,
    key_bytes: int = 4,
) -> Tuple[str, Dict[str, float]]:
    """The communication-fastest strategy and the full time table."""
    table = comm_time_table(N, P, net, long_messages, key_bytes)
    best = min(table, key=lambda k: table[k])
    return best, table
