"""The R/V/M communication metrics of the three remap strategies (§3.4.2/3).

============  ======================  ==========================  =================
strategy      remaps R                volume V (elements/proc)    messages M /proc
============  ======================  ==========================  =================
blocked       ``lgP(lgP+1)/2``        ``n lgP(lgP+1)/2``          ``lgP(lgP+1)/2``
cyclic-blkd   ``2 lgP``               ``2n(1-1/P) lgP``           ``2 lgP (P-1)``
smart         ``ceil(lgP +            exact sum over the          exact sum
              lgP(lgP+1)/(2 lgn))``   schedule's bit changes      ``sum(2**bc - 1)``
============  ======================  ==========================  =================

Smart is optimal on R and V; blocked sends the fewest messages (it ships
whole partitions), which under LogGP makes it competitive for tiny ``P``
(§3.4.3).  For smart, V and M are computed from the actual schedule (the
closed-form approximation ``V = n lg P`` holds when
``lgP(lgP+1)/2 <= lg n``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.layouts.analysis import (
    messages_blocked,
    messages_cyclic_blocked,
    remap_count_blocked,
    remap_count_cyclic_blocked,
    remap_count_smart,
    volume_blocked,
    volume_cyclic_blocked,
)
from repro.layouts.schedule import cyclic_blocked_schedule, smart_schedule
from repro.utils.validation import require_sizes

__all__ = ["CommunicationCounts", "counts_for", "STRATEGIES"]

STRATEGIES = ("blocked", "cyclic-blocked", "smart")


@dataclass(frozen=True)
class CommunicationCounts:
    """The three metrics for one (strategy, N, P) combination."""

    strategy: str
    N: int
    P: int
    remaps: int
    volume: int
    messages: int

    @property
    def n(self) -> int:
        return self.N // self.P


def counts_for(strategy: str, N: int, P: int) -> CommunicationCounts:
    """Compute ``(R, V, M)`` for one strategy on an ``(N, P)`` problem."""
    N, P, n = require_sizes(N, P)
    if strategy == "blocked":
        return CommunicationCounts(
            strategy, N, P,
            remaps=remap_count_blocked(P),
            volume=volume_blocked(N, P),
            messages=messages_blocked(P),
        )
    if strategy == "cyclic-blocked":
        return CommunicationCounts(
            strategy, N, P,
            remaps=remap_count_cyclic_blocked(P),
            volume=volume_cyclic_blocked(N, P),
            messages=messages_cyclic_blocked(P),
        )
    if strategy == "smart":
        if P == 1:
            return CommunicationCounts(strategy, N, P, 0, 0, 0)
        sched = smart_schedule(N, P)
        return CommunicationCounts(
            strategy, N, P,
            remaps=remap_count_smart(N, P),
            volume=sched.volume_per_processor(),
            messages=sched.messages_per_processor(),
        )
    raise ConfigurationError(
        f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
    )
