"""LogP / LogGP communication-time predictions (§3.4.2, §3.4.3).

Given the ``(R, V, M)`` counts of a strategy and the machine's network
parameters, the total per-processor communication time is

* LogP (short messages):   ``T = (L + 2o - g') R + g' V``,   ``g' = max(g, 2o)``
* LogGP (long messages):   ``T = (L + 2o) R + G (V_bytes - M) + g (M - R)``

These are the expressions the paper derives; they are what the simulator's
``transfer`` category accumulates (tested to agree), and they let the
benchmark harness evaluate the paper's *full-size* experiments (1 M keys per
processor) analytically.
"""

from __future__ import annotations

from repro.model.logp import LogGPParams
from repro.theory.counts import CommunicationCounts

__all__ = ["logp_comm_time", "loggp_comm_time", "predict_comm_per_key"]


def logp_comm_time(counts: CommunicationCounts, net: LogGPParams) -> float:
    """Short-message communication time (µs per processor), §3.4.2."""
    return net.logp.total_short_time(counts.remaps, counts.volume)


def loggp_comm_time(
    counts: CommunicationCounts, net: LogGPParams, key_bytes: int = 4
) -> float:
    """Long-message communication time (µs per processor), §3.4.3."""
    return net.total_long_time(
        counts.remaps, counts.volume * key_bytes, counts.messages
    )


def predict_comm_per_key(
    counts: CommunicationCounts,
    net: LogGPParams,
    long_messages: bool = True,
    key_bytes: int = 4,
) -> float:
    """Per-key communication time (µs), the unit of Tables 5.3/5.4."""
    total = (
        loggp_comm_time(counts, net, key_bytes)
        if long_messages
        else logp_comm_time(counts, net)
    )
    return total / counts.n if counts.n else 0.0
