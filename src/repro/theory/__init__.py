"""Analytical communication models (§3.4): the R/V/M closed forms for the
three remapping strategies and the LogP/LogGP communication-time predictions
built from them.  The simulator's measured counts must match these exactly
(tested), and the time predictions are what EXPERIMENTS.md reports at the
paper's full problem sizes, where executing the Python simulator would be
wasteful."""

from repro.theory.counts import CommunicationCounts, counts_for
from repro.theory.logp_time import (
    loggp_comm_time,
    logp_comm_time,
    predict_comm_per_key,
)
from repro.theory.crossover import best_algorithm, comm_time_table
from repro.theory.predict import (
    PredictedTime,
    predict,
    predict_blocked_merge,
    predict_cyclic_blocked,
    predict_external,
    predict_smart,
)
from repro.theory.predict_comparators import (
    crossover_keys_per_proc,
    predict_radix,
    predict_sample,
)

__all__ = [
    "PredictedTime",
    "predict",
    "predict_smart",
    "predict_cyclic_blocked",
    "predict_blocked_merge",
    "predict_external",
    "predict_radix",
    "predict_sample",
    "crossover_keys_per_proc",
    "CommunicationCounts",
    "counts_for",
    "logp_comm_time",
    "loggp_comm_time",
    "predict_comm_per_key",
    "best_algorithm",
    "comm_time_table",
]
