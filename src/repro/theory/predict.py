"""Closed-form execution-time predictions for the bitonic sorts.

The simulator charges time from deterministic counts, so (apart from idle
waits at barriers) a run's per-category time can be predicted *exactly*
without executing any data movement.  This module rebuilds those sums from
the schedule algebra alone:

* it is the per-algorithm generalization of §3.4's communication formulas
  to total time (computation + communication), and
* it lets EXPERIMENTS.md evaluate the paper's full problem sizes (1M keys
  per processor) in microseconds of analysis instead of minutes of
  simulation.

``tests/test_predict.py`` asserts that these predictions equal the
simulator's mean per-processor breakdown to float precision for every
category, for all three bitonic algorithms in all message modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.layouts.schedule import (
    build_schedule,
    cyclic_blocked_schedule,
)
from repro.localsort.radix import num_passes
from repro.machine.metrics import (
    COMM_CATEGORIES,
    COMPUTE_CATEGORIES,
    IO_CATEGORIES,
)
from repro.model.machines import MEIKO_CS2, MachineSpec
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["PredictedTime", "predict_smart", "predict_cyclic_blocked",
           "predict_blocked_merge", "predict_external", "predict"]


@dataclass
class PredictedTime:
    """Predicted per-processor time by category, in microseconds."""

    algorithm: str
    N: int
    P: int
    times: Dict[str, float] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.N // self.P

    @property
    def computation(self) -> float:
        return sum(self.times.get(c, 0.0) for c in COMPUTE_CATEGORIES)

    @property
    def communication(self) -> float:
        return sum(self.times.get(c, 0.0) for c in COMM_CATEGORIES)

    @property
    def io(self) -> float:
        """Disk time of the out-of-core path (zero for in-memory sorts)."""
        return sum(self.times.get(c, 0.0) for c in IO_CATEGORIES)

    @property
    def total(self) -> float:
        """Busy time (excludes barrier waits, which depend on skew; the
        smart schedule is perfectly balanced so busy time ≈ makespan)."""
        return self.computation + self.communication + self.io

    @property
    def us_per_key(self) -> float:
        return self.total / self.n

    def _add(self, category: str, micros: float) -> None:
        self.times[category] = self.times.get(category, 0.0) + micros


def _long_transfer(spec: MachineSpec, P_unused: int, msg_elements: int,
                   num_messages: int) -> float:
    """Sender + receiver busy 'transfer' time of one long-message remap for
    one processor sending/receiving ``num_messages`` messages of
    ``msg_elements`` keys: matches the simulator's per-message charging
    (injection ``o + (k-1)G``, gap padding to ``g`` between sends, ``o``
    per reception)."""
    if num_messages == 0:
        return 0.0
    net = spec.network
    nbytes = max(msg_elements * spec.key_bytes, 1)
    busy = net.o + (nbytes - 1) * net.G
    send = num_messages * busy + max(net.g - busy, 0.0) * (num_messages - 1)
    recv = num_messages * net.o
    return send + recv


def _short_transfer(spec: MachineSpec, volume: int) -> float:
    """The LogP short-message remap formula (§3.4.2) for one processor."""
    if volume == 0:
        return 0.0
    net = spec.network
    return net.L + 2.0 * net.o + (volume - 1) * max(net.g, 2.0 * net.o)


def _remap_comm_means(schedule, spec: MachineSpec, mode: str, fused: bool):
    """Mean-over-processors communication charges per remap, counted from
    the remap plans.  Needed when ``n < P``, where Lemma 4's uniform group
    structure does not hold positionally and per-processor message counts
    vary (see :meth:`RemapSchedule.volume_per_processor`).

    Yields ``(pack_mean, unpack_mean, transfer_mean)`` per remap.
    """
    from repro.remap.plan import build_remap_plan  # deferred: layering

    net = spec.network
    P = schedule.P
    n = schedule.N // P
    for old, new in schedule.transitions():
        pack = unpack = transfer = 0.0
        for r in range(P):
            plan = build_remap_plan(old, new, r)
            sent = plan.elements_sent
            if mode == "long":
                if fused:
                    pack += n * spec.compute.fused_pack
                else:
                    pack += sent * spec.compute.pack
                    unpack += sent * spec.compute.unpack
                busy_total = 0.0
                msgs = sorted(plan.send.items())
                for i, (_, idx) in enumerate(msgs):
                    nbytes = max(idx.size * spec.key_bytes, 1)
                    busy = net.o + (nbytes - 1) * net.G
                    busy_total += busy
                    if i + 1 < len(msgs) and busy < net.g:
                        busy_total += net.g - busy
                transfer += busy_total + net.o * len(plan.recv)
            else:
                transfer += _short_transfer(spec, sent)
        cache = spec.cache.factor(n)
        yield pack * cache / P, unpack * cache / P, transfer / P


def predict_smart(
    N: int,
    P: int,
    spec: MachineSpec = MEIKO_CS2,
    *,
    mode: str = "long",
    fused: bool = True,
    strategy: str = "head",
    key_bits: int = 32,
    radix_bits: int = 8,
) -> PredictedTime:
    """Predict the smart bitonic sort's per-processor busy time."""
    N, P, n = require_sizes(N, P)
    if mode not in ("long", "short"):
        raise ConfigurationError(f"mode must be 'long' or 'short', got {mode!r}")
    pt = PredictedTime("smart", N, P)
    costs = spec.compute
    cache = spec.cache.factor(n)
    passes = num_passes(key_bits, radix_bits)
    pt._add("local_sort", n * passes * costs.radix_pass * cache)
    if P == 1:
        return pt
    sched = build_schedule(N, P, strategy=strategy)
    if n >= P:
        # Balanced regime (Lemma 4): every processor's charges are equal.
        for bc in sched.bits_changed_per_remap():
            sent = n - (n >> bc)
            msgs = (1 << bc) - 1
            pt._add("address", n * costs.address * cache)
            if mode == "long":
                if fused:
                    pt._add("pack", n * costs.fused_pack * cache)
                else:
                    pt._add("pack", sent * costs.pack * cache)
                    pt._add("unpack", sent * costs.unpack * cache)
                pt._add("transfer", _long_transfer(spec, P, n >> bc, msgs))
            else:
                pt._add("transfer", _short_transfer(spec, sent))
            pt._add("merge", n * costs.merge * cache)  # one pass (§4.3)
    else:
        # n < P: message counts vary per processor; count from the plans.
        for pack, unpack, transfer in _remap_comm_means(
            sched, spec, mode, fused
        ):
            pt._add("address", n * costs.address * cache)
            pt._add("pack", pack)
            pt._add("unpack", unpack)
            pt._add("transfer", transfer)
            pt._add("merge", n * costs.merge * cache)
    return pt


def predict_cyclic_blocked(
    N: int,
    P: int,
    spec: MachineSpec = MEIKO_CS2,
    *,
    mode: str = "long",
    key_bits: int = 32,
    radix_bits: int = 8,
) -> PredictedTime:
    """Predict the cyclic-blocked baseline's per-processor busy time."""
    N, P, n = require_sizes(N, P)
    pt = PredictedTime("cyclic-blocked", N, P)
    costs = spec.compute
    cache = spec.cache.factor(n)
    passes = num_passes(key_bits, radix_bits)
    pt._add("local_sort", n * passes * costs.radix_pass * cache)
    if P == 1:
        return pt
    sched = cyclic_blocked_schedule(N, P)
    fused = mode == "long"
    for phase, bc in zip(sched.phases, sched.bits_changed_per_remap()):
        sent = n - (n >> bc)
        msgs = (1 << bc) - 1
        pt._add("address", n * costs.address * cache)
        if mode == "long":
            pt._add("pack", n * costs.fused_pack * cache)
            pt._add("transfer", _long_transfer(spec, P, n >> bc, msgs))
        else:
            pt._add("transfer", _short_transfer(spec, sent))
        if phase.layout.name == "cyclic":
            pt._add("merge", n * costs.merge * cache)
        else:
            pt._add("local_sort", n * passes * costs.radix_pass * cache)
    return pt


def predict_blocked_merge(
    N: int,
    P: int,
    spec: MachineSpec = MEIKO_CS2,
    *,
    mode: str = "long",
    key_bits: int = 32,
    radix_bits: int = 8,
) -> PredictedTime:
    """Predict the blocked-merge baseline's per-processor busy time."""
    N, P, n = require_sizes(N, P)
    pt = PredictedTime("blocked-merge", N, P)
    costs = spec.compute
    cache = spec.cache.factor(n)
    passes = num_passes(key_bits, radix_bits)
    pt._add("local_sort", n * passes * costs.radix_pass * cache)
    if P == 1:
        return pt
    lgP = ilog2(P)
    lgn = ilog2(n) if n > 1 else 0
    for k in range(1, lgP + 1):
        for _ in range(k):  # the k remote steps of stage lg n + k
            if mode == "long":
                pt._add("transfer", _long_transfer(spec, P, n, 1))
            else:
                pt._add("transfer", _short_transfer(spec, n))
            pt._add("compare_exchange", n * costs.compare_exchange * cache)
        if lgn > 0:
            pt._add("local_sort", n * passes * costs.radix_pass * cache)
    return pt


#: Conservative disk rates used when a caller supplies none — slow
#: spinning-rust numbers, so an unmeasured external estimate is
#: pessimistic and the planner never wanders out of core on optimism.
CONSERVATIVE_DISK_READ_BPS = 200e6
CONSERVATIVE_DISK_WRITE_BPS = 120e6
CONSERVATIVE_FSYNC_S = 0.005


def external_merge_passes(
    N: int, memory_budget: int, dtype_size: int = 4, fan_in: int = 64
) -> Tuple[int, int]:
    """``(runs, passes)`` of the external sort's spill schedule: how many
    budget-sized sorted runs form, and how many times each byte crosses
    the disk (run formation plus the fan-in-limited merge cascade)."""
    if memory_budget < 1:
        raise ConfigurationError(
            f"memory_budget must be positive, got {memory_budget}"
        )
    chunk = max(memory_budget // (dtype_size * 4), 1)
    runs = max(-(-N // chunk), 1)
    passes, remaining = 1, runs
    while remaining > fan_in:
        remaining = -(-remaining // fan_in)
        passes += 1
    return runs, passes


def predict_external(
    N: int,
    P: int = 1,
    spec: MachineSpec = MEIKO_CS2,
    *,
    memory_budget: int = 64 << 20,
    fan_in: int = 64,
    dtype_size: int = 4,
    disk_read_bytes_per_s: float = None,
    disk_write_bytes_per_s: float = None,
    fsync_s: float = None,
    key_bits: int = 32,
    radix_bits: int = 8,
) -> PredictedTime:
    """Predict the spill-to-disk external sort's busy time.

    The closed form is I/O bandwidth plus merge passes: every byte is
    written and read once per pass (run formation, then each fan-in
    cascade level), charged at the measured — or conservatively assumed
    — sequential disk rates under ``spill``; run formation pays the
    radix kernel under ``local_sort`` and each pass pays one vectorized
    merge sweep under ``merge``.  ``P`` is accepted for signature
    symmetry but the external path runs on one box (``P=1``).
    """
    if N < 1:
        raise ConfigurationError(f"cannot predict a sort of {N} keys")
    if P != 1:
        raise ConfigurationError(
            f"the external sort runs out-of-core on one box (P=1), got P={P}"
        )
    read_bps = disk_read_bytes_per_s or CONSERVATIVE_DISK_READ_BPS
    write_bps = disk_write_bytes_per_s or CONSERVATIVE_DISK_WRITE_BPS
    sync_s = CONSERVATIVE_FSYNC_S if fsync_s is None else fsync_s
    runs, passes = external_merge_passes(N, memory_budget, dtype_size, fan_in)
    nbytes = N * dtype_size
    pt = PredictedTime("external", N, 1)
    pt._add(
        "local_sort",
        N * num_passes(key_bits, radix_bits) * spec.compute.radix_pass,
    )
    pt._add("merge", passes * N * spec.compute.merge)
    io_s = passes * (nbytes / write_bps + nbytes / read_bps)
    # One manifest fsync per run file written across the cascade.
    io_s += sync_s * runs
    pt._add("spill", io_s * 1e6)
    return pt


_PREDICTORS = {
    "smart": predict_smart,
    "cyclic-blocked": predict_cyclic_blocked,
    "blocked-merge": predict_blocked_merge,
    "external": predict_external,
}


def predict(algorithm: str, N: int, P: int, spec: MachineSpec = MEIKO_CS2,
            **kwargs) -> PredictedTime:
    """Predict by algorithm name (``smart``, ``cyclic-blocked``,
    ``blocked-merge``, ``radix``, ``sample``, ``external``)."""
    if algorithm in ("radix", "sample"):
        # Deferred: predict_comparators imports from this module.
        from repro.theory.predict_comparators import (
            predict_radix,
            predict_sample,
        )

        fn = predict_radix if algorithm == "radix" else predict_sample
        return fn(N, P, spec, **kwargs)
    if algorithm not in _PREDICTORS:
        choices = sorted(_PREDICTORS) + ["radix", "sample"]
        raise ConfigurationError(
            f"no predictor for {algorithm!r}; choose from {choices}"
        )
    return _PREDICTORS[algorithm](N, P, spec, **kwargs)
