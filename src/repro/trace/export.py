"""Trace exporters: Chrome-trace (``chrome://tracing``) and plain JSON.

The Chrome trace event format is the de-facto interchange for span
timelines — the JSON produced here loads directly in ``chrome://tracing``
(or Perfetto's legacy importer): one *process* per world, one *thread*
row per rank, one complete (``"ph": "X"``) event per recorded span, with
the span's category as the event category (so the UI colours phases
consistently).

The schema is pinned by a golden-file test
(``tests/test_trace.py::TestChromeExport``) and checked in CI by
``scripts/check_trace.py`` — the phase-category vocabulary drifting from
:data:`repro.machine.metrics.CATEGORIES` is a build failure, not a silent
rename.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.machine.metrics import CATEGORIES
from repro.trace.recorder import Tracer
from repro.trace.report import merged_counters

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "to_chrome_trace",
    "write_chrome_trace",
    "trace_to_dict",
]

#: Bumped whenever the exported structure changes shape.  /2 added the
#: ``spill`` I/O category (the out-of-core external sort's disk lane) to
#: the advertised vocabulary.
CHROME_TRACE_SCHEMA = "repro-bitonic-trace/2"


def to_chrome_trace(tracers: Sequence[Tracer]) -> Dict:
    """Render the world's tracers as one Chrome-trace JSON object.

    Timestamps are microseconds relative to the earliest span start in the
    world (Chrome's viewer expects µs); ranks map to thread lanes of one
    process.  Counters ride along under ``otherData`` together with the
    documented category vocabulary.
    """
    starts = [
        span[2] for tr in tracers for span in tr.spans if span[3] >= span[2]
    ]
    origin = min(starts) if starts else 0.0
    events: List[Dict] = []
    for tr in tracers:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tr.rank,
                "args": {"name": f"rank {tr.rank}"},
            }
        )
        for category, name, start, end, _parent in tr.spans:
            if end < start:
                continue  # never closed
            events.append(
                {
                    "name": category if name is None else str(name),
                    "cat": category,
                    "ph": "X",
                    "ts": round((start - origin) * 1e6, 3),
                    "dur": round((end - start) * 1e6, 3),
                    "pid": 0,
                    "tid": tr.rank,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_TRACE_SCHEMA,
            "categories": list(CATEGORIES),
            "ranks": len(tracers),
            "counters": merged_counters(tracers),
        },
    }


def write_chrome_trace(path: str, tracers: Sequence[Tracer]) -> None:
    """Write :func:`to_chrome_trace` output as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracers), fh, indent=2)
        fh.write("\n")


def trace_to_dict(tracers: Iterable[Tracer]) -> Dict:
    """Raw per-rank spans and counters as one JSON-ready dict (the
    machine-readable sibling of the Chrome export, for offline analysis)."""
    return {
        "schema": CHROME_TRACE_SCHEMA,
        "categories": list(CATEGORIES),
        "ranks": [
            {
                "rank": tr.rank,
                "spans": [
                    {
                        "category": cat,
                        "name": None if name is None else str(name),
                        "start_s": start,
                        "end_s": end,
                        "parent": parent,
                    }
                    for cat, name, start, end, parent in tr.spans
                ],
                "counters": dict(tr.counters),
            }
            for tr in tracers
        ],
    }
