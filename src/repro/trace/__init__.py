"""Unified tracing/metrics for the SPMD runtimes.

The simulated machine always accounted for where time goes
(:mod:`repro.machine.metrics`); the real ``threads`` and ``procs``
backends ran blind.  This package closes that gap:

* :mod:`repro.trace.recorder` — :class:`Tracer`: a low-overhead per-rank
  span/counter recorder using the *same category map* as the simulator
  (``local_sort``, ``merge``, ``pack``, ``transfer``, ``unpack``,
  ``wait``, ``retransmit``, …), threaded through the
  :class:`~repro.runtime.api.Comm` protocol as an optional ``tracer`` so
  both backends record collectives, the SPMD sort records phases, and
  the reliable transport records retransmissions;
* :mod:`repro.trace.report` — :class:`PhaseReport`: measured SPMD spans,
  simulated :class:`~repro.machine.metrics.RunStats`, and the LogGP
  closed forms (§3.4) aligned side by side with deviation ratios;
* :mod:`repro.trace.export` — Chrome-trace (``chrome://tracing``) and
  JSON exporters.

``repro-bitonic trace`` is the CLI face; ``repro.api.sort(trace=True)``
is the programmatic one.
"""

from repro.trace.export import (
    CHROME_TRACE_SCHEMA,
    to_chrome_trace,
    trace_to_dict,
    write_chrome_trace,
)
from repro.trace.recorder import COUNTERS, Tracer, trace_span
from repro.trace.report import PhaseReport, build_phase_report, merged_counters

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "COUNTERS",
    "PhaseReport",
    "Tracer",
    "build_phase_report",
    "merged_counters",
    "to_chrome_trace",
    "trace_span",
    "trace_to_dict",
    "write_chrome_trace",
]
