"""One report aligning measurement, simulation, and theory per phase.

The paper's evaluation is phase breakdowns (Figure 5.4, Table 5.4); this
module is the apparatus that produces them from *three* independent
sources at once:

``measured``
    Exclusive per-category wall time recorded by the per-rank
    :class:`~repro.trace.recorder.Tracer` of a real SPMD run (host clock,
    reported in µs, mean over ranks — the same convention as the
    simulator's ``mean_breakdown``).

``simulated``
    The LogGP machine's :class:`~repro.machine.metrics.RunStats` category
    times for the same ``(N, P)``.

``predicted``
    The closed-form :class:`~repro.theory.predict.PredictedTime` (§3.4
    generalized to total time).

Measured numbers are *host* microseconds while simulated/predicted ones
are *Meiko CS-2* microseconds, so absolute columns are not comparable
across that boundary — the **shares** (each category's fraction of its
column's total) are, and the deviation ratio reported per phase is
``measured share / reference share`` (reference = predicted when present,
else simulated).  A deviation near 1 means the LogGP model apportions
time the way the real runtime does; a large one names the phase where
reality and model disagree — exactly what a perf PR needs to claim it
moved a specific phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.machine.metrics import CATEGORIES, COMM_CATEGORIES, COMPUTE_CATEGORIES, RunStats
from repro.trace.recorder import Tracer

__all__ = ["PhaseReport", "build_phase_report", "merged_counters"]


def merged_counters(tracers: Iterable[Tracer]) -> Dict[str, int]:
    """Sum every counter over the world's tracers."""
    out: Dict[str, int] = {}
    for tr in tracers:
        for name, value in tr.counters.items():
            out[name] = out.get(name, 0) + value
    return out


@dataclass
class PhaseReport:
    """Per-phase time from up to three sources, aligned on the category
    map of :mod:`repro.machine.metrics`.

    Each column is a ``category -> µs per processor`` dict (mean over
    ranks/processors); absent columns are ``None``.  ``counters`` holds
    the world-summed trace counters of the measured run.
    """

    P: int
    n: int
    measured_us: Optional[Dict[str, float]] = None
    simulated_us: Optional[Dict[str, float]] = None
    predicted_us: Optional[Dict[str, float]] = None
    counters: Dict[str, int] = field(default_factory=dict)
    #: Mean traced wall seconds per rank of the measured run.
    measured_wall_s: Optional[float] = None
    #: Measured ``wait`` time split by cause, mean µs per rank:
    #: *transfer* wait is time blocked on data movement finishing
    #: (pending-op completion, pairwise receives), *queue* wait is time
    #: blocked on peers/schedulers reaching a rendezvous (barriers,
    #: posts, arena reuse).  The overlapped communication schedule
    #: shrinks only the transfer share — this split is how a run shows
    #: it did.  ``None`` when the run was untraced.
    measured_transfer_wait_us: Optional[float] = None
    measured_queue_wait_us: Optional[float] = None

    #: Category order of every table this report renders.
    categories: Sequence[str] = CATEGORIES

    # -- accessors -----------------------------------------------------

    def column(self, source: str) -> Optional[Dict[str, float]]:
        """One source's times by name: ``measured|simulated|predicted``."""
        return getattr(self, f"{source}_us")

    def total(self, source: str) -> float:
        col = self.column(source)
        return sum(col.values()) if col else 0.0

    def share(self, source: str, category: str) -> float:
        """``category``'s fraction of ``source``'s total time."""
        col = self.column(source)
        total = self.total(source)
        if not col or total <= 0.0:
            return 0.0
        return col.get(category, 0.0) / total

    def deviation(self, category: str) -> Optional[float]:
        """Measured share over the reference share (predicted when
        available, else simulated); ``None`` when either side is absent
        or the reference share is zero."""
        if self.measured_us is None:
            return None
        reference = "predicted" if self.predicted_us is not None else "simulated"
        if self.column(reference) is None:
            return None
        ref = self.share(reference, category)
        if ref <= 0.0:
            return None
        return self.share("measured", category) / ref

    def split(self, source: str) -> Dict[str, float]:
        """Computation / communication / other µs of one column (the
        Figure 5.4 split)."""
        col = self.column(source) or {}
        comp = sum(col.get(c, 0.0) for c in COMPUTE_CATEGORIES)
        comm = sum(col.get(c, 0.0) for c in COMM_CATEGORIES)
        return {
            "computation": comp,
            "communication": comm,
            "other": self.total(source) - comp - comm,
        }

    # -- rendering -----------------------------------------------------

    def describe(self) -> str:
        """Aligned measured / simulated / predicted per-phase table."""
        sources = [
            s for s in ("measured", "simulated", "predicted")
            if self.column(s) is not None
        ]
        header = ["phase"]
        for s in sources:
            header += [f"{s} µs", "%"]
        if self.measured_us is not None and len(sources) > 1:
            header.append("dev")
        rows = []
        for cat in self.categories:
            if not any(self.column(s).get(cat, 0.0) for s in sources):
                continue
            row = [cat]
            for s in sources:
                row.append(f"{self.column(s).get(cat, 0.0):.1f}")
                row.append(f"{100.0 * self.share(s, cat):.1f}")
            if self.measured_us is not None and len(sources) > 1:
                dev = self.deviation(cat)
                row.append("-" if dev is None else f"{dev:.2f}")
            rows.append(row)
        total_row = ["total"]
        for s in sources:
            total_row += [f"{self.total(s):.1f}", "100.0"]
        if self.measured_us is not None and len(sources) > 1:
            total_row.append("")
        rows.append(total_row)

        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines = [
            f"phase breakdown — P={self.P}, n={self.n:,} keys/rank "
            "(µs per processor; measured = host clock, "
            "simulated/predicted = LogGP model)",
            "  ".join(h.rjust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(c.rjust(w) for c, w in zip(r, widths)) for r in rows]
        for s in sources:
            sp = self.split(s)
            lines.append(
                f"{s:>9}: computation {sp['computation']:.1f} µs, "
                f"communication {sp['communication']:.1f} µs, "
                f"other {sp['other']:.1f} µs"
            )
        if self.measured_wall_s is not None:
            lines.append(
                f"measured wall (mean per rank): {self.measured_wall_s:.4f} s"
            )
        if self.measured_transfer_wait_us is not None:
            lines.append(
                f"measured wait split (mean per rank): "
                f"transfer {self.measured_transfer_wait_us:.1f} µs, "
                f"queue {self.measured_queue_wait_us:.1f} µs"
            )
        if self.counters:
            pretty = ", ".join(
                f"{k}={v:,}" for k, v in sorted(self.counters.items())
            )
            lines.append(f"counters: {pretty}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        """JSON-ready form (used by exporters and the CI trace gate)."""
        return {
            "P": self.P,
            "n": self.n,
            "categories": list(self.categories),
            "measured_us": self.measured_us,
            "simulated_us": self.simulated_us,
            "predicted_us": self.predicted_us,
            "deviation": {
                c: self.deviation(c)
                for c in self.categories
                if self.deviation(c) is not None
            },
            "counters": dict(self.counters),
            "measured_wall_s": self.measured_wall_s,
            "measured_wait_split": (
                None
                if self.measured_transfer_wait_us is None
                else {
                    "transfer_wait_us": self.measured_transfer_wait_us,
                    "queue_wait_us": self.measured_queue_wait_us,
                }
            ),
        }


def build_phase_report(
    tracers: Optional[Sequence[Tracer]] = None,
    stats: Optional[RunStats] = None,
    predicted=None,
    P: Optional[int] = None,
    n: Optional[int] = None,
) -> PhaseReport:
    """Assemble a :class:`PhaseReport` from whichever sources exist.

    ``tracers`` are the measured run's per-rank recorders; ``stats`` is a
    simulated :class:`~repro.machine.metrics.RunStats`; ``predicted`` is a
    :class:`~repro.theory.predict.PredictedTime`.  ``P``/``n`` default to
    whatever the given sources agree on.
    """
    measured = counters = wall = None
    transfer_wait = queue_wait = None
    if tracers:
        per_rank = [tr.totals() for tr in tracers]
        measured = {
            cat: 1e6 * sum(t.get(cat, 0.0) for t in per_rank) / len(per_rank)
            for cat in CATEGORIES
            if any(t.get(cat, 0.0) for t in per_rank)
        }
        counters = merged_counters(tracers)
        wall = sum(tr.wall() for tr in tracers) / len(tracers)
        splits = [tr.wait_split() for tr in tracers]
        transfer_wait = 1e6 * sum(s["transfer_wait"] for s in splits) / len(splits)
        queue_wait = 1e6 * sum(s["queue_wait"] for s in splits) / len(splits)
        P = P if P is not None else len(tracers)
    simulated = None
    if stats is not None:
        simulated = {
            c: v for c, v in stats.mean_breakdown.times.items() if v
        }
        P = P if P is not None else stats.P
        n = n if n is not None else stats.n
    pred_col = None
    if predicted is not None:
        pred_col = {c: v for c, v in predicted.times.items() if v}
        P = P if P is not None else predicted.P
        n = n if n is not None else predicted.n
    return PhaseReport(
        P=P or 0,
        n=n or 0,
        measured_us=measured,
        simulated_us=simulated,
        predicted_us=pred_col,
        counters=counters or {},
        measured_wall_s=wall,
        measured_transfer_wait_us=transfer_wait,
        measured_queue_wait_us=queue_wait,
    )
