"""The per-rank span/counter recorder.

A :class:`Tracer` is one rank's measurement notebook: *spans* are
``(category, name, start, end)`` intervals on the host's monotonic clock
(:func:`time.perf_counter`), *counters* are named integals (bytes sent,
messages, remaps, retries).  Span categories are exactly the simulated
machine's time categories (:data:`repro.machine.metrics.CATEGORIES`), so a
measured SPMD run, a simulated run, and the LogGP closed forms can be laid
side by side phase for phase (:mod:`repro.trace.report`).

Spans nest: a ``transfer`` span opened by the sort around ``alltoallv``
contains the ``wait`` spans the communicator records at its barriers.  The
recorder keeps the parent index of every span, and :meth:`Tracer.totals`
reports *exclusive* (self) time per category, so nested categories never
double-count — per-rank category totals sum to (at most) the traced wall
time.

Overhead discipline: recording is two ``perf_counter()`` calls and one
list append per span.  When no tracer is armed the instrumented code paths
go through :func:`trace_span` with ``tracer=None``, which returns one
shared no-op context manager — **zero objects allocated** on the untraced
hot path (``tests/test_trace.py`` pins this).

Tracers are plain data (lists, dicts, ints): the procs backend's ranks
pickle them through the existing result channel, and on Linux
``perf_counter`` is ``CLOCK_MONOTONIC``, so cross-process timestamps share
one timebase.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.machine.metrics import CATEGORIES

__all__ = ["COUNTERS", "Tracer", "trace_span"]

_CATEGORY_SET = frozenset(CATEGORIES)

#: The counter names the instrumented runtimes emit (a tracer accepts any
#: name; these are the documented ones).
COUNTERS = (
    "messages",         # payloads actually handed to a peer
    "bytes_sent",       # payload bytes of those messages
    "coll.alltoallv",   # collective calls, by kind
    "coll.sendrecv",
    "coll.allgather",
    "coll.bcast",
    "coll.group_alltoallv",  # group-scoped collective calls (Lemma 4)
    "coll.group_size",  # summed member count of those groups
    "coll.fused",       # fused pack/transfer/unpack collectives
    "coll.fused_direct",  # ... of which took a backend zero-copy path
    "coll.overlapped",  # nonblocking (post/complete) collectives posted
    "coll.chunks",      # summed chunk count of overlapped remap pipelines
    "coll.slots",       # per-destination descriptor slots written/scanned
    "remaps",           # data remaps performed by the sort
    "retries",          # retransmission rounds (reliable transport)
    "resent_elements",  # elements retransmitted across those rounds
    "adapt.updates",    # online-adaptation observations folded (service lane)
    "pool.scale_up",    # worlds pre-spawned by the pool autoscaler
    "pool.scale_down",  # idle worlds shrunk by the pool autoscaler
    "ext.runs",         # sorted runs the external sort spilled to disk
    "ext.buckets",      # splitter-bounded buckets merged back out
    "ext.spill_bytes",  # bytes written to the spill directory
)

#: Shared no-op context manager for the ``tracer=None`` fast path.  It is
#: stateless, so concurrent reuse from many ranks is safe.
_NOOP = nullcontext()


class Tracer:
    """Low-overhead span/counter recorder for one rank.

    Use :meth:`span` as a context manager (or the paired
    :meth:`begin`/:meth:`end` where a ``with`` block is awkward) and
    :meth:`add` for counters.  A tracer belongs to one rank — one thread
    or process — and is never shared.
    """

    __slots__ = ("rank", "spans", "counters", "_stack")

    def __init__(self, rank: int = 0):
        self.rank = rank
        #: ``[category, name, start_s, end_s, parent_index]`` per span,
        #: in open order; ``parent_index`` is -1 for top-level spans.
        self.spans: List[List[Any]] = []
        self.counters: Dict[str, int] = {}
        self._stack: List[int] = []

    # -- recording -----------------------------------------------------

    def begin(self, category: str, name: Any = None) -> int:
        """Open a span; returns its index for :meth:`end`."""
        if category not in _CATEGORY_SET:
            raise ConfigurationError(
                f"unknown trace category {category!r}; use one of {CATEGORIES}"
            )
        spans = self.spans
        index = len(spans)
        stack = self._stack
        spans.append(
            [category, name, perf_counter(), 0.0, stack[-1] if stack else -1]
        )
        stack.append(index)
        return index

    def end(self, index: int) -> None:
        """Close the span opened by the matching :meth:`begin` (LIFO)."""
        self.spans[index][3] = perf_counter()
        self._stack.pop()

    def span(self, category: str, name: Any = None) -> "_Span":
        """Context manager recording one span."""
        return _Span(self, category, name)

    def add(self, counter: str, value: int = 1) -> None:
        """Accumulate ``value`` into the named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    # -- summaries -----------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Exclusive (self) seconds per category.

        A span's children are subtracted from it, so nested spans never
        double-count; categories absent from the trace are omitted.
        Unclosed spans are ignored.
        """
        sums: Dict[str, float] = {}
        spans = self.spans
        for category, _name, start, end, parent in spans:
            if end < start:
                continue  # never closed
            dur = end - start
            sums[category] = sums.get(category, 0.0) + dur
            if parent >= 0:
                pcat = spans[parent][0]
                sums[pcat] = sums.get(pcat, 0.0) - dur
        return sums

    #: ``wait`` span names that measure *transfer* wait — time blocked on
    #: data movement finishing (pending-op completion, pairwise receives,
    #: group descriptor posts).  Every other wait name (barriers, pending
    #: posts, arena reuse, service queueing) is *queue* wait: time blocked
    #: on peers or the scheduler reaching a rendezvous.  The overlapped
    #: communication schedule shrinks only the transfer share, which is
    #: why :class:`repro.trace.report.PhaseReport` reports them apart.
    _TRANSFER_WAIT_NAMES = frozenset({"complete", "sendrecv-recv", "group-post"})

    def wait_split(self) -> Dict[str, float]:
        """Exclusive ``wait`` seconds split by what was being waited for:
        ``{"transfer_wait": s, "queue_wait": s}`` (see
        :attr:`_TRANSFER_WAIT_NAMES` for the classification)."""
        transfer = 0.0
        queue = 0.0
        spans = self.spans
        for category, name, start, end, parent in spans:
            if category != "wait" or end < start:
                continue
            dur = end - start
            if str(name) in self._TRANSFER_WAIT_NAMES:
                transfer += dur
            else:
                queue += dur
            if parent >= 0 and spans[parent][0] == "wait":
                # Exclusive within the category: a nested wait span's time
                # leaves its parent's bucket (mirrors ``totals()``).
                if str(spans[parent][1]) in self._TRANSFER_WAIT_NAMES:
                    transfer -= dur
                else:
                    queue -= dur
        return {"transfer_wait": transfer, "queue_wait": queue}

    def wall(self) -> float:
        """Seconds covered by top-level spans (the traced wall time)."""
        return sum(
            end - start
            for _c, _n, start, end, parent in self.spans
            if parent < 0 and end >= start
        )

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"Tracer(rank={self.rank}, spans={len(self.spans)}, "
            f"counters={self.counters})"
        )


class _Span:
    """Context manager recording one span on its tracer."""

    __slots__ = ("_tracer", "_category", "_name", "_index")

    def __init__(self, tracer: Tracer, category: str, name: Any):
        self._tracer = tracer
        self._category = category
        self._name = name

    def __enter__(self) -> "_Span":
        self._index = self._tracer.begin(self._category, self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.end(self._index)


def trace_span(tracer: Optional[Tracer], category: str, name: Any = None):
    """A span on ``tracer``, or the shared no-op context when ``tracer``
    is ``None`` — the instrumented hot paths call this unconditionally and
    pay nothing when tracing is off."""
    return _NOOP if tracer is None else _Span(tracer, category, name)
