"""The LogP and LogGP models of parallel computation (§3.4.1).

LogP [CKP+93] characterizes a message-passing machine by four parameters:

``L``
    an upper bound on the latency of a (short) message from source to target;
``o``
    the overhead: time a processor is busy sending or receiving one message;
``g``
    the gap: minimum interval between consecutive message transmissions (its
    reciprocal is the per-processor short-message bandwidth);
``P``
    the number of processor/memory modules.

LogGP [AISS95] adds

``G``
    the Gap per byte for long messages (its reciprocal is the long-message
    bandwidth).

Under LogGP the time for one long message of ``k`` bytes, from the moment the
sender starts until the receiver has it, is ``o + (k-1)G + L + o``.  A short
message is the ``k = 1`` "unit" of the LogP model; for a remap in which a
processor sends ``V`` elements as short messages the paper uses
``T = L + 2o + (V-1) * max(g, 2o)`` (§3.4.2) — we expose both that exact
expression and per-message primitives so the simulator can account time
message by message.

All times are in microseconds; sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["LogPParams", "LogGPParams"]


@dataclass(frozen=True)
class LogPParams:
    """LogP parameters ``(L, o, g, P)``; times in microseconds."""

    L: float
    o: float
    g: float
    P: int

    def __post_init__(self) -> None:
        if self.L < 0 or self.o < 0 or self.g < 0:
            raise ConfigurationError(
                f"LogP parameters must be non-negative: L={self.L}, o={self.o}, g={self.g}"
            )
        if self.P < 1:
            raise ConfigurationError(f"P must be >= 1, got {self.P}")

    @property
    def per_message_cost(self) -> float:
        """Effective cost a sender pays per additional short message.

        The paper notes that in practice ``2o < g`` so the pipeline rate is
        the gap ``g``; we take ``max(g, 2o)`` as in §3.4.2.
        """
        return max(self.g, 2.0 * self.o)

    def short_remap_time(self, volume: int) -> float:
        """Time for one remap in which each processor sends/receives
        ``volume`` elements as short messages (§3.4.2):

        ``T = L + 2o + (V - 1) * max(g, 2o)``.
        """
        if volume < 0:
            raise ConfigurationError(f"volume must be >= 0, got {volume}")
        if volume == 0:
            return 0.0
        return self.L + 2.0 * self.o + (volume - 1) * self.per_message_cost

    def total_short_time(self, remaps: int, volume: int) -> float:
        """Total communication time over ``remaps`` remaps transferring
        ``volume`` elements in aggregate (§3.4.2):

        ``T = (L + 2o - g') * R + g' * V`` with ``g' = max(g, 2o)``.
        """
        gp = self.per_message_cost
        return (self.L + 2.0 * self.o - gp) * remaps + gp * volume


@dataclass(frozen=True)
class LogGPParams:
    """LogGP parameters ``(L, o, g, G, P)``; times in microseconds, ``G`` in
    microseconds per byte."""

    L: float
    o: float
    g: float
    G: float
    P: int

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g, self.G) < 0:
            raise ConfigurationError(
                "LogGP parameters must be non-negative: "
                f"L={self.L}, o={self.o}, g={self.g}, G={self.G}"
            )
        if self.P < 1:
            raise ConfigurationError(f"P must be >= 1, got {self.P}")

    @property
    def logp(self) -> LogPParams:
        """The LogP restriction (drop ``G``)."""
        return LogPParams(L=self.L, o=self.o, g=self.g, P=self.P)

    def with_procs(self, P: int) -> "LogGPParams":
        """The same network parameters on a machine of ``P`` nodes."""
        return replace(self, P=P)

    def long_message_send_busy(self, nbytes: int) -> float:
        """Time the *sender* is busy injecting one long message:
        ``o + (k - 1) G``."""
        if nbytes < 1:
            raise ConfigurationError(f"nbytes must be >= 1, got {nbytes}")
        return self.o + (nbytes - 1) * self.G

    def long_message_latency(self, nbytes: int) -> float:
        """End-to-end time of one long message, sender start to receiver
        done: ``o + (k - 1) G + L + o``."""
        return self.long_message_send_busy(nbytes) + self.L + self.o

    def remap_time(self, volume_bytes: int, messages: int) -> float:
        """LogGP time for one remap where a processor transfers
        ``volume_bytes`` spread over ``messages`` long messages (§3.4.3):

        ``T = L + 2o + G (V - M) + g (M - 1)``

        where ``V`` counts *elements* in the paper; here we take ``V`` in
        bytes and ``M`` messages, charging ``G`` per byte beyond the first of
        each message and ``g`` between message starts.
        """
        if messages < 0 or volume_bytes < 0:
            raise ConfigurationError("volume and messages must be >= 0")
        if messages == 0:
            return 0.0
        return (
            self.L
            + 2.0 * self.o
            + self.G * max(volume_bytes - messages, 0)
            + self.g * (messages - 1)
        )

    def total_long_time(self, remaps: int, volume_bytes: int, messages: int) -> float:
        """Total communication time across a whole run (§3.4.3):

        ``T = (L + 2o) R + G (V - M) + g (M - R)``

        (with ``V`` in bytes here).  Equals summing :meth:`remap_time` over
        remaps when volume and messages are spread evenly.
        """
        if remaps < 0 or messages < 0 or volume_bytes < 0:
            raise ConfigurationError("remaps, volume and messages must be >= 0")
        return (
            (self.L + 2.0 * self.o) * remaps
            + self.G * max(volume_bytes - messages, 0)
            + self.g * max(messages - remaps, 0)
        )
