"""Calibrated machine descriptions.

A :class:`MachineSpec` bundles everything the simulator needs to charge time:

* LogGP network parameters (for both short- and long-message accounting);
* per-operation local computation costs (:class:`ComputeCosts`);
* a :class:`~repro.model.cache.CacheModel`.

Calibration
-----------
The Meiko CS-2 preset is calibrated against the paper's own measurements, not
against independently published LogGP constants, because the goal of the
reproduction is to match the *shape* of Tables 5.1–5.4 (DESIGN.md §2):

* ``g`` is set so that the short-message remap cost per transferred element is
  ~3.3 µs: at P=16 the smart algorithm transfers ``lg P = 4`` elements per
  key, and Table 5.3 reports ≈13.2 µs/key for the short-message version.
* ``G`` is set so that long-message transfer time is ~0.15 µs/key at P=16
  (Table 5.4): 16 bytes transferred per key ⇒ G ≈ 0.0094 µs/B ≈ 106 MB/s.
* ``pack_per_key``/``unpack_per_key`` reproduce Table 5.4's ≈0.37/0.14 µs per
  key over 4 transferred elements per key.
* compute constants reproduce Table 5.1's ≈0.5 µs/key for the fully
  optimized Smart sort at P=32 (radix ≈ 0.1 µs/key, one merge phase ≈
  0.03 µs/key, 6 phases).
* the cache model reproduces the upturn at 512K–1M keys/processor.

All constants are in microseconds (per element where applicable).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.model.cache import CacheModel
from repro.model.logp import LogGPParams

__all__ = [
    "ComputeCosts",
    "MachineSpec",
    "MEIKO_CS2",
    "COMPUTE_MEIKO_CS2",
    "GENERIC_CLUSTER",
]

#: Bytes per key (uint32) used uniformly for volume accounting.
KEY_BYTES = 4


@dataclass(frozen=True)
class ComputeCosts:
    """Per-element local computation costs, in microseconds.

    Each constant prices one elementary pass of the corresponding kernel over
    one element; kernels report *counts* and the simulator multiplies by
    these constants (and the cache factor) to advance the virtual clock.
    """

    #: One counting-sort pass of LSD radix sort (the paper uses radix sort
    #: for the first ``lg n`` stages; 4 passes of 8 bits cover 32-bit keys).
    radix_pass: float = 0.025
    #: The scatter half of one *parallel* radix-sort pass: computing each
    #: key's global rank and permuting it into the send buffers — random
    #: access, priced above a streaming pass.
    radix_permute: float = 0.050
    #: One element moved through a two-way merge (also prices one element of
    #: a bitonic merge, which is a rotation plus a two-way merge — Lemma 9).
    merge: float = 0.030
    #: One simulated compare-exchange touch of one element (one network step).
    compare_exchange: float = 0.040
    #: Packing one element into a long-message send buffer (§3.3.1).
    pack: float = 0.090
    #: Unpacking one element from a received long message.
    unpack: float = 0.035
    #: Computing one element's destination (relative address) for a remap —
    #: the paper's "intermediate phase" (§1.2).  Cheap: destinations follow
    #: from the pack-mask bit fields, not per-element arithmetic (§3.3.1).
    address: float = 0.005
    #: Extra per-element cost when pack/unpack is *fused* into the local sort
    #: (§4.3): the sort writes through the pack mask instead of sequentially,
    #: which costs a little extra per element but removes the separate
    #: pack/unpack passes entirely.
    fused_pack: float = 0.015

    def __post_init__(self) -> None:
        for name in (
            "radix_pass",
            "radix_permute",
            "merge",
            "compare_exchange",
            "pack",
            "unpack",
            "address",
            "fused_pack",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"compute cost {name} must be >= 0")


@dataclass(frozen=True)
class MachineSpec:
    """A complete simulated machine: network + compute + cache models.

    ``dma_offload`` models the paper's future-work item "overlap
    computation and communication" (Ch. 7) using the hardware the CS-2
    already had: the Elan co-processor's DMA engine (§5.1).  When enabled,
    a long message costs the *CPU* only the ``o`` initiation overhead — the
    ``(k-1)G`` injection runs on the co-processor — while the wire time
    (and hence the arrival instant at the receiver) is unchanged.
    """

    name: str
    network: LogGPParams
    compute: ComputeCosts = field(default_factory=ComputeCosts)
    cache: CacheModel = field(default_factory=CacheModel)
    key_bytes: int = KEY_BYTES
    dma_offload: bool = False

    def __post_init__(self) -> None:
        if self.key_bytes <= 0:
            raise ConfigurationError(f"key_bytes must be positive, got {self.key_bytes}")

    def with_procs(self, P: int) -> "MachineSpec":
        """The same machine scaled to ``P`` nodes."""
        return replace(self, network=self.network.with_procs(P))


#: Meiko CS-2 computation constants (40 MHz SuperSparc, 1 MB external cache).
COMPUTE_MEIKO_CS2 = ComputeCosts()

#: The 64-node Meiko CS-2 of Chapter 5, expressed as LogGP parameters
#: calibrated per the module docstring.  ``L`` and ``o`` are in the regime
#: reported for Active Messages on the CS-2 [SS95].
MEIKO_CS2 = MachineSpec(
    name="Meiko CS-2",
    network=LogGPParams(L=7.5, o=1.7, g=3.3, G=0.0094, P=64),
    compute=COMPUTE_MEIKO_CS2,
    cache=CacheModel(capacity_bytes=1 << 20, key_bytes=KEY_BYTES, alpha=0.45),
)

#: A generic modern-ish cluster: lower overheads, higher bandwidth, bigger
#: cache.  Used by examples to show how conclusions shift with the machine.
GENERIC_CLUSTER = MachineSpec(
    name="generic cluster",
    network=LogGPParams(L=2.0, o=0.5, g=1.0, G=0.001, P=256),
    compute=ComputeCosts(
        radix_pass=0.004,
        radix_permute=0.006,
        merge=0.005,
        compare_exchange=0.007,
        pack=0.012,
        unpack=0.006,
        address=0.001,
        fused_pack=0.002,
    ),
    cache=CacheModel(capacity_bytes=8 << 20, key_bytes=KEY_BYTES, alpha=0.6),
)
