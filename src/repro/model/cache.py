"""A minimal cache-capacity model for local computation.

Figure 5.4 of the paper observes that as the number of keys per processor
grows, "a higher percentage of the total execution time is spent during the
local computation phases... due to cache misses".  Each Meiko CS-2 node has a
1 MB external cache; at 4 bytes per key the working set exceeds it beyond
256 K keys per processor, and the per-key computation time in Table 5.1
correspondingly creeps up at 512 K and 1 M keys/processor.

We model this with a single multiplicative penalty on local-computation time:

``factor(n) = 1 + alpha * max(0, 1 - capacity_keys / n)``

which is 1 while the working set fits and saturates at ``1 + alpha`` for
working sets far beyond the cache.  This is deliberately crude — it exists to
reproduce the *shape* of the upturn, not to model a memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CacheModel"]


@dataclass(frozen=True)
class CacheModel:
    """Cache-capacity penalty on local computation.

    Parameters
    ----------
    capacity_bytes:
        Cache size in bytes (1 MB on the Meiko CS-2 node).
    key_bytes:
        Bytes per key (4 for ``uint32``).
    alpha:
        Saturation penalty: computation slows by at most ``1 + alpha`` when
        the working set vastly exceeds the cache.
    """

    capacity_bytes: int = 1 << 20
    key_bytes: int = 4
    alpha: float = 0.45

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.key_bytes <= 0:
            raise ConfigurationError("cache capacity and key size must be positive")
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")

    @property
    def capacity_keys(self) -> int:
        """How many keys fit in cache."""
        return self.capacity_bytes // self.key_bytes

    def factor(self, keys_per_proc: int) -> float:
        """Computation-time multiplier for a working set of ``keys_per_proc``
        keys (always >= 1)."""
        if keys_per_proc <= 0:
            raise ConfigurationError(
                f"keys_per_proc must be positive, got {keys_per_proc}"
            )
        if keys_per_proc <= self.capacity_keys:
            return 1.0
        return 1.0 + self.alpha * (1.0 - self.capacity_keys / keys_per_proc)
