"""Cost models of parallel computation: LogP, LogGP, and a computation/cache
model calibrated so that simulated times land in the same regime as the
paper's Meiko CS-2 measurements."""

from repro.model.logp import LogGPParams, LogPParams
from repro.model.cache import CacheModel
from repro.model.machines import (
    COMPUTE_MEIKO_CS2,
    GENERIC_CLUSTER,
    MEIKO_CS2,
    ComputeCosts,
    MachineSpec,
)

__all__ = [
    "LogPParams",
    "LogGPParams",
    "CacheModel",
    "ComputeCosts",
    "MachineSpec",
    "MEIKO_CS2",
    "COMPUTE_MEIKO_CS2",
    "GENERIC_CLUSTER",
]
