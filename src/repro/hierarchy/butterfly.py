"""Tiled butterfly execution on a two-level memory.

The analogy to the parallel algorithm is exact:

===============================  ====================================
parallel machine                 memory hierarchy
===============================  ====================================
processor                        cache-resident tile
``n = N/P`` keys per processor   ``C`` words of fast memory
remap (all-to-all)               re-tiling pass through slow memory
``lg n`` local steps per remap   ``lg C`` levels per tile residency
===============================  ====================================

:func:`tiled_fft` *executes* a radix-2 FFT this way, using the same
:func:`~repro.fft.layouts.window_layout` bit-field layouts with
``P = N / C`` "processors" (tiles), verifying the numerical result while a
:class:`~repro.hierarchy.memory.TrafficCounter` counts the slow-memory
words actually moved.  The analytic forms
:func:`naive_butterfly_traffic` / :func:`tiled_butterfly_traffic` are the
closed-form counterparts (tested to match the executed counts exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.fft.layouts import window_layout
from repro.fft.sequential import bit_reverse_permute, fft_level
from repro.hierarchy.memory import TrafficCounter
from repro.utils.bits import ilog2
from repro.utils.validation import require_power_of_two

__all__ = [
    "naive_butterfly_traffic",
    "tiled_butterfly_traffic",
    "tiled_fft",
    "TiledFFTResult",
]


def naive_butterfly_traffic(N: int, capacity: int) -> int:
    """Slow-memory words moved by level-at-a-time streaming execution.

    When ``N > C``, every butterfly level streams the whole array through
    fast memory once (load + store): ``2 N lg N`` words.  When the array
    fits, it is loaded and stored once.
    """
    N = require_power_of_two(N, "N")
    if N <= capacity:
        return 2 * N
    return 2 * N * ilog2(N)


def tiled_butterfly_traffic(N: int, capacity: int) -> int:
    """Slow-memory words moved by remap-tiled execution: one load + store
    of the array per window of ``lg C`` levels —
    ``2 N ceil(lg N / lg C)`` words."""
    N = require_power_of_two(N, "N")
    capacity = require_power_of_two(capacity, "capacity")
    if N <= capacity:
        return 2 * N
    lgC = ilog2(capacity)
    if lgC == 0:
        raise ConfigurationError("fast memory must hold at least 2 words")
    lgN = ilog2(N)
    return 2 * N * (-(-lgN // lgC))


@dataclass
class TiledFFTResult:
    """Output and traffic of one tiled FFT execution."""

    output: np.ndarray
    traffic: TrafficCounter
    passes: int


def tiled_fft(x: np.ndarray, capacity: int) -> TiledFFTResult:
    """Execute a radix-2 FFT of ``x`` with fast memory of ``capacity``
    complex words, counting slow-memory traffic.

    Each pass re-tiles the (conceptual) slow-memory array under the next
    window layout and runs that window's levels tile by tile, entirely in
    fast memory.  The result is verified against the untiled reference in
    the tests; traffic matches :func:`tiled_butterfly_traffic` exactly.
    """
    x = np.asarray(x, dtype=np.complex128)
    N = require_power_of_two(x.size, "N")
    capacity = require_power_of_two(capacity, "capacity")
    lgN = ilog2(N)

    data = bit_reverse_permute(x)
    counter = TrafficCounter(capacity=capacity)

    if N <= capacity:
        counter.load(N)
        absaddr = np.arange(N)
        for level in range(1, lgN + 1):
            fft_level(data, absaddr, level, N, local_bit=level - 1)
        counter.store(N)
        return TiledFFTResult(output=data, traffic=counter, passes=1)

    tiles = N // capacity  # plays the role of P
    lgC = ilog2(capacity)
    covered = 0
    passes = 0
    while covered < lgN:
        lo = min(covered, lgN - lgC)
        layout = window_layout(N, tiles, lo)
        top = min(lo + lgC, lgN)
        levels = range(covered + 1, top + 1)
        for tile in range(tiles):
            absaddr = layout.absolute_addresses(tile)
            counter.load(capacity)
            chunk = data[absaddr]
            for level in levels:
                lb = layout.local_bit_of_abs_bit(level - 1)
                fft_level(chunk, absaddr, level, N, lb)
            data[absaddr] = chunk
            counter.store(capacity)
        covered = top
        passes += 1
    return TiledFFTResult(output=data, traffic=counter, passes=passes)
