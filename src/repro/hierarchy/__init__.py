"""Remap-based tiling for memory hierarchies — the paper's last
future-work item.

Chapter 7 closes with: "our technique of remapping the data, given a data
pattern configuration, in such a way that data accesses are minimized is
applicable in any hierarchical memory model.  Since accesses across
different layers of the hierarchy are very expensive, given the
'communication pattern' (i.e. memory access pattern) we can derive data
remaps such that we maximize the ratio of local accesses to remote
accesses."

This package realizes that idea for the butterfly: treat a cache-resident
tile of ``C`` words exactly like a processor's partition — the "processor
part" of an address becomes the tile index in slow memory, the "local
part" the offset inside the tile — and reuse the same sliding-window
bit-field layouts.  Executing ``lg C`` butterfly levels per tile residency
cuts slow-memory traffic from ``N lg N`` words (streaming the whole array
once per level) to ``N * ceil(lg N / lg C)`` words, the classic
``Θ(N lg N / lg C)`` I/O bound for the FFT.
"""

from repro.hierarchy.memory import TrafficCounter
from repro.hierarchy.butterfly import (
    naive_butterfly_traffic,
    tiled_butterfly_traffic,
    tiled_fft,
)

__all__ = [
    "TrafficCounter",
    "naive_butterfly_traffic",
    "tiled_butterfly_traffic",
    "tiled_fft",
]
