"""A two-level memory traffic counter.

Deliberately minimal: fast memory of ``capacity`` words over a slow memory,
with explicit tile loads and writebacks (the execution strategies here tile
explicitly, so no replacement policy is needed).  The counter tracks words
moved in each direction — the "remote accesses" of the paper's hierarchy
analogy — which is the quantity the remap-based tiling minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["TrafficCounter"]


@dataclass
class TrafficCounter:
    """Counts slow↔fast memory traffic, in words.

    ``capacity`` is the fast-memory size in words; ``load``/``store``
    record transfers and enforce that no single resident working set
    exceeds the capacity.
    """

    capacity: int
    loaded_words: int = 0
    stored_words: int = 0
    resident: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"fast memory capacity must be >= 1 word, got {self.capacity}"
            )

    def load(self, words: int) -> None:
        """Bring ``words`` words into fast memory."""
        if words < 0:
            raise ConfigurationError(f"cannot load {words} words")
        if self.resident + words > self.capacity:
            raise ConfigurationError(
                f"working set {self.resident + words} exceeds fast memory "
                f"capacity {self.capacity}"
            )
        self.resident += words
        self.loaded_words += words

    def store(self, words: int) -> None:
        """Write ``words`` words back to slow memory and release them."""
        if words < 0 or words > self.resident:
            raise ConfigurationError(
                f"cannot store {words} words with {self.resident} resident"
            )
        self.resident -= words
        self.stored_words += words

    @property
    def total_traffic(self) -> int:
        """Total words moved across the hierarchy boundary."""
        return self.loaded_words + self.stored_words
