"""Sliding-window layouts for a single butterfly.

A butterfly touches absolute bit ``level - 1`` at level ``level`` — each
bit exactly once, low to high.  A layout whose *local* field is the bit
window ``[lo, lo + lg n - 1]`` therefore keeps ``lg n`` consecutive levels
communication-free; sliding the window left to right covers the whole
butterfly in ``ceil(lg P / lg n)`` remaps after the initial blocked phase
(window at ``lo = 0``).  For ``n >= P`` one remap suffices, and the second
window *is* the cyclic layout — §2.3's classic FFT remap falls out as the
two-window special case.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ScheduleError
from repro.layouts.base import LOCAL, PROC, BitFieldLayout, Field
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["window_layout", "butterfly_schedule"]


def window_layout(N: int, P: int, lo: int) -> BitFieldLayout:
    """The layout whose local address is absolute bits
    ``lo .. lo + lg n - 1`` (low processor field below, high above).

    ``window_layout(N, P, 0)`` is the blocked layout;
    ``window_layout(N, P, lg P)`` is the cyclic layout.
    """
    N, P, n = require_sizes(N, P)
    lgN = ilog2(N)
    lgn = ilog2(n) if n > 1 else 0
    if not 0 <= lo <= lgN - lgn:
        raise ScheduleError(
            f"window start {lo} out of range 0 .. {lgN - lgn} for N={N}, P={P}"
        )
    fields = [
        Field(src_lo=0, width=lo, part=PROC, dst_lo=0),
        Field(src_lo=lo, width=lgn, part=LOCAL, dst_lo=0),
        Field(src_lo=lo + lgn, width=lgN - lgn - lo, part=PROC, dst_lo=lo),
    ]
    return BitFieldLayout(N, P, fields, name=f"window[{lo}..{lo + lgn - 1}]")


def butterfly_schedule(N: int, P: int) -> List[Tuple[BitFieldLayout, range]]:
    """Phases covering one ``lg N``-level butterfly: a list of
    ``(layout, levels)`` pairs, the first under the blocked layout (no
    remap), each subsequent one requiring one remap.

    Levels are 1-based; phase ``i`` covers the levels whose touched bits
    lie in its window.  Total remaps: ``ceil(lg P / lg n)``.
    """
    N, P, n = require_sizes(N, P)
    lgN = ilog2(N)
    lgn = ilog2(n) if n > 1 else 0
    if P == 1:
        return [(window_layout(N, P, 0), range(1, lgN + 1))]
    if lgn == 0:
        raise ScheduleError("the butterfly schedule needs n >= 2 keys per processor")
    phases: List[Tuple[BitFieldLayout, range]] = []
    covered = 0  # levels (== bits) completed so far
    while covered < lgN:
        lo = min(covered, lgN - lgn)
        layout = window_layout(N, P, lo)
        top = min(lo + lgn, lgN)
        phases.append((layout, range(covered + 1, top + 1)))
        covered = top
    return phases
