"""Parallel FFT on the remap framework — the paper's own generalization.

Chapter 7 points out that the remapping techniques "are applicable in a
large variety of applications (not only parallel).  We can mention here the
FFT which is based on a butterfly network (i.e. a stage of the bitonic
sorting network)", and §2.3 notes the cyclic↔blocked remap was first used
for FFT in [CKP+93].  This package delivers that generalization: a single
``lg N``-level butterfly (each level touching one absolute-address bit,
each bit exactly once) executed with sliding-window layouts built from the
same :class:`~repro.layouts.base.BitFieldLayout` machinery, remapped
through the same :func:`~repro.remap.exchange.perform_remap`, and costed on
the same simulated machine.

Because the butterfly touches each bit once, ``ceil(lg P / lg n)`` remaps
suffice after the initial blocked phase — for the common ``n >= P`` case a
*single* blocked→cyclic remap, exactly the classic FFT data-layout
optimization.
"""

from repro.fft.sequential import bit_reverse_permute, fft_reference
from repro.fft.layouts import butterfly_schedule, window_layout
from repro.fft.parallel import FFTResult, ParallelFFT

__all__ = [
    "fft_reference",
    "bit_reverse_permute",
    "window_layout",
    "butterfly_schedule",
    "ParallelFFT",
    "FFTResult",
]
