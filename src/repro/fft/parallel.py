"""The parallel FFT on the simulated machine.

Structure mirrors the smart bitonic sort: distribute (bit-reversed) points
blocked, run the levels whose bits are local, remap to the next window
layout with :func:`~repro.remap.exchange.perform_remap` (long messages,
pack/unpack fused into the butterfly sweeps), repeat.  Each local level is
charged one :class:`~repro.model.machines.ComputeCosts.merge`-rate pass —
a butterfly level is a streaming combine, like a merge pass.

For ``n >= P`` this is [CKP+93]'s classic one-remap FFT; for ``n < P`` the
sliding window generalizes it exactly as the smart layout generalizes
cyclic–blocked sorting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from repro.errors import VerificationError
from repro.fft.layouts import butterfly_schedule
from repro.fft.sequential import bit_reverse_permute, fft_level
from repro.machine.metrics import RunStats
from repro.machine.simulator import Machine
from repro.model.machines import MEIKO_CS2, MachineSpec
from repro.remap.exchange import perform_remap
from repro.utils.bits import ilog2
from repro.utils.validation import require_sizes

__all__ = ["FFTResult", "ParallelFFT"]

#: Bytes per complex128 point, for communication-volume accounting.
POINT_BYTES = 16


@dataclass
class FFTResult:
    """Output of one parallel FFT run."""

    output: np.ndarray
    stats: RunStats

    def verify(self, x: np.ndarray, inverse: bool = False,
               rtol: float = 1e-9) -> None:
        """Check against NumPy's FFT."""
        expect = np.fft.ifft(x) * x.size if inverse else np.fft.fft(x)
        if not np.allclose(self.output, expect, rtol=rtol, atol=1e-6):
            worst = int(np.argmax(np.abs(self.output - expect)))
            raise VerificationError(
                f"parallel FFT mismatch vs np.fft at index {worst}: "
                f"{self.output[worst]} vs {expect[worst]}"
            )


class ParallelFFT:
    """Radix-2 parallel FFT with window-layout remapping."""

    name = "parallel-fft"

    def __init__(self, spec: MachineSpec = MEIKO_CS2, *, inverse: bool = False):
        # Complex points are 16 bytes on the wire.
        self.spec = replace(spec, key_bytes=POINT_BYTES)
        self.inverse = inverse

    def run(self, x: np.ndarray, P: int, verify: bool = False) -> FFTResult:
        """Transform ``x`` (length a power of two) on ``P`` simulated
        processors; returns the result in natural order.

        The input bit-reversal is performed during the initial (untimed)
        distribution, as is conventional — it can equally be folded into
        the first remap's unpack indices at no extra transfer cost.
        """
        x = np.asarray(x, dtype=np.complex128)
        N, P, n = require_sizes(x.size, P)
        machine = Machine(P, self.spec)
        costs = self.spec.compute
        phases = butterfly_schedule(N, P)

        rev = bit_reverse_permute(x)
        layout = phases[0][0]
        parts: List[np.ndarray] = [
            rev[layout.absolute_addresses(r)].copy() for r in range(P)
        ]

        first = True
        for new_layout, levels in phases:
            if not first:
                parts = perform_remap(
                    machine, parts, layout, new_layout, mode="long", fused=True
                )
            layout = new_layout
            first = False
            for r in range(P):
                absaddr = layout.absolute_addresses(r)
                for level in levels:
                    lb = layout.local_bit_of_abs_bit(level - 1)
                    fft_level(parts[r], absaddr, level, N, lb,
                              inverse=self.inverse)
                machine.charge_compute(
                    r, "merge", n, costs.merge, passes=len(levels)
                )
        machine.barrier()

        # Gather in natural order from the final window layout.
        out = np.empty(N, dtype=np.complex128)
        for r in range(P):
            out[layout.absolute_addresses(r)] = parts[r]
        result = FFTResult(output=out, stats=machine.stats(n))
        if verify:
            result.verify(x, inverse=self.inverse)
        return result
