"""Sequential radix-2 FFT: the ground truth for the parallel version.

The iterative decimation-in-time form makes the butterfly structure
explicit: after a bit-reversal permutation of the input, level ``s``
(``1 <= s <= lg N``) combines elements whose indices differ in bit
``s - 1`` — one absolute-address bit per level, which is exactly one
column family of the bitonic network's communication structure and what
lets the data-layout machinery of Chapter 3 drive the FFT unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SizeError
from repro.utils.bits import bit_reverse, ilog2, is_power_of_two

__all__ = ["bit_reverse_permute", "fft_level", "fft_reference"]


def bit_reverse_permute(x: np.ndarray) -> np.ndarray:
    """Return ``x`` reordered by bit-reversed index (a copy)."""
    x = np.asarray(x)
    n = x.shape[0]
    if n <= 1:
        return x.copy()
    if not is_power_of_two(n):
        raise SizeError(f"FFT length must be a power of two, got {n}")
    idx = bit_reverse(np.arange(n), ilog2(n))
    return x[idx].copy()


def fft_level(
    data: np.ndarray,
    absaddr: np.ndarray,
    level: int,
    N: int,
    local_bit: int,
    inverse: bool = False,
) -> None:
    """Apply butterfly ``level`` in place to a local partition.

    ``absaddr[i]`` is the global (bit-reversed-input) index of local slot
    ``i``; partners sit at local indices differing in bit ``local_bit``
    (guaranteed by the layout, as for the sorting network).  The twiddle of
    a pair is ``exp(-2*pi*1j * j / 2**level)`` with ``j`` the low
    ``level - 1`` bits of the pair's global index.
    """
    n = data.shape[0]
    half = 1 << local_bit
    idx = np.arange(n)
    lo = idx[(idx & half) == 0]
    hi = lo | half
    m = 1 << level
    j = absaddr[lo] & (m // 2 - 1)
    sign = 2.0 if inverse else -2.0
    w = np.exp(sign * np.pi * 1j * j / m)
    t = w * data[hi]
    u = data[lo]
    data[lo] = u + t
    data[hi] = u - t


def fft_reference(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Radix-2 DIT FFT of ``x`` (length a power of two); returns a new
    array in natural order.  ``inverse=True`` computes the unnormalized
    inverse transform (matching ``np.fft.ifft(x) * N``)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    if n <= 1:
        return x.copy()
    data = bit_reverse_permute(x)
    absaddr = np.arange(n)
    for level in range(1, ilog2(n) + 1):
        fft_level(data, absaddr, level, n, local_bit=level - 1, inverse=inverse)
    return data
