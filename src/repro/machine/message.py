"""Message records exchanged on the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import CommunicationError

__all__ = ["Message"]


@dataclass
class Message:
    """One (long) message: a payload of keys from ``src`` to ``dst``.

    ``meta`` carries simulation-side bookkeeping that a real implementation
    would either derive algebraically on the receiver (e.g. the unpack
    scatter indices, which follow from the layout pair and the sender's
    rank — §3.3.1) or encode in a tiny header; it is *not* charged as
    payload bytes.
    """

    src: int
    dst: int
    payload: np.ndarray
    meta: Optional[Any] = field(default=None)

    def __post_init__(self) -> None:
        self.payload = np.asarray(self.payload)
        if self.payload.ndim != 1:
            raise CommunicationError(
                f"message payloads must be 1-D arrays, got {self.payload.ndim}-D"
            )
        if self.src < 0 or self.dst < 0:
            raise CommunicationError(
                f"message endpoints must be non-negative, got {self.src}->{self.dst}"
            )

    @property
    def num_elements(self) -> int:
        return int(self.payload.size)
