"""A virtual processor: a clock plus per-category time accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.machine.metrics import PhaseBreakdown

__all__ = ["Processor", "TraceEvent"]

#: ``(start_us, end_us, category)`` — one busy or wait interval.
TraceEvent = Tuple[float, float, str]


@dataclass
class Processor:
    """One node of the simulated machine.

    The processor does not own application data — algorithms keep their own
    per-rank arrays — it owns *time*: a virtual clock in microseconds and a
    breakdown of how that time was spent.  Counters for the paper's
    communication metrics (elements and messages sent) also live here.
    When ``trace`` is a list, every interval is additionally recorded as a
    :data:`TraceEvent` for timeline rendering (:mod:`repro.viz.gantt`).
    """

    rank: int
    clock: float = 0.0
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    elements_sent: int = 0
    messages_sent: int = 0
    trace: Optional[List[TraceEvent]] = None

    def advance(self, category: str, micros: float) -> None:
        """Spend ``micros`` of busy time attributed to ``category``."""
        if micros < 0:
            raise ConfigurationError(f"cannot advance clock by {micros} µs")
        start = self.clock
        self.clock += micros
        self.breakdown.add(category, micros)
        if self.trace is not None and micros > 0:
            self.trace.append((start, self.clock, category))

    def wait_until(self, when: float) -> None:
        """Idle until ``when`` (no-op if the clock is already past it)."""
        if when > self.clock:
            self.breakdown.add("wait", when - self.clock)
            if self.trace is not None:
                self.trace.append((self.clock, when, "wait"))
            self.clock = when
