"""The SPMD machine simulator.

:class:`Machine` advances ``P`` virtual processor clocks through alternating
local-computation and communication phases:

* **Computation** — :meth:`Machine.charge_compute` prices a kernel at
  (elements × per-element cost × cache factor) microseconds using the
  machine's calibrated :class:`~repro.model.machines.ComputeCosts`.
  Algorithms perform the actual work with NumPy and tell the machine what
  they did; the machine converts counts to time.  This mirrors how the
  paper analyzes computation (operation counts at fixed per-op cost, §4.4)
  and decouples simulated time from Python's own speed.

* **Communication** — :meth:`Machine.exchange` delivers
  :class:`~repro.machine.message.Message` payloads and charges LogGP time.
  In ``"long"`` mode each message costs its sender ``o + (k-1)G`` injection
  time with gap ``g`` between messages and lands ``L`` later, costing the
  receiver ``o`` (§3.4.3).  In ``"short"`` mode the whole remap is priced
  with the paper's LogP short-message formula ``L + 2o + (V-1) max(g, 2o)``
  (§3.4.2).  Either way the machine counts the paper's three metrics —
  remaps ``R``, per-processor volume ``V``, messages ``M`` — exactly.

The makespan (max clock) is the simulated execution time; per-key numbers in
the benchmark tables are makespan / keys-per-processor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    CorruptPayloadError,
    PeerFailedError,
)
from repro.machine.message import Message

if TYPE_CHECKING:  # pragma: no cover — avoid a machine->faults import cycle
    from repro.faults.plan import FaultInjector
from repro.machine.metrics import PhaseBreakdown, RunStats
from repro.machine.processor import Processor
from repro.model.machines import MEIKO_CS2, MachineSpec

__all__ = ["Machine"]


class Machine:
    """A simulated distributed-memory machine of ``P`` nodes.

    Parameters
    ----------
    P:
        Number of processors (any positive power of two for the sorting
        algorithms; the machine itself accepts any positive count).
    spec:
        Hardware description; defaults to the calibrated Meiko CS-2.
    injector:
        Optional :class:`~repro.faults.plan.FaultInjector`.  When armed, the
        machine behaves like a reliable transport over a lossy network:
        dropped and corrupted messages are retransmitted (charged LogGP
        time, so faults show up in the makespan and the V/M metrics),
        duplicates cost the receiver an extra overhead, delays add latency,
        slowed ranks pay inflated compute charges, and a planned crash
        raises :class:`~repro.errors.PeerFailedError`.  A null plan leaves
        every charge and counter byte-identical to no injector at all.
    """

    #: Retransmission attempts per message before the simulated transport
    #: declares the link dead (far above any realistic fault rate's needs).
    MAX_SEND_ATTEMPTS = 64

    def __init__(
        self,
        P: int,
        spec: MachineSpec = MEIKO_CS2,
        trace: bool = False,
        injector: Optional["FaultInjector"] = None,
    ):
        if P < 1:
            raise ConfigurationError(f"machine needs at least 1 processor, got {P}")
        self.P = P
        self.spec = spec
        self.net = spec.network.with_procs(P)
        self.procs = [
            Processor(rank=r, trace=[] if trace else None) for r in range(P)
        ]
        self.remap_count = 0
        self.injector = injector

    # -- computation ---------------------------------------------------

    def charge_compute(
        self,
        rank: int,
        category: str,
        elements: int,
        unit_cost: float,
        passes: float = 1.0,
        working_set: Optional[int] = None,
    ) -> None:
        """Charge ``rank`` for a local kernel touching ``elements`` elements
        ``passes`` times at ``unit_cost`` µs per element-pass, inflated by
        the cache model for the given working set (defaults to
        ``elements``)."""
        if elements < 0:
            raise ConfigurationError(f"elements must be >= 0, got {elements}")
        if elements == 0:
            return
        ws = working_set if working_set is not None else elements
        factor = self.spec.cache.factor(max(ws, 1))
        if self.injector is not None:
            factor *= self.injector.slowdown_factor(rank)
        self._proc(rank).advance(category, elements * passes * unit_cost * factor)

    def charge_fixed(self, rank: int, category: str, micros: float) -> None:
        """Charge a fixed time (e.g. a per-phase constant) to ``rank``."""
        if self.injector is not None:
            micros *= self.injector.slowdown_factor(rank)
        self._proc(rank).advance(category, micros)

    # -- communication ---------------------------------------------------

    def exchange(
        self,
        messages: Sequence[Message],
        mode: str = "long",
        count_remap: bool = True,
        label: Optional[str] = None,
    ) -> Dict[int, List[Message]]:
        """Deliver ``messages`` and charge communication time.

        Self-addressed messages are rejected: data a processor keeps never
        travels, and creating such a message indicates a bug in the caller's
        destination computation.

        ``label`` names the phase in fault-injection error reports (defaults
        to the remap counter).

        Returns the delivered messages grouped by destination, each group
        ordered by arrival time (deterministically).
        """
        if mode not in ("long", "short"):
            raise CommunicationError(f"exchange mode must be 'long' or 'short', got {mode!r}")
        for msg in messages:
            if not (0 <= msg.src < self.P and 0 <= msg.dst < self.P):
                raise CommunicationError(
                    f"message {msg.src}->{msg.dst} outside machine of {self.P} procs"
                )
            if msg.src == msg.dst:
                raise CommunicationError(
                    f"processor {msg.src} addressed a message to itself; kept "
                    "data must not be sent"
                )
        if count_remap:
            self.remap_count += 1

        by_src: Dict[int, List[Message]] = {}
        for msg in sorted(messages, key=lambda m: (m.src, m.dst)):
            by_src.setdefault(msg.src, []).append(msg)

        arrivals: List[tuple] = []  # (arrival_time, src, dst, Message)
        g_short = max(self.net.g, 2.0 * self.net.o)

        for src, out in by_src.items():
            proc = self.procs[src]
            total_elems = sum(m.num_elements for m in out)
            proc.elements_sent += total_elems
            if mode == "short":
                # One element = one message (§3.4.2); the single LogP remap
                # formula covers both send and receive overheads, so the
                # receiver is not charged again below.
                proc.messages_sent += total_elems
                if total_elems > 0:
                    cost = self.net.L + 2.0 * self.net.o + (total_elems - 1) * g_short
                    proc.advance("transfer", cost)
                for m in out:
                    arrivals.append((proc.clock, src, m.dst, m))
            else:
                proc.messages_sent += len(out)
                dma = self.spec.dma_offload
                dma_clock = proc.clock  # the co-processor's injection timeline
                for i, m in enumerate(out):
                    # Charge the payload's true wire size (keys are 4 B,
                    # record composites 8 B, complex FFT points 16 B,
                    # histogram counters 8 B — all handled uniformly).
                    nbytes = max(m.payload.nbytes, 1)
                    inject = (nbytes - 1) * self.net.G
                    if dma:
                        # The co-processor injects (serially); the CPU pays
                        # only the initiation overhead per message.
                        proc.advance("transfer", self.net.o)
                        if i + 1 < len(out) and self.net.o < self.net.g:
                            proc.advance("transfer", self.net.g - self.net.o)
                        dma_clock = max(dma_clock, proc.clock) + inject
                        arrivals.append((dma_clock + self.net.L, src, m.dst, m))
                    else:
                        busy = self.net.o + inject
                        proc.advance("transfer", busy)
                        if i + 1 < len(out) and busy < self.net.g:
                            # Gap rule: transmissions at least g apart.
                            proc.advance("transfer", self.net.g - busy)
                        arrivals.append((proc.clock + self.net.L, src, m.dst, m))

        junk: List[Tuple[float, int]] = []
        if self.injector is not None and not self.injector.plan.is_null:
            arrivals, junk = self._inject_faults(arrivals, mode, label)

        delivered: Dict[int, List[Message]] = {}
        for arrival, src, dst, m in sorted(arrivals, key=lambda t: (t[3].dst, t[0], t[1])):
            delivered.setdefault(dst, []).append(m)
            rp = self.procs[dst]
            rp.wait_until(arrival)
            if mode == "long":
                rp.advance("transfer", self.net.o)
        # Corrupted and duplicated copies physically land too: the receiver
        # pays the pull overhead before the transport discards them (in
        # short mode the remap formula already covers receive overheads).
        if mode == "long":
            for arrival, dst in sorted(junk):
                rp = self.procs[dst]
                rp.wait_until(arrival)
                rp.advance("transfer", self.net.o)
        return delivered

    def _inject_faults(
        self, arrivals: List[tuple], mode: str, label: Optional[str] = None
    ) -> Tuple[List[tuple], List[Tuple[float, int]]]:
        """Apply the injector's verdicts to the scheduled arrivals.

        The machine models a *reliable transport over a lossy network*:
        every payload is eventually delivered intact (so the sort stays
        correct), but drops cost a retransmission timeout, corruption costs
        a NACK round trip, and both cost the sender a fresh injection — all
        charged as LogGP time and counted in the V/M metrics.  Returns the
        adjusted arrivals plus the junk copies (corrupt/duplicate) that
        arrive only to be discarded.
        """
        inj = self.injector
        plan = inj.plan
        phase = self.remap_count
        name = label or f"remap-{phase}"
        if plan.crash_rank is not None and inj.check_crash(plan.crash_rank, phase):
            raise PeerFailedError(
                f"simulated rank {plan.crash_rank} crashed during "
                f"{name} (injected)",
                rank=plan.crash_rank,
                phase=name,
            )
        rto = 4.0 * self.net.L + 2.0 * self.net.o  # sender timeout, then resend
        nack = self.net.L + 2.0 * self.net.o  # checksum reject round trip
        out: List[tuple] = []
        junk: List[Tuple[float, int]] = []
        counters: Dict[Tuple[int, int], int] = {}
        for arrival, src, dst, m in arrivals:
            seq = counters.get((src, dst), 0)
            counters[(src, dst)] = seq + 1
            t = arrival
            attempt = 0
            verdict = inj.decide(phase, src, dst, seq, attempt)
            while verdict.drop or verdict.corrupt:
                if attempt + 1 >= self.MAX_SEND_ATTEMPTS:
                    if verdict.corrupt:
                        raise CorruptPayloadError(
                            f"message {src}->{dst} in {name} corrupt "
                            f"on all {attempt + 1} attempts",
                            rank=src,
                            phase=name,
                            attempts=attempt + 1,
                        )
                    raise PeerFailedError(
                        f"message {src}->{dst} in {name} lost on all "
                        f"{attempt + 1} attempts",
                        rank=dst,
                        phase=name,
                    )
                if verdict.corrupt:
                    junk.append((t, dst))  # the bad copy lands, is rejected
                    penalty = nack
                else:
                    penalty = rto
                nbytes = max(m.payload.nbytes, 1)
                resend = self.net.o + (
                    (nbytes - 1) * self.net.G if mode == "long" else 0.0
                )
                proc = self.procs[src]
                proc.advance("retransmit", resend)
                proc.messages_sent += 1
                proc.elements_sent += m.num_elements
                inj.note_retry(m.num_elements)
                t += penalty + resend
                attempt += 1
                verdict = inj.decide(phase, src, dst, seq, attempt)
            if verdict.delay:
                t += plan.delay_us
            if verdict.duplicate:
                junk.append((t, dst))
            out.append((t, src, dst, m))
        return out, junk

    # -- synchronization -------------------------------------------------

    def barrier(self) -> None:
        """Advance every processor to the current makespan."""
        top = self.elapsed()
        for p in self.procs:
            p.wait_until(top)

    def elapsed(self) -> float:
        """Current makespan in microseconds."""
        return max(p.clock for p in self.procs)

    # -- results -----------------------------------------------------------

    def stats(self, keys_per_proc: int) -> RunStats:
        """Snapshot the run into a :class:`~repro.machine.metrics.RunStats`."""
        mean = PhaseBreakdown()
        for p in self.procs:
            mean = mean.merged_with(p.breakdown)
        for cat in mean.times:
            mean.times[cat] /= self.P
        return RunStats(
            P=self.P,
            n=keys_per_proc,
            elapsed_us=self.elapsed(),
            mean_breakdown=mean,
            remaps=self.remap_count,
            volume_per_proc=max(p.elements_sent for p in self.procs),
            messages_per_proc=max(p.messages_sent for p in self.procs),
        )

    # -- helpers -----------------------------------------------------------

    def _proc(self, rank: int) -> Processor:
        if not 0 <= rank < self.P:
            raise ConfigurationError(f"rank {rank} outside machine of {self.P} procs")
        return self.procs[rank]

    def partition(self, keys: np.ndarray) -> List[np.ndarray]:
        """Split ``keys`` into ``P`` equal blocked partitions (the initial
        distribution; untimed, as the paper measures sorting time only)."""
        keys = np.asarray(keys)
        if keys.size % self.P:
            raise ConfigurationError(
                f"{keys.size} keys do not divide evenly over {self.P} processors"
            )
        n = keys.size // self.P
        return [keys[r * n : (r + 1) * n].copy() for r in range(self.P)]
