"""Time and communication accounting for the simulated machine.

Times are broken down by *category* so the harness can reproduce the paper's
phase breakdowns: Figure 5.4 splits total time into computation vs
communication; Table 5.4 splits the communication phase into packing,
transfer and unpacking.

Category map (µs, per processor):

=================  ==========================================================
``local_sort``     radix sort of the first ``lg n`` stages
``merge``          merge-based local phases (bitonic merges, p-way merges)
``compare_exchange`` simulated network steps (unoptimized computation)
``address``        destination computation before a remap
``pack``           gathering elements into long-message send buffers
``unpack``         scattering received long messages into the local array
``transfer``       LogP/LogGP wire time: overheads, gaps, bytes, latency
``retransmit``     recovery wire time under fault injection (resends, NACKs)
``spill``          out-of-core disk traffic: writing/reading spilled runs
``wait``           idle time at barriers / waiting for arrivals
=================  ==========================================================

Computation categories = ``local_sort + merge + compare_exchange``;
communication categories = ``address + pack + transfer + unpack`` (the
paper's communication phase includes packing and unpacking — §5.4).
``spill`` is its own I/O group (:data:`IO_CATEGORIES`): the external
sort's disk traffic is neither the paper's computation nor its network
communication, so it must not perturb either split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError

__all__ = [
    "CATEGORIES",
    "CATEGORY_DESCRIPTIONS",
    "COMPUTE_CATEGORIES",
    "COMM_CATEGORIES",
    "IO_CATEGORIES",
    "PhaseBreakdown",
    "RunStats",
]

COMPUTE_CATEGORIES = ("local_sort", "merge", "compare_exchange")
COMM_CATEGORIES = ("address", "pack", "transfer", "retransmit", "unpack")
IO_CATEGORIES = ("spill",)
OTHER_CATEGORIES = ("wait",)
CATEGORIES = COMPUTE_CATEGORIES + COMM_CATEGORIES + IO_CATEGORIES + OTHER_CATEGORIES

#: One-line meaning per category — the *single* vocabulary shared by the
#: simulator's accounting, the SPMD runtime tracer (:mod:`repro.trace`),
#: and the docs; ``scripts/check_trace.py`` fails CI if an exported trace
#: drifts from this set.
CATEGORY_DESCRIPTIONS = {
    "local_sort": "radix sort of the first lg n stages",
    "merge": "merge-based local phases (bitonic merges, p-way merges)",
    "compare_exchange": "simulated network steps (unoptimized computation)",
    "address": "destination computation before a remap",
    "pack": "gathering elements into long-message send buffers",
    "unpack": "scattering received long messages into the local array",
    "transfer": "wire time: overheads, gaps, bytes, latency",
    "retransmit": "recovery traffic under faults (resends, NACKs)",
    "spill": "out-of-core disk traffic: writing/reading spilled runs",
    "wait": "idle time at barriers / waiting for arrivals",
}
assert set(CATEGORY_DESCRIPTIONS) == set(CATEGORIES)


@dataclass
class PhaseBreakdown:
    """Per-category accumulated time, in microseconds."""

    times: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )

    def add(self, category: str, micros: float) -> None:
        if category not in self.times:
            raise ConfigurationError(
                f"unknown time category {category!r}; use one of {CATEGORIES}"
            )
        if micros < 0:
            raise ConfigurationError(f"cannot add negative time {micros}")
        self.times[category] += micros

    def total(self) -> float:
        return sum(self.times.values())

    @property
    def computation(self) -> float:
        return sum(self.times[c] for c in COMPUTE_CATEGORIES)

    @property
    def communication(self) -> float:
        return sum(self.times[c] for c in COMM_CATEGORIES)

    def merged_with(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        out = PhaseBreakdown()
        for c in CATEGORIES:
            out.times[c] = self.times[c] + other.times[c]
        return out


@dataclass
class RunStats:
    """Everything measured about one parallel-sort run.

    Attributes
    ----------
    P, n:
        Machine size and keys per processor.
    elapsed_us:
        Simulated makespan: the maximum processor clock at the end.
    breakdown:
        Maximum-processor-attributed per-category times (averaged breakdown
        is in :attr:`mean_breakdown`); the harness reports the mean, which
        is what per-key plots divide by ``n``.
    remaps:
        The paper's ``R``: number of data remaps (communication steps).
    volume_per_proc:
        The paper's ``V``: elements sent by each processor (max over
        processors; the smart schedule is perfectly balanced so max = mean).
    messages_per_proc:
        The paper's ``M``: long messages sent by each processor (max).
    """

    P: int
    n: int
    elapsed_us: float = 0.0
    mean_breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    remaps: int = 0
    volume_per_proc: int = 0
    messages_per_proc: int = 0

    @property
    def N(self) -> int:
        return self.P * self.n

    @property
    def us_per_key(self) -> float:
        """Execution time per key, the paper's headline metric: makespan
        divided by keys per processor (each processor handles ``n`` keys
        concurrently)."""
        return self.elapsed_us / self.n if self.n else 0.0

    @property
    def seconds_total(self) -> float:
        """Total execution time in seconds (Table 5.2)."""
        return self.elapsed_us * 1e-6

    def per_key(self, category: str) -> float:
        """Mean per-processor time of ``category``, per key, in µs."""
        return self.mean_breakdown.times[category] / self.n if self.n else 0.0

    @property
    def computation_per_key(self) -> float:
        return self.mean_breakdown.computation / self.n if self.n else 0.0

    @property
    def communication_per_key(self) -> float:
        return self.mean_breakdown.communication / self.n if self.n else 0.0
