"""The simulated distributed-memory machine.

This package is the substitution for the paper's 64-node Meiko CS-2 (see
DESIGN.md §2): an SPMD machine of ``P`` virtual processors with per-processor
virtual clocks.  Algorithms perform *real* data movement (NumPy arrays travel
between processors, so sorting correctness is end-to-end verifiable) while
time is charged analytically — local computation through the calibrated
:class:`~repro.model.machines.ComputeCosts`, communication through the
LogP/LogGP formulas the paper itself uses (§3.4).

The machine also counts the paper's three communication metrics exactly:
remaps ``R``, transferred volume ``V`` (elements per processor) and message
count ``M``.
"""

from repro.machine.message import Message
from repro.machine.metrics import CATEGORIES, PhaseBreakdown, RunStats
from repro.machine.processor import Processor
from repro.machine.simulator import Machine

__all__ = [
    "Message",
    "Machine",
    "Processor",
    "PhaseBreakdown",
    "RunStats",
    "CATEGORIES",
]
