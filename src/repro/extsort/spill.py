"""Pid-guarded spill directories for the out-of-core sort.

A :class:`SpillDir` is one request's scratch space on disk: sorted runs
land in it as raw little-endian ndarray files next to a JSON manifest
describing them (dtype, per-run lengths), and the whole directory is
deleted when the request completes.  The discipline mirrors the process
worlds' ``/dev/shm`` hygiene (:mod:`repro.runtime.procs`):

* **naming is pid-guarded** — every directory is
  ``rxspill_<pid>_<token>`` under the spill root, so ownership is
  decidable from the name alone;
* **a live registry + atexit sweep** — directories this process created
  and has not yet cleaned are removed at interpreter exit, so a crashed
  or careless run cannot strand gigabytes of spilled runs (a forked
  child inheriting the registry never removes its parent's directories:
  the creating pid rides along, exactly like the worlds' ``_LIVE``);
* **orphan sweeping** — :func:`sweep_orphaned_spill_dirs` removes any
  ``rxspill_*`` directory whose creating pid is dead, which is how a
  request SIGKILLed mid-spill (no atexit hooks run) leaks nothing: the
  sweep runs at service start and from the worlds' own atexit sweep.

The manifest is written atomically (temp file + ``rename``) and fsynced,
so a directory either describes its runs completely or is recognizably
mid-write garbage the orphan sweep will reclaim.
"""

from __future__ import annotations

import atexit
import errno
import json
import os
import shutil
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SpillDir",
    "default_spill_root",
    "sweep_orphaned_spill_dirs",
]

#: Directory-name prefix every spill dir carries; the orphan sweep
#: matches on it, so nothing outside this namespace is ever touched.
_SPILL_PREFIX = "rxspill_"

_MANIFEST = "manifest.json"


def default_spill_root() -> str:
    """Where spill directories live unless a caller says otherwise:
    ``$REPRO_SPILL_ROOT`` or the platform temp dir."""
    return os.environ.get("REPRO_SPILL_ROOT") or tempfile.gettempdir()


#: Spill directories this process created and has not yet cleaned,
#: swept at interpreter exit.  Keyed by path; the creating pid rides
#: along so a forked child inheriting the registry never removes its
#: parent's directories.
_LIVE: Dict[str, int] = {}


def _sweep_leaked_spill_dirs() -> None:
    me = os.getpid()
    for path, pid in list(_LIVE.items()):
        if pid != me:
            continue
        shutil.rmtree(path, ignore_errors=True)
        _LIVE.pop(path, None)


atexit.register(_sweep_leaked_spill_dirs)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover — exists, other user
        return True
    except OSError as exc:  # pragma: no cover — defensive
        return exc.errno != errno.ESRCH
    return True


def sweep_orphaned_spill_dirs(root: Optional[str] = None) -> List[str]:
    """Remove every spill directory under ``root`` whose creating pid is
    dead; returns the paths removed.  Directories of live processes are
    left alone — concurrent services sharing one root never fight."""
    root = root or default_spill_root()
    removed: List[str] = []
    try:
        entries = os.listdir(root)
    except OSError:
        return removed
    for name in entries:
        if not name.startswith(_SPILL_PREFIX):
            continue
        parts = name[len(_SPILL_PREFIX):].split("_", 1)
        try:
            pid = int(parts[0])
        except (ValueError, IndexError):
            pid = -1  # malformed name: nobody owns it
        if pid > 0 and _pid_alive(pid):
            continue
        path = os.path.join(root, name)
        shutil.rmtree(path, ignore_errors=True)
        if not os.path.exists(path):
            removed.append(path)
            _LIVE.pop(path, None)
    return removed


def live_spill_dirs(root: Optional[str] = None) -> List[str]:
    """Every spill directory currently under ``root`` (leak gates list
    these before/after a soak)."""
    root = root or default_spill_root()
    try:
        return sorted(
            os.path.join(root, name)
            for name in os.listdir(root)
            if name.startswith(_SPILL_PREFIX)
        )
    except OSError:
        return []


class SpillDir:
    """One request's spill directory: run files plus a manifest.

    Use as a context manager; the directory is removed on exit (and by
    the atexit sweep if the process dies first, and by the orphan sweep
    if it is SIGKILLed).
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_spill_root()
        os.makedirs(self.root, exist_ok=True)
        self.path = tempfile.mkdtemp(
            prefix=f"{_SPILL_PREFIX}{os.getpid()}_", dir=self.root
        )
        self._runs: List[Dict[str, Any]] = []
        self._dtype: Optional[str] = None
        self._seq = 0
        self.bytes_written = 0
        _LIVE[self.path] = os.getpid()

    # -- run files -----------------------------------------------------

    def write_run(self, arr: np.ndarray) -> str:
        """Persist one sorted run; returns its file name."""
        if arr.ndim != 1:
            raise ConfigurationError(
                f"spill runs are 1-D arrays, got shape {arr.shape}"
            )
        dtype = arr.dtype.str
        if self._dtype is None:
            self._dtype = dtype
        elif dtype != self._dtype:
            raise ConfigurationError(
                f"spill dir holds {self._dtype} runs; cannot add {dtype}"
            )
        name = f"run_{self._seq:06d}.bin"
        self._seq += 1
        arr.tofile(os.path.join(self.path, name))
        self._runs.append({"file": name, "length": int(arr.size)})
        self.bytes_written += int(arr.nbytes)
        self._write_manifest()
        return name

    def open_run_writer(self) -> "_RunWriter":
        """Stream one run to disk in pieces (merge passes produce output
        runs bucket by bucket — the whole run never sits in memory)."""
        name = f"run_{self._seq:06d}.bin"
        self._seq += 1
        return _RunWriter(self, name)

    def _register_run(self, name: str, length: int, nbytes: int,
                      dtype: str) -> None:
        if self._dtype is None:
            self._dtype = dtype
        elif dtype != self._dtype:
            raise ConfigurationError(
                f"spill dir holds {self._dtype} runs; cannot add {dtype}"
            )
        self._runs.append({"file": name, "length": int(length)})
        self.bytes_written += int(nbytes)
        self._write_manifest()

    def remove_runs(self, names: List[str]) -> None:
        """Drop merged-away input runs (frees disk between passes)."""
        drop = set(names)
        for r in self._runs:
            if r["file"] in drop:
                try:
                    os.unlink(os.path.join(self.path, r["file"]))
                except OSError:
                    pass
        self._runs = [r for r in self._runs if r["file"] not in drop]
        self._write_manifest()

    @property
    def runs(self) -> List[Dict[str, Any]]:
        return list(self._runs)

    @property
    def dtype(self) -> np.dtype:
        if self._dtype is None:
            raise ConfigurationError("spill dir holds no runs yet")
        return np.dtype(self._dtype)

    def open_run(self, name: str) -> np.memmap:
        """The named run as a read-only memmap (binary search over it
        touches O(log n) pages, never the whole file)."""
        meta = next(r for r in self._runs if r["file"] == name)
        return np.memmap(
            os.path.join(self.path, name),
            dtype=self.dtype,
            mode="r",
            shape=(meta["length"],),
        )

    def read_slice(self, name: str, start: int, stop: int) -> np.ndarray:
        """Elements ``[start, stop)`` of the named run, read from disk."""
        count = max(int(stop) - int(start), 0)
        if count == 0:
            return np.empty(0, dtype=self.dtype)
        itemsize = self.dtype.itemsize
        with open(os.path.join(self.path, name), "rb") as fh:
            fh.seek(int(start) * itemsize)
            return np.fromfile(fh, dtype=self.dtype, count=count)

    # -- manifest ------------------------------------------------------

    def _write_manifest(self) -> None:
        doc = {
            "schema": "repro-bitonic-spill/1",
            "pid": os.getpid(),
            "dtype": self._dtype,
            "runs": self._runs,
        }
        tmp = os.path.join(self.path, f".{_MANIFEST}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, os.path.join(self.path, _MANIFEST))

    # -- lifecycle -----------------------------------------------------

    def cleanup(self) -> None:
        shutil.rmtree(self.path, ignore_errors=True)
        _LIVE.pop(self.path, None)

    def __enter__(self) -> "SpillDir":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.cleanup()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"SpillDir({self.path!r}, runs={len(self._runs)}, "
            f"bytes={self.bytes_written})"
        )


class _RunWriter:
    """Streams one run file; registered in the manifest only at
    :meth:`close`, so a crash mid-stream leaves an unreferenced file the
    directory teardown (or orphan sweep) reclaims wholesale."""

    def __init__(self, spill: SpillDir, name: str):
        self._spill = spill
        self.name = name
        self._fh = open(os.path.join(spill.path, name), "wb")
        self._length = 0
        self._nbytes = 0
        self._dtype: Optional[str] = None

    def write(self, arr: np.ndarray) -> None:
        if arr.size == 0:
            return
        if self._dtype is None:
            self._dtype = arr.dtype.str
        arr.tofile(self._fh)
        self._length += int(arr.size)
        self._nbytes += int(arr.nbytes)

    def close(self) -> Tuple[str, int]:
        """Finish the run; returns ``(name, length)``."""
        self._fh.close()
        dtype = self._dtype or (
            self._spill._dtype or np.dtype(np.uint32).str
        )
        self._spill._register_run(self.name, self._length, self._nbytes, dtype)
        return self.name, self._length
