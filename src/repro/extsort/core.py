"""Spill-to-disk external sort under a hard working-set budget.

The algorithm is the run-formation + bucket-partition design of Rahn,
Sanders & Singler (*Scalable Distributed-Memory External Sorting*,
arXiv:0910.2582), collapsed onto one box:

1. **Run formation** — the input streams through fixed-budget chunks;
   each chunk is sorted by the fast local kernels
   (:func:`repro.localsort.radix_sort` for unsigned keys, ``np.sort``
   otherwise) and written to the request's :class:`~repro.extsort.spill.
   SpillDir` as one sorted run.
2. **Bucket partitioning** — splitters are chosen by oversampling the
   runs (the same regular-sampling algebra as
   :mod:`repro.runtime.sample_spmd`, per arXiv:2204.04599), sized so
   every bucket's worth of run slices fits the budget; per-run bucket
   bounds come from ``np.searchsorted`` over read-only memmaps, which
   touches O(log n) pages per run, never the whole file.
3. **k-way bucket merge** — each bucket's slices are read back and
   merged with :func:`repro.localsort.p_way_merge`, streaming the
   result straight into the output (or into the next pass's run file
   when more than ``fan_in`` runs exist).  The output is byte-identical
   to ``np.sort`` of the input.

Skew safety: a bucket that regular sampling under-split (heavy
duplicates) is re-split recursively from its own samples; a bucket that
is one repeated value — where no splitter can help — is streamed out in
budget-sized constant chunks.  Either way the working set stays bounded.

The **budget bounds the arrays this module allocates** (chunk copies,
samples, bucket slices, merged buckets) — the caller's input and the
returned output are the caller's memory, exactly as an in-place API
would have it.  :attr:`ExternalSortReport.peak_resident_bytes` is the
self-accounted high-water mark the tests assert against the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MemoryBudgetError
from repro.extsort.spill import SpillDir
from repro.localsort.merges import p_way_merge
from repro.localsort.radix import radix_sort
from repro.trace.recorder import Tracer, trace_span

__all__ = [
    "ExternalSortReport",
    "external_sort",
    "estimate_spill_bytes",
    "inmem_working_set_bytes",
]

#: Working-set safety divisor: a chunk and its sort scratch must fit the
#: budget together, so chunks are ``budget / 4`` bytes.
_CHUNK_DIVISOR = 4

#: Splitter oversampling factor (samples per wanted bucket) — the
#: regular-sampling regime of arXiv:2204.04599, matching ``sample_spmd``.
_OVERSAMPLE = 32

#: Recursion ceiling for skew re-splitting before merging directly.
_MAX_RESPLIT_DEPTH = 8

#: Estimated peak working set of the in-memory SPMD sort, as a multiple
#: of the input bytes (shards + merge buffers + remap send/recv copies).
#: The admission paths compare ``N * itemsize * this`` against the
#: memory budget to decide when to degrade to the external path.
INMEM_WORKING_SET_FACTOR = 2


def inmem_working_set_bytes(N: int, dtype_size: int) -> int:
    """Estimated peak bytes the in-memory sort needs for ``N`` keys."""
    return int(N) * int(dtype_size) * INMEM_WORKING_SET_FACTOR


def estimate_spill_bytes(nbytes: int) -> int:
    """Peak spill-directory footprint for ``nbytes`` of input: one full
    generation of runs plus, during a merge pass, the half-built next
    generation alongside the not-yet-deleted previous one."""
    return 2 * int(nbytes)


@dataclass
class ExternalSortReport:
    """Everything one :func:`external_sort` call measured about itself."""

    n: int
    budget_bytes: int
    chunk_elements: int
    runs: int
    merge_passes: int
    buckets: int
    spill_bytes: int
    #: Self-accounted high-water mark of this module's own allocations
    #: (the budget's subject; input/output arrays are the caller's).
    peak_resident_bytes: int
    wall_seconds: float

    def describe(self) -> str:
        return (
            f"external sort: {self.n:,} keys under a "
            f"{self.budget_bytes:,}-byte budget — {self.runs} runs, "
            f"{self.merge_passes} merge pass(es), {self.buckets} buckets, "
            f"{self.spill_bytes:,} bytes spilled, peak resident "
            f"{self.peak_resident_bytes:,} bytes, "
            f"{self.wall_seconds:.3f}s wall"
        )


class _Ledger:
    """Self-accounting of this module's live array bytes."""

    __slots__ = ("cur", "peak")

    def __init__(self) -> None:
        self.cur = 0
        self.peak = 0

    def alloc(self, nbytes: int) -> None:
        self.cur += int(nbytes)
        if self.cur > self.peak:
            self.peak = self.cur

    def free(self, nbytes: int) -> None:
        self.cur -= int(nbytes)


class _ArraySink:
    """Streams merged buckets into a preallocated output array."""

    def __init__(self, out: np.ndarray):
        self._out = out
        self._pos = 0

    def write(self, arr: np.ndarray) -> None:
        self._out[self._pos:self._pos + arr.size] = arr
        self._pos += int(arr.size)


def _sort_chunk(chunk: np.ndarray) -> np.ndarray:
    if np.issubdtype(chunk.dtype, np.unsignedinteger) and (
        chunk.dtype.itemsize <= 4
    ):
        return radix_sort(chunk)
    return np.sort(chunk)


def external_sort(
    keys: np.ndarray,
    memory_budget: int,
    *,
    fan_in: int = 64,
    spill_root: Optional[str] = None,
    disk_budget: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[np.ndarray, ExternalSortReport]:
    """Sort ``keys`` out of core; returns ``(sorted, report)``.

    ``memory_budget`` (bytes) bounds the working-set arrays this call
    allocates; ``fan_in`` bounds how many runs one merge pass combines
    (shrink it to force multi-pass merging); ``disk_budget`` (bytes,
    optional) rejects the request up front with
    :class:`~repro.errors.MemoryBudgetError` when the estimated spill
    footprint cannot fit.  The output is byte-identical to
    ``np.sort(keys)``.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1 or keys.size < 1:
        raise ConfigurationError(
            f"external_sort sorts 1-D non-empty arrays, got shape {keys.shape}"
        )
    if memory_budget < 1:
        raise ConfigurationError(
            f"memory_budget must be a positive byte count, got {memory_budget}"
        )
    if fan_in < 2:
        raise ConfigurationError(f"fan_in must be >= 2, got {fan_in}")
    itemsize = keys.dtype.itemsize
    if disk_budget is not None:
        need = estimate_spill_bytes(keys.nbytes)
        if need > disk_budget:
            raise MemoryBudgetError(
                f"external sort of {keys.size:,} keys needs ~{need:,} "
                f"spill bytes, over the {disk_budget:,}-byte disk budget",
                required_bytes=need,
                budget_bytes=disk_budget,
            )
    chunk_elems = max(int(memory_budget) // (itemsize * _CHUNK_DIVISOR), 1)
    bucket_target = max(chunk_elems // 2, 1)
    ledger = _Ledger()
    start = time.perf_counter()
    buckets_merged = 0
    passes = 0
    with SpillDir(root=spill_root) as spill:
        # -- 1. run formation -----------------------------------------
        for lo in range(0, keys.size, chunk_elems):
            chunk = keys[lo:lo + chunk_elems]
            ledger.alloc(2 * chunk.nbytes)  # sorted copy + sort scratch
            with trace_span(tracer, "local_sort", "run-form"):
                run = _sort_chunk(chunk)
            ledger.free(chunk.nbytes)  # scratch gone, sorted copy lives
            with trace_span(tracer, "spill", "write"):
                spill.write_run(run)
            ledger.free(run.nbytes)
            del run
        if tracer is not None:
            tracer.add("ext.runs", len(spill.runs))

        # -- 2. fan-in-limited intermediate merge passes --------------
        while len(spill.runs) > fan_in:
            passes += 1
            generation = spill.runs
            with trace_span(tracer, "merge", "external"):
                for g in range(0, len(generation), fan_in):
                    group = generation[g:g + fan_in]
                    writer = spill.open_run_writer()

                    class _FileSink:
                        def write(self, arr: np.ndarray) -> None:
                            with trace_span(tracer, "spill", "write"):
                                writer.write(arr)

                    buckets_merged += _merge_runs(
                        spill, group, _FileSink(), bucket_target,
                        ledger, tracer,
                    )
                    writer.close()
                    spill.remove_runs([r["file"] for r in group])

        # -- 3. final k-way bucket merge into the output --------------
        passes += 1
        out = np.empty(keys.size, dtype=keys.dtype)
        with trace_span(tracer, "merge", "external"):
            buckets_merged += _merge_runs(
                spill, spill.runs, _ArraySink(out), bucket_target,
                ledger, tracer,
            )
        spill_bytes = spill.bytes_written
        runs_formed = -(-keys.size // chunk_elems)
    if tracer is not None:
        # Marker counter, like sample sort's ``algo.sample``: lets trace
        # gates recognise an out-of-core run (no remaps, no messages).
        tracer.add("algo.external")
        tracer.add("ext.buckets", buckets_merged)
        tracer.add("ext.spill_bytes", spill_bytes)
    report = ExternalSortReport(
        n=int(keys.size),
        budget_bytes=int(memory_budget),
        chunk_elements=chunk_elems,
        runs=runs_formed,
        merge_passes=passes,
        buckets=buckets_merged,
        spill_bytes=spill_bytes,
        peak_resident_bytes=ledger.peak,
        wall_seconds=time.perf_counter() - start,
    )
    return out, report


# -- the bucket merge -------------------------------------------------


def _merge_runs(
    spill: SpillDir,
    runs: Sequence[dict],
    sink,
    bucket_target: int,
    ledger: _Ledger,
    tracer: Optional[Tracer],
) -> int:
    """Merge the given sorted runs through ``sink`` in ascending order;
    returns the number of leaf buckets merged."""
    ranges = [(0, int(r["length"])) for r in runs]
    names = [r["file"] for r in runs]
    return _merge_range(
        spill, names, ranges, sink, bucket_target, ledger, tracer, depth=0
    )


def _merge_range(
    spill: SpillDir,
    names: List[str],
    ranges: List[Tuple[int, int]],
    sink,
    bucket_target: int,
    ledger: _Ledger,
    tracer: Optional[Tracer],
    depth: int,
) -> int:
    total = sum(stop - start for start, stop in ranges)
    if total == 0:
        return 0
    cap = 2 * bucket_target
    if total <= cap or depth >= _MAX_RESPLIT_DEPTH:
        return _merge_leaf(spill, names, ranges, sink, ledger, tracer)
    lo, hi = _range_extrema(spill, names, ranges)
    if lo == hi:
        # One repeated value: no splitter can subdivide it, but no merge
        # is needed either — stream it out in budget-sized pieces.
        itemsize = spill.dtype.itemsize
        remaining = total
        while remaining:
            k = min(remaining, bucket_target)
            ledger.alloc(k * itemsize)
            sink.write(np.full(k, lo, dtype=spill.dtype))
            ledger.free(k * itemsize)
            remaining -= k
        return 1
    splitters = _choose_splitters(
        spill, names, ranges, total, bucket_target, ledger
    )
    buckets = 0
    # Per-run bucket bounds: binary search on the memmap slice —
    # O(buckets · log n) page touches, never a full read.
    bounds: List[np.ndarray] = []
    for name, (start, stop) in zip(names, ranges):
        mm = spill.open_run(name)
        cut = start + np.searchsorted(mm[start:stop], splitters, side="right")
        bounds.append(
            np.concatenate(([start], cut, [stop])).astype(np.int64)
        )
        del mm
    for b in range(len(splitters) + 1):
        sub = [
            (int(bd[b]), int(bd[b + 1])) for bd in bounds
        ]
        buckets += _merge_range(
            spill, names, sub, sink, bucket_target, ledger, tracer,
            depth + 1,
        )
    return buckets


def _merge_leaf(
    spill: SpillDir,
    names: List[str],
    ranges: List[Tuple[int, int]],
    sink,
    ledger: _Ledger,
    tracer: Optional[Tracer],
) -> int:
    itemsize = spill.dtype.itemsize
    slices: List[np.ndarray] = []
    read_bytes = 0
    with trace_span(tracer, "spill", "read"):
        for name, (start, stop) in zip(names, ranges):
            if stop <= start:
                continue
            arr = spill.read_slice(name, start, stop)
            slices.append(arr)
            read_bytes += arr.nbytes
    if not slices:
        return 0
    ledger.alloc(read_bytes)
    if len(slices) == 1:
        merged = slices[0]
        del slices
        sink.write(merged)
        ledger.free(read_bytes)
        return 1
    # The pairwise merge tree holds at most one extra generation of
    # intermediates alongside the inputs.
    total_bytes = sum(s.nbytes for s in slices)
    ledger.alloc(2 * total_bytes)
    merged = p_way_merge(slices)
    ledger.free(2 * total_bytes)
    ledger.alloc(merged.nbytes)
    del slices
    ledger.free(read_bytes)
    sink.write(merged)
    ledger.free(merged.nbytes)
    return 1


def _range_extrema(
    spill: SpillDir,
    names: List[str],
    ranges: List[Tuple[int, int]],
) -> Tuple:
    """Min first element / max last element over the (sorted) slices —
    two single-element reads per run."""
    lo = hi = None
    for name, (start, stop) in zip(names, ranges):
        if stop <= start:
            continue
        first = spill.read_slice(name, start, start + 1)[0]
        last = spill.read_slice(name, stop - 1, stop)[0]
        lo = first if lo is None else min(lo, first)
        hi = last if hi is None else max(hi, last)
    return lo, hi


def _choose_splitters(
    spill: SpillDir,
    names: List[str],
    ranges: List[Tuple[int, int]],
    total: int,
    bucket_target: int,
    ledger: _Ledger,
) -> np.ndarray:
    """Oversampled regular-sampling splitters, à la ``sample_spmd``:
    evenly spaced samples per run, pooled and cut at regular quantiles.
    ``side="right"`` searches then send splitter-equal duplicates
    deterministically to the lower bucket.

    The pool itself is working set, so it is capped at one chunk's worth
    of elements — under a tiny budget the splitters come out coarser and
    the recursive re-split makes up the difference."""
    num_buckets = max(-(-total // bucket_target), 2)
    pool_cap = max(2 * bucket_target, 2 * len(names))
    total_samples = min(_OVERSAMPLE * num_buckets, pool_cap)
    per_run = max(total_samples // max(len(names), 1), 1)
    samples: List[np.ndarray] = []
    sample_bytes = 0
    for name, (start, stop) in zip(names, ranges):
        n = stop - start
        if n <= 0:
            continue
        mm = spill.open_run(name)
        idx = start + np.linspace(0, n - 1, min(per_run, n)).astype(np.int64)
        s = np.asarray(mm[idx])
        del mm
        samples.append(s)
        sample_bytes += s.nbytes
    ledger.alloc(2 * sample_bytes)  # pool + its sort copy
    pool = np.sort(np.concatenate(samples))
    del samples
    cut = np.linspace(0, pool.size, num_buckets + 1).astype(np.int64)[1:-1]
    splitters = np.unique(pool[np.maximum(cut - 1, 0)])
    ledger.free(2 * sample_bytes)
    return splitters
