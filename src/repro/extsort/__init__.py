"""The out-of-core tier: spill-to-disk external sorting.

When a request's keys do not fit the memory budget, the sort degrades
to this subsystem instead of OOMing a world: the input streams through
budget-sized sorted runs on disk, oversampled splitters partition the
runs into buckets that each fit the budget, and a k-way bucket merge
streams the globally sorted output back out — byte-identical to
``np.sort``.  See ``docs/EXTERNAL_SORT.md`` for the design, the budget
semantics, and the crash-safety story.

* :func:`external_sort` — the algorithm (:mod:`repro.extsort.core`);
* :class:`SpillDir` / :func:`sweep_orphaned_spill_dirs` — pid-guarded
  spill directories with the worlds' leak-sweep discipline
  (:mod:`repro.extsort.spill`).
"""

from repro.extsort.core import (
    INMEM_WORKING_SET_FACTOR,
    ExternalSortReport,
    estimate_spill_bytes,
    external_sort,
    inmem_working_set_bytes,
)
from repro.extsort.spill import (
    SpillDir,
    default_spill_root,
    live_spill_dirs,
    sweep_orphaned_spill_dirs,
)

__all__ = [
    "INMEM_WORKING_SET_FACTOR",
    "ExternalSortReport",
    "SpillDir",
    "default_spill_root",
    "estimate_spill_bytes",
    "external_sort",
    "inmem_working_set_bytes",
    "live_spill_dirs",
    "sweep_orphaned_spill_dirs",
]
