"""Sorting bitonic sequences (§4.2, Lemma 9).

A bitonic sequence can be sorted in linear work: locate its minimum
(Algorithm 2, ``O(log n)``), rotate so the sequence becomes
increasing-then-decreasing, and merge the ascending prefix with the reversed
descending suffix.  :func:`sort_bitonic` implements exactly that.

:func:`batched_bitonic_merge` sorts *many* bitonic sequences at once — the
rows or columns of a matrix — using the butterfly formulation of a bitonic
merge (``lg L`` rounds of elementwise min/max between halves).  The crossing
remap's two computation phases (Theorem 3) operate on ``2**b`` row-sequences
of length ``2**a`` and then ``2**a`` column-sequences of length ``2**b``;
the butterfly form vectorizes across the whole matrix in NumPy, while the
simulated machine charges the work at the paper's linear-merge rate either
way (:class:`~repro.model.machines.ComputeCosts.merge`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.localsort.bitonic_min import BitonicMinStats, argmin_bitonic
from repro.localsort.merges import merge_sorted
from repro.utils.bits import ilog2, is_power_of_two

__all__ = ["sort_bitonic", "batched_bitonic_merge"]


def sort_bitonic(
    a: np.ndarray,
    ascending: bool = True,
    stats: BitonicMinStats | None = None,
) -> np.ndarray:
    """Sort the bitonic sequence ``a``; returns a new array.

    This is the paper's bitonic merge sort: find the minimum with
    Algorithm 2, rotate the circle so it starts at the minimum (after which
    the sequence rises to a single peak and falls), and merge the rising and
    falling runs.  Linear data movement; ``O(log n)`` extra comparisons for
    the minimum.
    """
    a = np.asarray(a)
    n = a.size
    if n <= 1:
        return a.copy()
    lo = argmin_bitonic(a, stats=stats)
    rotated = np.roll(a, -lo)
    # After the rotation the sequence is increasing then decreasing (the
    # minimum is at index 0).  Find the peak: the maximum of a bitonic
    # sequence is the minimum of its negation, so Algorithm 2 applies; for
    # an increasing-then-decreasing array the peak is simply located with a
    # monotone-boundary binary search.
    peak = _peak_of_unimodal(rotated)
    merged = merge_sorted(rotated[: peak + 1], rotated[peak + 1 :][::-1])
    if not ascending:
        merged = merged[::-1].copy()
    return merged


def _peak_of_unimodal(r: np.ndarray) -> int:
    """Index of a maximum of an increasing-then-decreasing array.

    Binary search on the "still rising" predicate; with duplicate plateaus
    the search may stop anywhere on the plateau boundary, which is still a
    valid split point *provided* both sides remain sorted — so a final local
    adjustment scans the plateau linearly only when ties are detected.
    """
    n = r.size
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if r[mid] < r[mid + 1]:
            lo = mid + 1
        elif r[mid] > r[mid + 1]:
            hi = mid
        else:
            # Plateau: binary search cannot tell which side the true peak is
            # on; a linear argmax is always correct.
            return int(np.argmax(r))
    return int(lo)


def batched_bitonic_merge(
    m: np.ndarray,
    ascending,
    axis: int = 1,
) -> np.ndarray:
    """Sort every lane of ``m`` along ``axis``; each lane must be bitonic.

    Parameters
    ----------
    m:
        A 2-D array whose lanes (rows for ``axis=1``, columns for
        ``axis=0``) are bitonic sequences of power-of-two length.
    ascending:
        Either a scalar bool or a boolean array, one entry per lane,
        giving each lane's sort direction — lanes belonging to different
        merge blocks of the network sort in alternating directions
        (Lemma 6).

    Returns a new array with every lane sorted in its direction.
    """
    m = np.asarray(m)
    if m.ndim != 2:
        raise ConfigurationError(f"expected a 2-D array, got {m.ndim}-D")
    if axis not in (0, 1):
        raise ConfigurationError(f"axis must be 0 or 1, got {axis}")
    # One materialization for either axis: the butterfly runs in place on a
    # single copy, with the reshape oriented so column lanes need no
    # transposed second copy.
    work = m.copy()
    lanes = work.shape[1 - axis]
    length = work.shape[axis]
    if length == 0 or not is_power_of_two(length):
        raise ConfigurationError(
            f"lane length must be a positive power of two, got {length}"
        )
    asc = np.broadcast_to(np.asarray(ascending, dtype=bool), (lanes,))
    size = length
    while size > 1:
        half = size // 2
        if axis == 1:
            blocks = work.reshape(lanes, length // size, size)
            lo = blocks[:, :, :half]
            hi = blocks[:, :, half:]
            asc_blk = asc[:, None, None]
        else:
            blocks = work.reshape(length // size, size, lanes)
            lo = blocks[:, :half, :]
            hi = blocks[:, half:, :]
            asc_blk = asc[None, None, :]
        small = np.minimum(lo, hi)
        big = np.maximum(lo, hi)
        lo[...] = np.where(asc_blk, small, big)
        hi[...] = np.where(asc_blk, big, small)
        size = half
    return work
