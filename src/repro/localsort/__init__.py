"""Optimized local computation (Chapter 4 of the paper).

Instead of simulating compare-exchange steps one network column at a time,
each processor's local phase is replaced by fast sorting kernels that exploit
the known shape of the data (Lemmas 6/7, Theorems 2/3):

* :mod:`repro.localsort.radix` — LSD radix sort, used for the first ``lg n``
  stages (which just have to produce one monotonic run per processor);
* :mod:`repro.localsort.bitonic_min` — Algorithm 2: the minimum of a bitonic
  sequence in ``O(log n)`` comparisons (with a linear fallback for duplicate
  minima);
* :mod:`repro.localsort.bitonic_merge_sort` — sorting a bitonic sequence in
  linear work (Lemma 9): rotate at the minimum, then merge the two monotonic
  runs; plus a batched butterfly bitonic merge for sorting many rows/columns
  of bitonic sequences at once;
* :mod:`repro.localsort.merges` — vectorized two-way and p-way merges of
  sorted runs (used after a remap whose incoming long messages are each
  sorted, §4.3).
"""

from repro.localsort.radix import radix_sort
from repro.localsort.bitonic_min import (
    argmin_bitonic,
    argmin_bitonic_linear,
    BitonicMinStats,
)
from repro.localsort.bitonic_merge_sort import (
    batched_bitonic_merge,
    sort_bitonic,
)
from repro.localsort.merges import merge_sorted, p_way_merge
from repro.localsort.fused import (
    compose_permutation,
    fused_sort_and_pack,
    sort_bitonic_with_perm,
)

__all__ = [
    "compose_permutation",
    "fused_sort_and_pack",
    "sort_bitonic_with_perm",
    "radix_sort",
    "argmin_bitonic",
    "argmin_bitonic_linear",
    "BitonicMinStats",
    "sort_bitonic",
    "batched_bitonic_merge",
    "merge_sorted",
    "p_way_merge",
]
