"""Fusing local sorts with data packing (§4.3, Figure 4.8).

The paper: "The overhead associated with packing can be eliminated ... by
computing a pack index for every element that has been sorted and assigning
the element to its location in the packed message instead of its position
in the sorted sequence."

In array terms: an unfused phase performs *two* data movements —

1. ``sorted = data[sort_perm]``            (the local sort's writes)
2. ``buffer = sorted[pack_idx]``           (the packing gather)

— while the fused phase performs *one*: ``buffer = data[sort_perm[pack_idx]]``.
The composed permutation is computed once per phase from index arithmetic
(cheap), and each element is then touched a single time.

:func:`sort_bitonic_with_perm` extends the bitonic merge sort of §4.2 to
also return its permutation; :func:`fused_sort_and_pack` composes it with a
remap plan's gather indices, producing the kept block and every outgoing
long-message buffer in one data pass.  The simulated machine charges this
at the ``fused_pack`` rate instead of ``pack`` + ``unpack``
(:mod:`repro.remap.exchange`), and the tests verify the fused outputs are
byte-identical to the two-step pipeline.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.localsort.bitonic_min import BitonicMinStats, argmin_bitonic
from repro.remap.plan import RemapPlan

__all__ = ["sort_bitonic_with_perm", "compose_permutation", "fused_sort_and_pack"]


def sort_bitonic_with_perm(
    a: np.ndarray,
    ascending: bool = True,
    stats: BitonicMinStats | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bitonic merge sort returning ``(sorted, perm)`` with
    ``sorted == a[perm]``.

    Same structure as :func:`~repro.localsort.bitonic_merge_sort.sort_bitonic`
    (Algorithm 2 minimum, rotation, two-run merge), carried out on index
    arrays so the permutation is explicit and composable with a pack
    gather.
    """
    a = np.asarray(a)
    n = a.size
    if n <= 1:
        return a.copy(), np.arange(n, dtype=np.int64)
    lo = argmin_bitonic(a, stats=stats)
    order = (np.arange(n, dtype=np.int64) + lo) % n  # rotation indices
    rotated = a[order]
    peak = _peak(rotated)
    left = order[: peak + 1]
    right = order[peak + 1:][::-1]
    lv, rv = a[left], a[right]
    perm = np.empty(n, dtype=np.int64)
    pos_l = np.arange(left.size) + np.searchsorted(rv, lv, side="left")
    pos_r = np.arange(right.size) + np.searchsorted(lv, rv, side="right")
    perm[pos_l] = left
    perm[pos_r] = right
    if not ascending:
        perm = perm[::-1].copy()
    return a[perm], perm


def _peak(r: np.ndarray) -> int:
    """Peak of an increasing-then-decreasing array (binary search with a
    linear fallback on plateaus, as in bitonic_merge_sort)."""
    lo, hi = 0, r.size - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if r[mid] < r[mid + 1]:
            lo = mid + 1
        elif r[mid] > r[mid + 1]:
            hi = mid
        else:
            return int(np.argmax(r))
    return int(lo)


def compose_permutation(sort_perm: np.ndarray, gather_idx: np.ndarray) -> np.ndarray:
    """Indices that read, from the *unsorted* array, the elements the
    two-step pipeline would place at ``sorted[gather_idx]``:
    ``data[compose(...)] == data[sort_perm][gather_idx]``."""
    return np.asarray(sort_perm)[np.asarray(gather_idx)]


def fused_sort_and_pack(
    data: np.ndarray,
    plan: RemapPlan,
    ascending: bool = True,
) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
    """Sort a bitonic partition and pack it for a remap in one data pass.

    Returns ``(kept, buffers)`` where ``kept`` holds the elements staying
    on this processor (in message order of their local slots) and
    ``buffers[dst]`` is the outgoing long-message payload for ``dst`` —
    all produced by single gathers through the composed permutation, never
    materializing the intermediate sorted array.
    """
    _, perm = sort_bitonic_with_perm(data, ascending=ascending)
    kept = data[compose_permutation(perm, plan.keep_src)]
    buffers = {
        dst: data[compose_permutation(perm, idx)]
        for dst, idx in sorted(plan.send.items())
    }
    return kept, buffers
