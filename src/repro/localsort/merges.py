"""Vectorized merges of sorted runs.

After a long-message remap each incoming message is itself sorted (it was
produced by a sender whose local phase ended in sorted runs — §4.3), so the
receiving processor can rebuild its local array with a p-way merge instead
of a general sort.  These helpers implement that with NumPy primitives:
two sorted arrays are merged in one vectorized pass via rank arithmetic
(``searchsorted``), and a p-way merge reduces pairwise in a balanced tree.

The simulated machine charges merges at one
:class:`~repro.model.machines.ComputeCosts.merge` unit per element per
two-way merge level, which is the linear cost the paper's Lemma 9 assigns.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["merge_sorted", "p_way_merge"]


def merge_sorted(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Merge two ascending-sorted arrays into one ascending-sorted array.

    Fully vectorized: each element's output position is its own index plus
    the number of elements of the other array that precede it.  Ties are
    broken in favour of ``x`` (stable left-to-right), which makes the merge
    deterministic.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.size == 0:
        return y.copy()
    if y.size == 0:
        return x.copy()
    out = np.empty(x.size + y.size, dtype=np.result_type(x, y))
    pos_x = np.arange(x.size) + np.searchsorted(y, x, side="left")
    pos_y = np.arange(y.size) + np.searchsorted(x, y, side="right")
    out[pos_x] = x
    out[pos_y] = y
    return out


def p_way_merge(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Merge ``p`` ascending-sorted runs into one ascending-sorted array.

    Pairwise tree reduction: ``ceil(lg p)`` levels of two-way merges, each
    level touching every element once — O(n lg p) total work, matching the
    paper's "fast p-way merge sort" for unpack-free reception (§4.3).
    """
    runs = [np.asarray(r) for r in runs if np.asarray(r).size > 0]
    if not runs:
        raise ConfigurationError("p_way_merge needs at least one non-empty run")
    level: List[np.ndarray] = list(runs)
    while len(level) > 1:
        nxt: List[np.ndarray] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(merge_sorted(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
