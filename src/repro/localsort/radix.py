"""LSD radix sort for unsigned integer keys.

The paper uses a local radix sort for the first ``lg n`` stages of the
network ("since the keys are in a specified range we used radix-sort which
also takes O(n) time", §4.4).  We implement the classic least-significant-
digit counting sort: per digit, a histogram, an exclusive cumulative sum
over digit values for the output bases, and one stable scatter.

Implementation note: the stable scatter needs each element's rank *within
its digit bucket*, which NumPy cannot produce with a plain ``bincount``.
The trick here packs all 16 per-chunk digit counters into one ``uint64``
(16 lanes x 4 bits, rows chunked in groups of 15 so no lane overflows): a
single vectorized ``cumsum`` over the packed one-hot encodings yields, at
every element, the running count of each digit value — the within-chunk
rank — and the final row per chunk is the chunk histogram.  Chunk-exclusive
and digit-exclusive scans then complete the classic counting-sort address
``base[digit] + rank``, one O(n) scatter per pass and no ``argsort``
anywhere.  The packed lanes bound a sub-digit at 4 bits, so a configured
``radix_bits``-wide digit is processed as consecutive 4-bit sub-passes
covering exactly the same bit range — stable LSD passes over any
partition of the same bits produce identical output.  The *simulated
machine* charges radix sort at the paper's cost of one linear pass per
``radix_bits`` digit (:class:`repro.model.machines.ComputeCosts.radix_pass`),
so the accounting follows the algorithm, not the Python vectorization
trick.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["radix_sort", "num_passes"]

#: Rows per packed-counter chunk: 15 one-hot increments can never overflow
#: a 4-bit lane.
_CHUNK = 15


def num_passes(key_bits: int, radix_bits: int) -> int:
    """Number of counting-sort passes to cover ``key_bits``-bit keys."""
    if key_bits < 1 or radix_bits < 1:
        raise ConfigurationError("key_bits and radix_bits must be >= 1")
    return -(-key_bits // radix_bits)


def radix_sort(
    keys: np.ndarray,
    *,
    ascending: bool = True,
    key_bits: int = 32,
    radix_bits: int = 8,
) -> np.ndarray:
    """Sort ``keys`` (an unsigned integer array) and return a new array.

    Parameters
    ----------
    ascending:
        Sort direction.  Descending sorts are needed because alternating
        processors must produce alternating monotonic runs (Lemma 6).
    key_bits:
        How many low bits of the keys are significant (31 for the paper's
        key range); passes beyond these bits are skipped.
    radix_bits:
        Digit width per accounted pass (8 → byte-at-a-time, the classic
        choice); the covered bit range is rounded up to whole digits,
        exactly as one counting sort per digit would.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ConfigurationError(f"radix_sort expects a 1-D array, got {keys.ndim}-D")
    if keys.size <= 1:
        return keys.copy()
    if not np.issubdtype(keys.dtype, np.integer):
        raise ConfigurationError(f"radix_sort expects integer keys, got {keys.dtype}")
    total_bits = num_passes(key_bits, radix_bits) * radix_bits
    out = _counting_sort_passes(keys.copy(), total_bits)
    if not ascending:
        out = out[::-1].copy()
    return out


def _counting_sort_passes(out: np.ndarray, total_bits: int) -> np.ndarray:
    """Stable LSD counting-sort scatters over bits ``[0, total_bits)`` of
    ``out`` (which is consumed as scratch), 4 bits at a time."""
    n = out.size
    # Index math in int32 when it fits: it halves the memory traffic of the
    # big rank/position arrays, which dominates at large n.
    idt = np.int32 if n < (1 << 31) else np.int64
    C = -(-n // _CHUNK)  # number of chunks
    pad = C * _CHUNK - n
    chunk_id = np.repeat(np.arange(C, dtype=idt), _CHUNK)[:n]
    enc = np.zeros(C * _CHUNK, dtype=np.uint64)
    lanes4 = (np.arange(16, dtype=np.uint64) << np.uint64(2))[:, None]
    new = np.empty_like(out)
    shift = 0
    while shift < total_bits:
        width = min(4, total_bits - shift)
        digit_mask = (1 << width) - 1
        d = ((out >> shift) & out.dtype.type(digit_mask)).astype(np.uint64)
        lane = d << np.uint64(2)  # 4-bit lane offset of each digit value
        # Packed one-hot: incrementing digit v adds 1 to lane v.
        np.left_shift(np.uint64(1), lane, out=enc[:n])
        if pad:
            enc[n:] = 0
        packed = enc.reshape(C, _CHUNK)
        # One cumsum = 16 running per-digit counters, all rows at once.
        np.cumsum(packed, axis=1, out=packed)
        # Unpack per-chunk histograms as (16, C) — digit-major, so the
        # across-chunk scan below runs over contiguous memory.
        hist = ((packed[:, -1][None, :] >> lanes4) & np.uint64(15)).astype(idt)
        before = np.cumsum(hist, axis=1)  # inclusive over chunks …
        totals = before[:, -1].copy()  # … whose last column is the global histogram
        before -= hist  # exclusive: earlier chunks only
        base = np.cumsum(totals) - totals  # exclusive scan over digit values
        # Running counter *including self*, hence the -1 for a 0-based rank.
        rank = ((packed.ravel()[:n] >> lane) & np.uint64(15)).astype(idt) - 1
        di = d.astype(idt)
        pos = base[di]
        pos += before.ravel()[di * idt(C) + chunk_id]
        pos += rank
        new[pos] = out
        out, new = new, out
        shift += width
    return out
