"""LSD radix sort for unsigned integer keys.

The paper uses a local radix sort for the first ``lg n`` stages of the
network ("since the keys are in a specified range we used radix-sort which
also takes O(n) time", §4.4).  We implement the classic least-significant-
digit counting sort, one digit of ``radix_bits`` per pass.

Implementation note: inside each pass the stable reordering is performed
with NumPy's stable ``argsort`` over the extracted digit rather than an
explicit counting-sort scatter loop — the two are observationally identical,
but the former is vectorized in Python.  The *simulated machine* charges
radix sort at the paper's cost of one linear pass per digit
(:class:`repro.model.machines.ComputeCosts.radix_pass`), so the accounting
follows the algorithm, not the Python vectorization trick.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["radix_sort", "num_passes"]


def num_passes(key_bits: int, radix_bits: int) -> int:
    """Number of counting-sort passes to cover ``key_bits``-bit keys."""
    if key_bits < 1 or radix_bits < 1:
        raise ConfigurationError("key_bits and radix_bits must be >= 1")
    return -(-key_bits // radix_bits)


def radix_sort(
    keys: np.ndarray,
    *,
    ascending: bool = True,
    key_bits: int = 32,
    radix_bits: int = 8,
) -> np.ndarray:
    """Sort ``keys`` (an unsigned integer array) and return a new array.

    Parameters
    ----------
    ascending:
        Sort direction.  Descending sorts are needed because alternating
        processors must produce alternating monotonic runs (Lemma 6).
    key_bits:
        How many low bits of the keys are significant (31 for the paper's
        key range); passes beyond these bits are skipped.
    radix_bits:
        Digit width per pass (8 → byte-at-a-time, the classic choice).
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ConfigurationError(f"radix_sort expects a 1-D array, got {keys.ndim}-D")
    if keys.size <= 1:
        return keys.copy()
    if not np.issubdtype(keys.dtype, np.integer):
        raise ConfigurationError(f"radix_sort expects integer keys, got {keys.dtype}")
    out = keys.copy()
    digit_mask = (1 << radix_bits) - 1
    for p in range(num_passes(key_bits, radix_bits)):
        shift = p * radix_bits
        digit = (out >> shift) & out.dtype.type(digit_mask)
        order = np.argsort(digit, kind="stable")
        out = out[order]
    if not ascending:
        out = out[::-1].copy()
    return out
