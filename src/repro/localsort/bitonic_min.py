"""Algorithm 2: the minimum of a bitonic sequence in O(log n) time.

A bitonic sequence viewed circularly has a single "valley" (Figure 4.6).
Three splitters break the circle into three arcs; the arc *between* the two
non-minimal splitters cannot contain the global minimum (Step 1), and each
subsequent iteration halves the remaining arc by re-splitting it with two
new splitters around the current best (Step 2, Figure 4.7).

The logarithmic bound requires distinct elements (Lemma 8): whenever the
comparison of a splitter triple produces a tie, we conservatively fall back
to a linear scan of the remaining arc, exactly as the paper prescribes
("we can start finding the minimum using the logarithmic version and we
switch to the linear search if we have two equal splitters").

:func:`argmin_bitonic` returns the index of a minimum element along with a
:class:`BitonicMinStats` record (splitter comparisons performed, whether the
fallback triggered) so benchmarks can report the comparison counts behind
the O(log n) claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BitonicMinStats", "argmin_bitonic", "argmin_bitonic_linear"]


@dataclass
class BitonicMinStats:
    """Instrumentation of one :func:`argmin_bitonic` call."""

    comparisons: int = 0
    fallback: bool = False
    fallback_span: int = 0


def argmin_bitonic_linear(a: np.ndarray) -> int:
    """Reference linear-time minimum (used as the fallback and by tests)."""
    a = np.asarray(a)
    if a.size == 0:
        raise ConfigurationError("cannot take the minimum of an empty sequence")
    return int(np.argmin(a))


def _arc_len(lo: int, hi: int, n: int) -> int:
    """Number of positions strictly between ``lo`` and ``hi`` walking
    forward on the circle of ``n`` positions."""
    return (hi - lo) % n


def _mid(lo: int, hi: int, n: int) -> int:
    """Circular midpoint of the forward arc ``lo -> hi``."""
    return (lo + _arc_len(lo, hi, n) // 2) % n


def argmin_bitonic(a: np.ndarray, stats: BitonicMinStats | None = None) -> int:
    """Index of a minimum element of the bitonic sequence ``a``.

    ``a`` must be bitonic (Definition 1); this is not re-verified here (the
    callers establish it via Lemmas 6/7), but the returned index is always a
    true argmin even for non-distinct elements thanks to the fallback.
    """
    a = np.asarray(a)
    n = int(a.size)
    if n == 0:
        raise ConfigurationError("cannot take the minimum of an empty sequence")
    if stats is None:
        stats = BitonicMinStats()
    if n <= 3:
        stats.comparisons += max(n - 1, 0)
        return argmin_bitonic_linear(a)

    def fallback(lo: int, span: int) -> int:
        """Linear scan of ``span + 1`` circular positions starting at ``lo``."""
        stats.fallback = True
        stats.fallback_span = span + 1
        idx = (lo + np.arange(span + 1)) % n
        return int(idx[np.argmin(a[idx])])

    # Step 1: three initial splitters around the circle.
    s0, s1, s2 = 0, n // 3, (2 * n) // 3
    v0, v1, v2 = a[s0], a[s1], a[s2]
    stats.comparisons += 2
    if (v0 == v1) or (v1 == v2) or (v0 == v2):
        return fallback(0, n - 1)
    if v0 < v1 and v0 < v2:
        left, best, right = s2, s0, s1
    elif v1 < v0 and v1 < v2:
        left, best, right = s0, s1, s2
    else:
        left, best, right = s1, s2, s0

    # Step 2: shrink the arc (left .. right) around the best splitter.
    while _arc_len(left, right, n) > 3:
        x = _mid(left, best, n)
        y = _mid(best, right, n)
        vx, vb, vy = a[x], a[best], a[y]
        stats.comparisons += 2
        if (vx == vb) or (vb == vy) or (vx == vy):
            return fallback(left, _arc_len(left, right, n))
        if vx < vb and vx < vy:
            left, best, right = left, x, best
        elif vb < vx and vb < vy:
            left, best, right = x, best, y
        else:
            left, best, right = best, y, right

    # The search interval is down to at most the three splitters.
    span = _arc_len(left, right, n)
    stats.comparisons += span
    idx = (left + np.arange(span + 1)) % n
    return int(idx[np.argmin(a[idx])])
