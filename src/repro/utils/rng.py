"""Workload generators: the key distributions used in the evaluation.

The paper's experiments use "random, uniformly-distributed 32-bit keys"
(actually 31-bit: values in ``[0, 2**31)``, footnote 1 of Chapter 5).  The
comparison with sample sort additionally motivates low-entropy inputs: sample
sort degrades on skewed key distributions while bitonic sort is oblivious to
the input distribution (§5.5).  We therefore provide a small family of
generators so the benches can exercise both regimes.

All generators return ``uint32`` arrays (4 bytes per key — the byte count
used for communication-volume accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["KeyGenerator", "make_keys", "DISTRIBUTIONS"]

KEY_DTYPE = np.uint32
#: Upper bound (exclusive) of generated key values — the paper's RNG produced
#: numbers in ``[0, 2**31)``.
KEY_RANGE = 1 << 31


def _uniform(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.integers(0, KEY_RANGE, size=size, dtype=np.uint32)


def _low_entropy(rng: np.random.Generator, size: int) -> np.ndarray:
    """Keys drawn from only 16 distinct values — heavy duplication.

    This is the adversarial regime for sample sort's splitter selection and
    the duplicate-heavy regime for Algorithm 2's linear fallback.
    """
    values = rng.integers(0, KEY_RANGE, size=16, dtype=np.uint32)
    return values[rng.integers(0, 16, size=size)]


def _zero_entropy(rng: np.random.Generator, size: int) -> np.ndarray:
    """All keys equal — the degenerate extreme of low entropy."""
    return np.full(size, int(rng.integers(0, KEY_RANGE)), dtype=np.uint32)


def _gaussian(rng: np.random.Generator, size: int) -> np.ndarray:
    """Keys concentrated around the middle of the range (clipped normal)."""
    center = KEY_RANGE // 2
    spread = KEY_RANGE // 16
    raw = rng.normal(center, spread, size=size)
    return np.clip(raw, 0, KEY_RANGE - 1).astype(np.uint32)


def _sorted_ascending(rng: np.random.Generator, size: int) -> np.ndarray:
    return np.sort(_uniform(rng, size))


def _sorted_descending(rng: np.random.Generator, size: int) -> np.ndarray:
    return np.sort(_uniform(rng, size))[::-1].copy()


DISTRIBUTIONS: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "uniform": _uniform,
    "low-entropy": _low_entropy,
    "zero-entropy": _zero_entropy,
    "gaussian": _gaussian,
    "sorted": _sorted_ascending,
    "reverse-sorted": _sorted_descending,
}


@dataclass(frozen=True)
class KeyGenerator:
    """A reproducible source of benchmark keys.

    Parameters
    ----------
    distribution:
        One of :data:`DISTRIBUTIONS` (``"uniform"`` matches the paper).
    seed:
        Seed for :class:`numpy.random.Generator`; identical seeds produce
        identical workloads so experiments are exactly repeatable.
    """

    distribution: str = "uniform"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown key distribution {self.distribution!r}; "
                f"choose from {sorted(DISTRIBUTIONS)}"
            )

    def generate(self, size: int) -> np.ndarray:
        """Generate ``size`` keys as a ``uint32`` array."""
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        rng = np.random.default_rng(self.seed)
        return DISTRIBUTIONS[self.distribution](rng, size)


def make_keys(size: int, *, distribution: str = "uniform", seed: int = 0) -> np.ndarray:
    """Convenience wrapper: ``KeyGenerator(distribution, seed).generate(size)``."""
    return KeyGenerator(distribution=distribution, seed=seed).generate(size)
