"""Low-level helpers shared across the package: bit manipulation, argument
validation and workload (key-distribution) generators."""

from repro.utils.bits import (
    bit_field,
    bit_of,
    bit_reverse,
    deposit_field,
    ilog2,
    is_power_of_two,
    mask,
    popcount,
)
from repro.utils.validation import (
    require,
    require_power_of_two,
    require_sizes,
)
from repro.utils.rng import KeyGenerator, make_keys

__all__ = [
    "bit_field",
    "bit_of",
    "bit_reverse",
    "deposit_field",
    "ilog2",
    "is_power_of_two",
    "mask",
    "popcount",
    "require",
    "require_power_of_two",
    "require_sizes",
    "KeyGenerator",
    "make_keys",
]
