"""Argument-validation helpers.

Centralizing the checks keeps error messages consistent across the package and
keeps the algorithm modules free of boilerplate.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError, SizeError
from repro.utils.bits import is_power_of_two

__all__ = ["require", "require_power_of_two", "require_sizes"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise SizeError(f"{name} must be an int, got {type(value).__name__}")
    if not is_power_of_two(value):
        raise SizeError(f"{name} must be a positive power of two, got {value}")
    return value


def require_sizes(total_keys: int, nprocs: int) -> Tuple[int, int, int]:
    """Validate a ``(N, P)`` problem-size pair and return ``(N, P, n)``.

    ``N`` and ``P`` must be powers of two with ``P <= N`` — the bitonic
    sorting network has one row per key and at least one key must land on
    every processor (the paper's data layouts assume ``n = N/P >= 1``).
    """
    N = require_power_of_two(total_keys, "N (total keys)")
    P = require_power_of_two(nprocs, "P (processors)")
    if P > N:
        raise SizeError(
            f"P={P} processors cannot hold N={N} keys: need at least one key "
            "per processor (P <= N)"
        )
    return N, P, N // P
