"""Bit-manipulation primitives used by address translation.

The whole paper is phrased in terms of bit patterns of *absolute addresses*
(the row of a node in the bitonic sorting network) and *relative addresses*
(processor number concatenated with a local address).  Every layout in
:mod:`repro.layouts` is ultimately a permutation of bit fields, so these
helpers are the foundation of the package.

Conventions (see DESIGN.md §5):

* bits are 0-indexed from the least-significant bit;
* ``bit_field(x, lo, width)`` extracts ``width`` bits starting at bit ``lo``;
* all helpers accept either Python ints or NumPy integer arrays and are fully
  vectorized in the latter case.
"""

from __future__ import annotations

from typing import TypeVar, Union

import numpy as np

from repro.errors import ConfigurationError

IntLike = TypeVar("IntLike", int, np.ndarray)
_Int = Union[int, np.ndarray]

__all__ = [
    "is_power_of_two",
    "ilog2",
    "mask",
    "bit_of",
    "bit_field",
    "deposit_field",
    "bit_reverse",
    "popcount",
]


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer base-2 logarithm of a power of two.

    Raises :class:`ConfigurationError` if ``x`` is not a positive power of
    two, because all sizes in the bitonic sorting network must be.
    """
    if not is_power_of_two(x):
        raise ConfigurationError(f"expected a positive power of two, got {x!r}")
    return x.bit_length() - 1


def mask(width: int) -> int:
    """A mask of ``width`` low bits, e.g. ``mask(3) == 0b111``.

    ``mask(0) == 0`` so callers can use it for empty fields without special
    cases.
    """
    if width < 0:
        raise ConfigurationError(f"mask width must be >= 0, got {width}")
    return (1 << width) - 1


def bit_of(x: IntLike, i: int) -> IntLike:
    """Bit ``i`` of ``x`` (0 or 1).  Vectorized over NumPy arrays."""
    return (x >> i) & 1


def bit_field(x: IntLike, lo: int, width: int) -> IntLike:
    """Extract ``width`` bits of ``x`` starting at bit ``lo``.

    ``bit_field(0b10110, 1, 3) == 0b011``.
    """
    if lo < 0:
        raise ConfigurationError(f"bit_field lo must be >= 0, got {lo}")
    return (x >> lo) & mask(width)


def deposit_field(x: IntLike, value: _Int, lo: int, width: int) -> IntLike:
    """Return ``x`` with bits ``lo .. lo+width-1`` replaced by ``value``.

    ``value`` is masked to ``width`` bits first, so stray high bits in the
    incoming value cannot corrupt neighbouring fields.
    """
    if lo < 0:
        raise ConfigurationError(f"deposit_field lo must be >= 0, got {lo}")
    m = mask(width)
    if isinstance(x, np.ndarray):
        cleared = x & ~np.array(m << lo, dtype=x.dtype)
        return cleared | ((np.asarray(value, dtype=x.dtype) & m) << lo)
    return (x & ~(m << lo)) | ((value & m) << lo)


def bit_reverse(x: IntLike, width: int) -> IntLike:
    """Reverse the low ``width`` bits of ``x``.

    Used by tests that cross-check butterfly index arithmetic; vectorized.
    """
    if isinstance(x, np.ndarray):
        out = np.zeros_like(x)
        v = x.copy()
        for _ in range(width):
            out = (out << 1) | (v & 1)
            v >>= 1
        return out
    out = 0
    for _ in range(width):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


def popcount(x: IntLike) -> IntLike:
    """Number of set bits.  Vectorized over NumPy arrays.

    The number of bits that *differ* between two address patterns —
    ``popcount(a ^ b)`` — is exactly the paper's ``N_BitsChanged`` quantity
    (Lemma 3), so this is used to verify the closed forms empirically.
    """
    if isinstance(x, np.ndarray):
        v = x.astype(np.uint64)
        count = np.zeros_like(v)
        while np.any(v):
            count += v & 1
            v >>= np.uint64(1)
        return count.astype(np.int64)
    return int(x).bit_count()
