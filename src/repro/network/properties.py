"""Predicates on sequences: sortedness, monotonicity, bitonicity.

These back the assertions of Lemmas 6 and 7 (the data array at a given
column consists of sorted / bitonic runs of known length) and are used
throughout the tests to validate intermediate states of the algorithms.

A sequence is *bitonic* (Definition 1) if some cyclic shift of it first
monotonically increases then monotonically decreases.  Equivalently — and
this is what we check — after collapsing circularly-adjacent equal elements,
walking the sequence circularly changes direction at most twice.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_sorted_ascending",
    "is_sorted_descending",
    "is_monotonic",
    "count_circular_direction_changes",
    "is_bitonic",
]


def is_sorted_ascending(a: np.ndarray) -> bool:
    """True iff ``a`` is non-decreasing."""
    a = np.asarray(a)
    return bool(np.all(a[:-1] <= a[1:]))


def is_sorted_descending(a: np.ndarray) -> bool:
    """True iff ``a`` is non-increasing."""
    a = np.asarray(a)
    return bool(np.all(a[:-1] >= a[1:]))


def is_monotonic(a: np.ndarray) -> bool:
    """True iff ``a`` is non-decreasing or non-increasing."""
    return is_sorted_ascending(a) or is_sorted_descending(a)


def count_circular_direction_changes(a: np.ndarray) -> int:
    """Number of sign changes in the circular difference sequence of ``a``,
    ignoring zero differences.

    0 for a constant sequence, 2 for a non-constant bitonic sequence (one
    rise-to-fall turn and one fall-to-rise turn somewhere on the circle),
    more for anything that is not bitonic.  The count is always even for a
    circular walk.
    """
    a = np.asarray(a)
    if a.size <= 2:
        return 0
    # Signed differences around the circle, as int8 signs with zeros dropped.
    diffs = np.sign(
        np.roll(a.astype(np.int64), -1) - a.astype(np.int64)
    )
    signs = diffs[diffs != 0]
    if signs.size == 0:
        return 0
    changes = int(np.count_nonzero(signs[:-1] != signs[1:]))
    # Close the circle: compare last non-zero sign with the first.
    if signs[-1] != signs[0]:
        changes += 1
    return changes


def is_bitonic(a: np.ndarray) -> bool:
    """True iff ``a`` is a bitonic sequence (Definition 1, including the
    cyclic-shift clause)."""
    return count_circular_direction_changes(a) <= 2
