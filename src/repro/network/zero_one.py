"""The 0-1 principle: certifying comparison networks exhaustively.

Knuth's 0-1 principle states that a comparison network sorts *every* input
iff it sorts every sequence of 0s and 1s.  For a network on ``N`` rows that
is ``2**N`` inputs — exhaustively checkable for the sizes used in unit
tests, turning "the implementation sorted some random arrays" into "the
implementation realizes a correct sorting network".

:func:`certify_sorter` drives an arbitrary array-to-array function;
:func:`certify_bitonic_merger` certifies a *merging* network by enumerating
every 0-1 *bitonic* input instead (a bitonic 0-1 sequence is any circular
run of 1s, so there are only ``O(N**2)`` of them — merging networks can be
certified at much larger sizes).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError, VerificationError

__all__ = ["all_zero_one_inputs", "certify_sorter", "certify_bitonic_merger"]

#: Refuse exhaustive enumeration beyond this many rows (2**20 inputs).
MAX_EXHAUSTIVE_ROWS = 20

Transform = Callable[[np.ndarray], np.ndarray]


def all_zero_one_inputs(N: int) -> np.ndarray:
    """All ``2**N`` 0-1 sequences of length ``N`` as a ``(2**N, N)``
    uint32 matrix (row ``i`` is the binary expansion of ``i``, LSB in
    column 0)."""
    if not 0 < N <= MAX_EXHAUSTIVE_ROWS:
        raise ConfigurationError(
            f"exhaustive 0-1 enumeration supports 1..{MAX_EXHAUSTIVE_ROWS} "
            f"rows, got {N}"
        )
    codes = np.arange(1 << N, dtype=np.uint32)
    return (codes[:, None] >> np.arange(N, dtype=np.uint32)[None, :]) & 1


def certify_sorter(sort_fn: Transform, N: int) -> int:
    """Certify that ``sort_fn`` sorts every length-``N`` input, via the
    0-1 principle.  Returns the number of inputs checked; raises
    :class:`VerificationError` on the first counterexample.

    ``sort_fn`` must be a comparison-based transform for the principle to
    be *sufficient*; for any transform this remains a powerful exhaustive
    test over 0-1 inputs.
    """
    inputs = all_zero_one_inputs(N)
    for row in inputs:
        out = sort_fn(row.copy())
        if not np.array_equal(out, np.sort(row)):
            raise VerificationError(
                f"0-1 counterexample of length {N}: input {row.tolist()} "
                f"-> {np.asarray(out).tolist()}"
            )
    return inputs.shape[0]


def all_zero_one_bitonic_inputs(N: int) -> np.ndarray:
    """All 0-1 *bitonic* sequences of length ``N``: each is a circular run
    of ``k`` ones starting at position ``s`` — ``N*(N-1) + 2`` distinct
    sequences (plus all-zeros and all-ones)."""
    if N < 1:
        raise ConfigurationError(f"need N >= 1, got {N}")
    rows = [np.zeros(N, dtype=np.uint32), np.ones(N, dtype=np.uint32)]
    base = np.arange(N)
    for k in range(1, N):
        for s in range(N):
            row = np.zeros(N, dtype=np.uint32)
            row[(base[:k] + s) % N] = 1
            rows.append(row)
    return np.unique(np.stack(rows), axis=0)


def certify_bitonic_merger(
    merge_fn: Transform, N: int, ascending: bool = True
) -> int:
    """Certify that ``merge_fn`` sorts every *bitonic* length-``N`` input,
    by the 0-1 principle restricted to bitonic sequences.  Returns the
    number of inputs checked."""
    inputs = all_zero_one_bitonic_inputs(N)
    for row in inputs:
        out = np.asarray(merge_fn(row.copy()))
        expect = np.sort(row) if ascending else np.sort(row)[::-1]
        if not np.array_equal(out, expect):
            raise VerificationError(
                f"bitonic 0-1 counterexample of length {N}: "
                f"{row.tolist()} -> {out.tolist()}"
            )
    return inputs.shape[0]
