"""Node addressing of the bitonic sorting network (Definition 3).

A network for ``N = 2**m`` keys has ``m`` *stages*; stage ``s`` (1-based,
``1 <= s <= m``) consists of *steps* ``s, s-1, ..., 1``, executed in that
order (the paper counts steps from right to left).  Step ``j`` performs
compare-exchange operations between rows whose absolute addresses differ in
bit ``j - 1`` (bits 0-indexed from the LSB).

The comparison direction follows from the paper's node-type rule — node
``(s, c, r)`` selects the minimum iff ``(r div 2^c) mod 2 = (r div 2^s) mod
2`` — which reduces to: *the pair containing row ``r`` sorts ascending (the
min lands at the smaller address) iff bit ``s`` of ``r`` is 0*.  In stage
``s = lg N`` that bit is always 0, so the final stage is one big ascending
merge.

Everything here is pure index arithmetic; it is shared by the sequential
reference network, the per-processor step engine, and the layout machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bits import bit_of, ilog2

__all__ = [
    "NetworkShape",
    "steps_of_stage",
    "network_columns",
    "total_steps",
    "compare_bit",
    "direction_bit",
    "partner",
    "is_ascending",
]

_Int = Union[int, np.ndarray]


@dataclass(frozen=True)
class NetworkShape:
    """Shape of a bitonic sorting network for ``N`` keys."""

    N: int

    def __post_init__(self) -> None:
        ilog2(self.N)  # validates power of two
        if self.N < 2:
            raise ConfigurationError(f"a sorting network needs N >= 2, got {self.N}")

    @property
    def num_stages(self) -> int:
        """``lg N`` stages."""
        return ilog2(self.N)

    @property
    def num_steps(self) -> int:
        """Total compare-exchange steps: ``lg N (lg N + 1) / 2``."""
        m = self.num_stages
        return m * (m + 1) // 2

    @property
    def comparators_per_step(self) -> int:
        """Each step compares ``N / 2`` disjoint pairs."""
        return self.N // 2

    def columns(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(stage, step)`` in execution order."""
        return network_columns(self.N)


def steps_of_stage(stage: int) -> range:
    """Steps of stage ``s`` in execution order: ``s, s-1, ..., 1``."""
    if stage < 1:
        raise ConfigurationError(f"stage must be >= 1, got {stage}")
    return range(stage, 0, -1)


def network_columns(N: int) -> Iterator[Tuple[int, int]]:
    """All ``(stage, step)`` pairs of the network for ``N`` keys, in
    execution order."""
    for stage in range(1, ilog2(N) + 1):
        for step in steps_of_stage(stage):
            yield stage, step


def total_steps(N: int) -> int:
    """Total number of compare-exchange steps for ``N`` keys."""
    return NetworkShape(N).num_steps


def compare_bit(step: int) -> int:
    """The absolute-address bit compared at ``step``: bit ``step - 1``."""
    if step < 1:
        raise ConfigurationError(f"step must be >= 1, got {step}")
    return step - 1


def direction_bit(stage: int) -> int:
    """The absolute-address bit that decides the comparison direction in
    ``stage``: bit ``stage`` (0 ⇒ ascending)."""
    if stage < 1:
        raise ConfigurationError(f"stage must be >= 1, got {stage}")
    return stage


def partner(row: _Int, step: int) -> _Int:
    """The row compared with ``row`` at ``step``: flip bit ``step - 1``."""
    return row ^ (1 << compare_bit(step))


def is_ascending(row: _Int, stage: int) -> _Int:
    """True where the comparison involving ``row`` during ``stage`` sorts
    ascending (min at the lower address).  Vectorized.

    Both rows of a compared pair agree on this because they differ only in
    bit ``step - 1 < stage``.
    """
    return bit_of(row, direction_bit(stage)) == 0
