"""Sequential reference implementations of the bitonic sorting network.

Two independent formulations are provided so they can cross-check each other:

* :func:`bitonic_sort_network` executes the network exactly as Definition 3
  describes it — column by column, each step a vectorized batch of
  compare-exchange operations between rows differing in one address bit.
  This is the *ground truth* all parallel algorithms in :mod:`repro.sorts`
  are validated against, because it shares no code with them beyond index
  arithmetic.

* :func:`batcher_sort` is Batcher's classic recursive formulation (sort both
  halves in opposite directions, then bitonic-merge), which exercises the
  *algorithmic view* the paper contrasts with the network view.

Both sort in place on a copy and return the sorted array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SizeError
from repro.network.addressing import (
    compare_bit,
    is_ascending,
    network_columns,
    steps_of_stage,
)
from repro.utils.bits import ilog2, is_power_of_two

__all__ = [
    "compare_exchange_step",
    "bitonic_sort_network",
    "bitonic_merge_network",
    "batcher_sort",
]


def compare_exchange_step(data: np.ndarray, stage: int, step: int) -> None:
    """Apply one network step in place to the full array ``data``.

    Rows whose addresses differ in bit ``step - 1`` are compared; the
    direction of each pair follows bit ``stage`` of the row address
    (:func:`repro.network.addressing.is_ascending`).
    """
    n = data.shape[0]
    half = 1 << compare_bit(step)
    idx = np.arange(n)
    lo = idx[(idx & half) == 0]
    hi = lo | half
    a, b = data[lo], data[hi]
    asc = is_ascending(lo, stage)
    swap = np.where(asc, a > b, a < b)
    # Vectorized conditional swap of the selected pairs.
    data[lo] = np.where(swap, b, a)
    data[hi] = np.where(swap, a, b)


def bitonic_sort_network(data: np.ndarray) -> np.ndarray:
    """Sort ``data`` (length a power of two) by executing every column of the
    bitonic sorting network.  Returns a sorted copy."""
    out = np.array(data, copy=True)
    n = out.shape[0]
    if n <= 1:
        return out
    if not is_power_of_two(n):
        raise SizeError(f"bitonic network input length must be a power of two, got {n}")
    for stage, step in network_columns(n):
        compare_exchange_step(out, stage, step)
    return out


def bitonic_merge_network(data: np.ndarray, stage: int) -> np.ndarray:
    """Execute only the steps of ``stage`` on a copy of ``data``.

    When ``data`` consists of bitonic sequences of length ``2**stage`` in the
    alternating arrangement of Lemma 6's stage input, the result consists of
    alternating sorted sequences of length ``2**stage``.
    """
    out = np.array(data, copy=True)
    n = out.shape[0]
    if not is_power_of_two(n):
        raise SizeError(f"input length must be a power of two, got {n}")
    if not 1 <= stage <= ilog2(n):
        raise SizeError(f"stage {stage} out of range for N={n}")
    for step in steps_of_stage(stage):
        compare_exchange_step(out, stage, step)
    return out


def _batcher_merge(a: np.ndarray, ascending: bool) -> np.ndarray:
    """Bitonic merge of a bitonic array ``a`` (length a power of two)."""
    n = a.shape[0]
    if n == 1:
        return a
    half = n // 2
    lo, hi = a[:half].copy(), a[half:].copy()
    if ascending:
        lo2 = np.minimum(lo, hi)
        hi2 = np.maximum(lo, hi)
    else:
        lo2 = np.maximum(lo, hi)
        hi2 = np.minimum(lo, hi)
    return np.concatenate(
        [_batcher_merge(lo2, ascending), _batcher_merge(hi2, ascending)]
    )


def _batcher_sort(a: np.ndarray, ascending: bool) -> np.ndarray:
    n = a.shape[0]
    if n == 1:
        return a
    half = n // 2
    first = _batcher_sort(a[:half].copy(), True)
    second = _batcher_sort(a[half:].copy(), False)
    return _batcher_merge(np.concatenate([first, second]), ascending)


def batcher_sort(data: np.ndarray, ascending: bool = True) -> np.ndarray:
    """Batcher's recursive bitonic sort (the algorithmic view).

    Returns a sorted copy; ``data`` length must be a power of two.
    """
    arr = np.array(data, copy=True)
    n = arr.shape[0]
    if n <= 1:
        return arr
    if not is_power_of_two(n):
        raise SizeError(f"batcher sort input length must be a power of two, got {n}")
    return _batcher_sort(arr, ascending)
