"""The bitonic sorting network (Chapter 2 of the paper).

This package contains the *network view* of bitonic sort: node addressing and
comparison-direction rules (:mod:`repro.network.addressing`), predicates on
sequences (:mod:`repro.network.properties`), a sequential reference
implementation that executes the network column by column
(:mod:`repro.network.sequential` — the ground truth every parallel algorithm
is tested against), and the vectorized compare-exchange engine used to run
network steps on a processor's local partition (:mod:`repro.network.steps`).
"""

from repro.network.addressing import (
    NetworkShape,
    compare_bit,
    direction_bit,
    is_ascending,
    network_columns,
    partner,
    steps_of_stage,
    total_steps,
)
from repro.network.properties import (
    count_circular_direction_changes,
    is_bitonic,
    is_monotonic,
    is_sorted_ascending,
    is_sorted_descending,
)
from repro.network.sequential import (
    batcher_sort,
    bitonic_merge_network,
    bitonic_sort_network,
    compare_exchange_step,
)
from repro.network.steps import (
    compare_exchange_general,
    compare_exchange_local,
    run_steps_general,
)

__all__ = [
    "NetworkShape",
    "compare_bit",
    "direction_bit",
    "is_ascending",
    "network_columns",
    "partner",
    "steps_of_stage",
    "total_steps",
    "count_circular_direction_changes",
    "is_bitonic",
    "is_monotonic",
    "is_sorted_ascending",
    "is_sorted_descending",
    "batcher_sort",
    "bitonic_merge_network",
    "bitonic_sort_network",
    "compare_exchange_step",
    "compare_exchange_general",
    "compare_exchange_local",
    "run_steps_general",
]
