"""Executing network steps on a processor's *local* partition.

During the purely-local phases of every parallel algorithm, each processor
holds ``n`` keys together with the absolute address (network row) of each
key.  A step is executable locally iff each key's partner (the row differing
in bit ``step - 1``) is on the same processor.

Two engines are provided:

* :func:`compare_exchange_local` — the fast path: the caller supplies the
  *local bit* ``lb`` such that partners sit at local indices differing in bit
  ``lb``.  Every layout in :mod:`repro.layouts` can answer which local bit
  backs a given absolute bit, making this O(n) and fully vectorized.

* :func:`compare_exchange_general` — a layout-agnostic fallback that pairs
  partners by sorting the absolute addresses (O(n log n)).  Used by tests to
  validate the fast path and by algorithms that shuffle local order in ways
  a layout object does not describe.

Both mutate ``data`` in place and raise if any partner is missing, which
would mean the step is *not* local under the current placement — a bug in
the caller's schedule, never silently tolerated.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LayoutError
from repro.network.addressing import compare_bit, is_ascending

__all__ = [
    "compare_exchange_local",
    "compare_exchange_general",
    "run_steps_general",
]


def compare_exchange_local(
    data: np.ndarray,
    absaddr: np.ndarray,
    stage: int,
    step: int,
    local_bit: int,
) -> None:
    """Apply one network step in place, pairing by local-index bit
    ``local_bit``.

    Requires that for every local index ``i``, the key at ``i ^ (1 <<
    local_bit)`` is the network partner of the key at ``i`` — i.e.
    ``absaddr[i ^ (1 << local_bit)] == absaddr[i] ^ (1 << (step-1))``.
    This invariant is what the layout's field mapping guarantees; it is
    checked here cheaply on one representative pair.
    """
    n = data.shape[0]
    half = 1 << local_bit
    if half >= n:
        raise LayoutError(
            f"local bit {local_bit} out of range for a partition of {n} keys"
        )
    cb = 1 << compare_bit(step)
    if (absaddr[0] ^ absaddr[half]) != cb:
        raise LayoutError(
            f"local bit {local_bit} does not map to absolute bit {compare_bit(step)}: "
            f"addresses {absaddr[0]:#x} and {absaddr[half]:#x} differ in "
            f"{absaddr[0] ^ absaddr[half]:#x}"
        )
    idx = np.arange(n)
    lo = idx[(idx & half) == 0]
    hi = lo | half
    a, b = data[lo], data[hi]
    asc = is_ascending(absaddr[lo], stage)
    swap = np.where(asc, a > b, a < b)
    data[lo] = np.where(swap, b, a)
    data[hi] = np.where(swap, a, b)


def compare_exchange_general(
    data: np.ndarray,
    absaddr: np.ndarray,
    stage: int,
    step: int,
) -> None:
    """Apply one network step in place, locating partners by searching the
    absolute addresses.  Works for any local ordering; O(n log n)."""
    n = data.shape[0]
    cb = 1 << compare_bit(step)
    order = np.argsort(absaddr, kind="stable")
    sorted_addr = absaddr[order]
    partners = absaddr ^ cb
    pos = np.searchsorted(sorted_addr, partners)
    if np.any(pos >= n) or np.any(sorted_addr[np.minimum(pos, n - 1)] != partners):
        missing = int(np.count_nonzero(
            (pos >= n) | (sorted_addr[np.minimum(pos, n - 1)] != partners)
        ))
        raise LayoutError(
            f"step {step} of stage {stage} is not local under this placement: "
            f"{missing} of {n} keys have off-processor partners"
        )
    partner_idx = order[pos]
    # Each pair appears twice (once from each endpoint); act only from the
    # lower address so every pair is processed exactly once.
    low_side = (absaddr & cb) == 0
    i_lo = np.nonzero(low_side)[0]
    i_hi = partner_idx[i_lo]
    a, b = data[i_lo], data[i_hi]
    asc = is_ascending(absaddr[i_lo], stage)
    swap = np.where(asc, a > b, a < b)
    data[i_lo] = np.where(swap, b, a)
    data[i_hi] = np.where(swap, a, b)


def run_steps_general(
    data: np.ndarray,
    absaddr: np.ndarray,
    columns,
) -> None:
    """Apply a sequence of ``(stage, step)`` columns in place with the
    general engine."""
    for stage, step in columns:
        compare_exchange_general(data, absaddr, stage, step)
