"""The Cyclic-Blocked bitonic sort ([CDMS94], §2.3, §5.3).

The strongest prior baseline: the first ``lg n`` stages run locally under a
blocked layout (one radix sort per processor); each later stage
``lg n + k`` remaps to cyclic, runs its first ``k`` steps locally as bitonic
merges, remaps back to blocked and finishes the stage's last ``lg n`` steps
with a local radix sort — ``2 lg P`` remaps, each a full all-to-all in which
a processor keeps only ``n / P`` of its elements.  Requires ``N >= P**2``.

Local computation follows [CDMS94]: *bitonic merges* under the cyclic
layout and *radix sorts* under the blocked layout (the blocked phase ends
with each partition fully sorted, so a full radix sort of the local bitonic
data produces the same result as simulating the steps; it is charged at
radix-sort cost — this is exactly the computation the smart algorithm's
Chapter 4 merges improve on).  Packing is folded into the local sorts as in
[AISS95] (all three compared algorithms use long messages well — §5.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.layouts.schedule import cyclic_blocked_schedule
from repro.localsort.bitonic_merge_sort import batched_bitonic_merge
from repro.localsort.radix import num_passes, radix_sort
from repro.machine.simulator import Machine
from repro.remap.exchange import perform_remap
from repro.sorts.base import ParallelSort
from repro.utils.bits import bit_of, ilog2

__all__ = ["CyclicBlockedBitonicSort"]


class CyclicBlockedBitonicSort(ParallelSort):
    """Periodic cyclic↔blocked remapping ([CKP+93, CDMS94])."""

    name = "cyclic-blocked"

    def __init__(self, spec=None, *, mode: str = "long", key_bits: int = 32,
                 radix_bits: int = 8):
        if spec is None:
            from repro.model.machines import MEIKO_CS2

            spec = MEIKO_CS2
        super().__init__(spec)
        self.mode = mode
        self.key_bits = key_bits
        self.radix_bits = radix_bits
        if mode != "long":
            self.name = f"cyclic-blocked[{mode}-msg]"

    def _run_parts(self, machine: Machine, parts: List[np.ndarray]) -> List[np.ndarray]:
        P = machine.P
        n = parts[0].size
        costs = machine.spec.compute
        passes = num_passes(self.key_bits, self.radix_bits)

        if P == 1:
            parts = [radix_sort(parts[0], key_bits=self.key_bits,
                                radix_bits=self.radix_bits)]
            machine.charge_compute(0, "local_sort", n, costs.radix_pass, passes=passes)
            return parts

        schedule = cyclic_blocked_schedule(P * n, P)
        lgn, lgP = ilog2(n), ilog2(P)

        # First lg n stages: alternating local radix sorts (Lemma 6).
        for r in range(P):
            parts[r] = radix_sort(parts[r], ascending=(r % 2 == 0),
                                  key_bits=self.key_bits, radix_bits=self.radix_bits)
            machine.charge_compute(r, "local_sort", n, costs.radix_pass, passes=passes)

        layout = schedule.initial_layout
        fused = self.mode == "long"
        for phase in schedule.phases:
            parts = perform_remap(machine, parts, layout, phase.layout,
                                  mode=self.mode, fused=fused)
            layout = phase.layout
            stage = phase.columns[0][0]
            k = stage - lgn
            if layout.name == "cyclic":
                self._cyclic_steps(machine, parts, layout, stage, k, lgn, lgP)
            else:
                self._blocked_sort(machine, parts, layout, stage, passes)
        return parts

    def _cyclic_steps(self, machine, parts, layout, stage, k, lgn, lgP) -> None:
        """The first ``k`` steps of stage ``lg n + k`` under the cyclic
        layout, executed as batched bitonic merges.

        The steps compare absolute bits ``lg n + k - 1 .. lg n``, i.e. local
        bits ``lg n - lg P + k - 1 .. lg n - lg P`` — a complete butterfly
        over ``k`` consecutive local bits, which bitonic-merges every group
        of ``2**k`` elements strided by ``2**(lg n - lg P)``.
        """
        costs = machine.spec.compute
        low = lgn - lgP  # lowest local bit touched
        for r in range(machine.P):
            data = parts[r]
            m = data.reshape(-1, 1 << k, 1 << low)
            lanes = np.transpose(m, (0, 2, 1)).reshape(-1, 1 << k)
            # Direction bit of stage lg n + k is absolute bit lg n + k: for
            # k < lg P this is local bit lg n - lg P + k — the low bit of
            # the leading (hi) axis; for k = lg P it is bit lg N, always 0.
            if k < lgP:
                hi = np.arange(m.shape[0])
                asc_hi = (hi & 1) == 0
                asc = np.repeat(asc_hi, 1 << low)
            else:
                asc = np.ones(lanes.shape[0], dtype=bool)
            lanes = batched_bitonic_merge(lanes, asc, axis=1)
            back = np.transpose(
                lanes.reshape(-1, 1 << low, 1 << k), (0, 2, 1)
            ).reshape(-1)
            parts[r] = back
            machine.charge_compute(r, "merge", data.size, costs.merge)

    def _blocked_sort(self, machine, parts, layout, stage, passes) -> None:
        """The last ``lg n`` steps of a stage under the blocked layout:
        each partition is one bitonic sequence that ends fully sorted; the
        baseline sorts it with a local radix sort ([CDMS94])."""
        costs = machine.spec.compute
        for r in range(machine.P):
            base_abs = int(layout.to_absolute(r, 0))
            asc = bit_of(base_abs, stage) == 0
            parts[r] = radix_sort(parts[r], ascending=bool(asc),
                                  key_bits=self.key_bits, radix_bits=self.radix_bits)
            machine.charge_compute(
                r, "local_sort", parts[r].size, costs.radix_pass, passes=passes
            )
