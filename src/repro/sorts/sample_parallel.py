"""Long-message parallel sample sort ([AISS95], used in Figures 5.7/5.8).

Splitter-based single-redistribution sort:

1. every processor sorts its partition locally (radix sort);
2. each contributes ``oversample`` evenly spaced samples; the combined
   sample is (conceptually) gathered everywhere and ``P - 1`` splitters are
   chosen from it;
3. each processor cuts its sorted partition at the splitters (binary
   search) and ships bucket ``i`` to processor ``i`` — one all-to-all of
   essentially all data;
4. each processor p-way merges the sorted runs it received.

One data redistribution total — asymptotically the cheapest communication
profile of the algorithms compared, which is why sample sort is "the clear
winner" in Figures 5.7/5.8.  Its weakness, noted in §5.5, is sensitivity to
the key distribution: skewed inputs produce unequal buckets, the makespan
follows the most loaded processor, and bitonic sort (oblivious to the
distribution) regains ground — the `examples/distribution_sensitivity.py`
example demonstrates exactly this.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.localsort.merges import p_way_merge
from repro.localsort.radix import num_passes, radix_sort
from repro.machine.message import Message
from repro.machine.simulator import Machine
from repro.sorts.base import ParallelSort
from repro.utils.bits import ilog2

__all__ = ["ParallelSampleSort"]


class ParallelSampleSort(ParallelSort):
    """Splitter-based sample sort with long messages ([AISS95])."""

    name = "sample"

    def __init__(self, spec=None, *, oversample: int = 32, key_bits: int = 32,
                 radix_bits: int = 8):
        if spec is None:
            from repro.model.machines import MEIKO_CS2

            spec = MEIKO_CS2
        super().__init__(spec)
        self.oversample = oversample
        self.key_bits = key_bits
        self.radix_bits = radix_bits

    def _run_parts(self, machine: Machine, parts: List[np.ndarray]) -> List[np.ndarray]:
        P = machine.P
        n = parts[0].size
        costs = machine.spec.compute
        passes = num_passes(self.key_bits, self.radix_bits)

        # 1. Local sorts.
        for r in range(P):
            parts[r] = radix_sort(parts[r], key_bits=self.key_bits,
                                  radix_bits=self.radix_bits)
            machine.charge_compute(r, "local_sort", n, costs.radix_pass, passes=passes)
        if P == 1:
            return parts

        # 2. Sampling: oversample evenly spaced keys per processor, gathered
        # to everyone (small long messages), sorted, splitters picked.
        s = min(self.oversample, n)
        samples = []
        for r in range(P):
            idx = np.linspace(0, n - 1, s).astype(np.int64)
            samples.append(parts[r][idx])
        sample_msgs = [
            Message(src=r, dst=q, payload=samples[r])
            for r in range(P)
            for q in range(P)
            if q != r
        ]
        machine.exchange(sample_msgs, mode="long", count_remap=False)
        pool = np.sort(np.concatenate(samples))
        cut = np.linspace(0, pool.size, P + 1).astype(np.int64)[1:-1]
        splitters = pool[np.maximum(cut - 1, 0)]
        for r in range(P):
            # Every processor sorts the sample pool and picks splitters.
            machine.charge_compute(
                r, "local_sort", pool.size, costs.radix_pass, passes=passes
            )

        # 3. Partition and redistribute (one all-to-all).
        messages: List[Message] = []
        kept: List[List[np.ndarray]] = [[] for _ in range(P)]
        for r in range(P):
            bounds = np.searchsorted(parts[r], splitters, side="right")
            edges = np.concatenate([[0], bounds, [n]])
            machine.charge_compute(r, "address", n, costs.address)
            machine.charge_compute(r, "pack", n, costs.fused_pack)
            for q in range(P):
                bucket = parts[r][edges[q]: edges[q + 1]]
                if bucket.size == 0:
                    continue
                if q == r:
                    kept[r].append(bucket)
                else:
                    messages.append(Message(src=r, dst=q, payload=bucket))
        delivered = machine.exchange(messages, mode="long") if messages else {}

        # 4. p-way merge of the received sorted runs.
        new_parts: List[np.ndarray] = []
        lgP = ilog2(P)
        for r in range(P):
            runs = kept[r] + [m.payload for m in delivered.get(r, [])]
            received = sum(run.size for run in runs)
            if received:
                merged = p_way_merge(runs)
                machine.charge_compute(
                    r, "merge", received, costs.merge, passes=max(lgP, 1),
                    working_set=received,
                )
            else:
                merged = np.empty(0, dtype=parts[r].dtype)
            new_parts.append(merged)
        machine.barrier()
        return new_parts
