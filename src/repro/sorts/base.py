"""Common scaffolding for the parallel sorts."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import VerificationError
from repro.machine.metrics import RunStats
from repro.machine.simulator import Machine
from repro.model.machines import MEIKO_CS2, MachineSpec
from repro.utils.validation import require_sizes

__all__ = ["SortResult", "ParallelSort", "verify_sorted"]


@dataclass
class SortResult:
    """Output of one parallel-sort run.

    ``sorted_keys`` is the global result gathered in processor order (the
    final layout of every algorithm here is blocked, so processor order *is*
    key order); ``stats`` carries simulated time and the R/V/M communication
    metrics.  ``traces`` holds per-processor timeline events when the run
    was traced (see :mod:`repro.viz.gantt`).
    """

    algorithm: str
    sorted_keys: np.ndarray
    stats: RunStats
    traces: Optional[list] = None

    def verify(self, original: np.ndarray) -> None:
        """Raise :class:`VerificationError` unless the output is the sorted
        permutation of ``original``."""
        verify_sorted(original, self.sorted_keys, self.algorithm)


def verify_sorted(original: np.ndarray, result: np.ndarray, label: str) -> None:
    """Check that ``result`` == sorted(``original``) (element-exact)."""
    expect = np.sort(np.asarray(original), kind="stable")
    got = np.asarray(result)
    if got.shape != expect.shape:
        raise VerificationError(
            f"{label}: output has shape {got.shape}, expected {expect.shape}"
        )
    if not np.array_equal(got, expect):
        bad = int(np.argmax(got != expect))
        raise VerificationError(
            f"{label}: output is not the sorted input (first mismatch at "
            f"index {bad}: got {got[bad]}, expected {expect[bad]})"
        )


class ParallelSort(ABC):
    """Base class: configure once, run on many workloads.

    Subclasses implement :meth:`_run_parts`, which receives the machine and
    the blocked initial partitions and must return the final partitions in
    blocked (globally sorted) order.
    """

    #: Short name used in tables and figures.
    name: str = "parallel-sort"

    def __init__(self, spec: MachineSpec = MEIKO_CS2):
        self.spec = spec

    def run(self, keys: np.ndarray, P: int, verify: bool = False,
            trace: bool = False, injector=None) -> SortResult:
        """Sort ``keys`` on ``P`` simulated processors.

        The initial distribution is blocked (untimed, as in the paper's
        measurements, which start from distributed data); the result is
        gathered from the final blocked partitions.  With ``trace=True``
        the result carries per-processor timelines for Gantt rendering.
        ``injector`` (a :class:`repro.faults.FaultInjector`) arms the
        machine's fault plane: injected faults are survived by simulated
        retransmission and show up in the makespan and V/M metrics.
        """
        keys = np.asarray(keys)
        require_sizes(keys.size, P)
        machine = Machine(P, self.spec, trace=trace, injector=injector)
        parts = machine.partition(keys)
        parts = self._run_parts(machine, parts)
        out = np.concatenate(parts)
        result = SortResult(
            algorithm=self.name,
            sorted_keys=out,
            stats=machine.stats(keys.size // P),
            traces=[p.trace for p in machine.procs] if trace else None,
        )
        if verify:
            result.verify(keys)
        return result

    @abstractmethod
    def _run_parts(
        self, machine: Machine, parts: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Sort the blocked partitions in place on ``machine``."""
