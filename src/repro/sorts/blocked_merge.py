"""The Blocked-Merge bitonic sort ([BLM+91], §5.3).

The naive-but-honest baseline: a fixed blocked layout throughout.  The first
``lg n`` stages are local radix sorts; in each later stage ``lg n + k`` the
first ``k`` steps compare partners on *different* processors, so each step
is a pairwise exchange — the two partners swap their full partitions and
each keeps the min (or max) half — followed by a local radix sort for the
stage's remaining ``lg n`` steps.

Its communication profile under LogGP (§3.4.2/3.4.3): ``R = lgP(lgP+1)/2``
communication steps, volume ``V = n lgP(lgP+1)/2`` (every remote step moves
all ``n`` local keys) but only ``M = lgP(lgP+1)/2`` messages — the fewest of
the three strategies, which is why it wins for very small ``P`` despite the
huge volume (§3.4.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.layouts.blocked import blocked_layout
from repro.localsort.radix import num_passes, radix_sort
from repro.machine.message import Message
from repro.machine.simulator import Machine
from repro.sorts.base import ParallelSort
from repro.utils.bits import bit_of, ilog2

__all__ = ["BlockedMergeBitonicSort"]


class BlockedMergeBitonicSort(ParallelSort):
    """Fixed blocked layout with pairwise-exchange remote steps
    ([BLM+91])."""

    name = "blocked-merge"

    def __init__(self, spec=None, *, mode: str = "long", key_bits: int = 32,
                 radix_bits: int = 8):
        if spec is None:
            from repro.model.machines import MEIKO_CS2

            spec = MEIKO_CS2
        super().__init__(spec)
        self.mode = mode
        self.key_bits = key_bits
        self.radix_bits = radix_bits
        if mode != "long":
            self.name = f"blocked-merge[{mode}-msg]"

    def _run_parts(self, machine: Machine, parts: List[np.ndarray]) -> List[np.ndarray]:
        P = machine.P
        n = parts[0].size
        costs = machine.spec.compute
        passes = num_passes(self.key_bits, self.radix_bits)
        lgn = ilog2(n) if n > 1 else 0
        lgP = ilog2(P)
        layout = blocked_layout(P * n, P)

        # First lg n stages: alternating local radix sorts.
        for r in range(P):
            parts[r] = radix_sort(parts[r], ascending=(r % 2 == 0),
                                  key_bits=self.key_bits, radix_bits=self.radix_bits)
            machine.charge_compute(r, "local_sort", n, costs.radix_pass, passes=passes)

        for k in range(1, lgP + 1):
            stage = lgn + k
            # Remote steps: lg n + k .. lg n + 1, each a pairwise exchange
            # on processor bit (step - 1 - lg n).
            for step in range(stage, lgn, -1):
                proc_bit = step - 1 - lgn
                self._pairwise_step(machine, parts, layout, stage, proc_bit, n)
            if lgn > 0:
                # Local steps lg n .. 1: the partition is bitonic and ends
                # fully sorted — one radix sort per processor.
                for r in range(P):
                    base_abs = int(layout.to_absolute(r, 0))
                    asc = bit_of(base_abs, stage) == 0
                    parts[r] = radix_sort(parts[r], ascending=bool(asc),
                                          key_bits=self.key_bits,
                                          radix_bits=self.radix_bits)
                    machine.charge_compute(r, "local_sort", n, costs.radix_pass,
                                           passes=passes)
        return parts

    def _pairwise_step(self, machine, parts, layout, stage, proc_bit, n) -> None:
        """One remote compare-exchange step: each processor ships its whole
        partition to its partner and keeps the min/max half elementwise
        (partners hold equal local addresses of the compared rows)."""
        P = machine.P
        costs = machine.spec.compute
        pb = 1 << proc_bit
        messages = [
            Message(src=r, dst=r ^ pb, payload=parts[r]) for r in range(P)
        ]
        delivered = machine.exchange(messages, mode=self.mode)
        new_parts: List[np.ndarray] = [None] * P  # type: ignore[list-item]
        for r in range(P):
            inbox = delivered.get(r, [])
            if len(inbox) != 1:
                raise RuntimeError(f"processor {r} expected exactly one message")
            other = inbox[0].payload
            mine = parts[r]
            base_abs = int(layout.to_absolute(r, 0))
            asc = bit_of(base_abs, stage) == 0
            low_side = bit_of(r, proc_bit) == 0
            if asc == low_side:
                new_parts[r] = np.minimum(mine, other)
            else:
                new_parts[r] = np.maximum(mine, other)
            machine.charge_compute(r, "compare_exchange", n, costs.compare_exchange)
        parts[:] = new_parts
        machine.barrier()
