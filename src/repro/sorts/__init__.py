"""Parallel sorting algorithms on the simulated machine.

* :mod:`repro.sorts.smart` — **Algorithm 1**, the paper's contribution:
  smart-layout bitonic sort with the minimal number of remaps and
  merge-based local computation.
* :mod:`repro.sorts.cyclic_blocked` — the Cyclic-Blocked bitonic sort of
  [CDMS94], the strongest prior baseline (§2.3, §5.3).
* :mod:`repro.sorts.blocked_merge` — the Blocked-Merge bitonic sort of
  [BLM+91]: fixed blocked layout, pairwise exchanges on remote steps (§5.3).
* :mod:`repro.sorts.radix_parallel` / :mod:`repro.sorts.sample_parallel` —
  the long-message parallel radix and sample sorts of [AISS95] used as
  cross-algorithm comparators (§5.5, Figures 5.7/5.8).
"""

from repro.sorts.base import ParallelSort, SortResult, verify_sorted
from repro.sorts.smart import SmartBitonicSort
from repro.sorts.cyclic_blocked import CyclicBlockedBitonicSort
from repro.sorts.blocked_merge import BlockedMergeBitonicSort
from repro.sorts.radix_parallel import ParallelRadixSort
from repro.sorts.sample_parallel import ParallelSampleSort
from repro.sorts.column import ColumnSort

__all__ = [
    "ParallelSort",
    "SortResult",
    "verify_sorted",
    "SmartBitonicSort",
    "CyclicBlockedBitonicSort",
    "BlockedMergeBitonicSort",
    "ParallelRadixSort",
    "ParallelSampleSort",
    "ColumnSort",
]
