"""Column sort ([Lei85]), as characterized in the paper's Chapter 6.

"Like bitonic sort, column sort alternates between local sort and key
distribution phases, but only four phases of each are required.  Two of the
communication phases are similar to cyclic-to-blocked and blocked-to-cyclic
remaps discussed in Chapter 2, the others are just a one-to-one
communication.  Like the cyclic-blocked bitonic sort, column sort requires
that N >= P**3."

The implementation makes that correspondence literal: the values form an
``r x s`` matrix (``s = P`` columns of ``r = n`` entries, one column per
processor, column-major global order), and

* steps 1/3/5/7 are local sorts (radix);
* step 2 (transpose: "pick up the entries column by column, lay them down
  row by row") is exactly a **blocked→cyclic remap** of the column-major
  position, executed with :func:`repro.remap.exchange.perform_remap`;
* step 4 (untranspose) is the cyclic→blocked remap back;
* steps 6/8 (shift/unshift by ``r/2`` with virtual ``-inf``/``+inf`` half
  columns) are one-to-one nearest-neighbour transfers of half a column.

Leighton's correctness condition ``r >= 2 (s - 1)**2`` (approximately
``N >= 2 P**3``) is enforced.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ScheduleError
from repro.layouts.blocked import blocked_layout
from repro.layouts.cyclic import cyclic_layout
from repro.localsort.radix import num_passes, radix_sort
from repro.machine.message import Message
from repro.machine.simulator import Machine
from repro.remap.exchange import perform_remap
from repro.sorts.base import ParallelSort

__all__ = ["ColumnSort"]


class ColumnSort(ParallelSort):
    """Leighton's column sort, one matrix column per processor."""

    name = "column"

    def __init__(self, spec=None, *, key_bits: int = 32, radix_bits: int = 8):
        if spec is None:
            from repro.model.machines import MEIKO_CS2

            spec = MEIKO_CS2
        super().__init__(spec)
        self.key_bits = key_bits
        self.radix_bits = radix_bits

    def _run_parts(self, machine: Machine, parts: List[np.ndarray]) -> List[np.ndarray]:
        P = machine.P
        r = parts[0].size  # rows per column
        costs = machine.spec.compute
        passes = num_passes(self.key_bits, self.radix_bits)

        def local_sorts() -> None:
            for rank in range(P):
                parts[rank] = radix_sort(parts[rank], key_bits=self.key_bits,
                                         radix_bits=self.radix_bits)
                machine.charge_compute(rank, "local_sort", r, costs.radix_pass,
                                       passes=passes)

        if P == 1:
            local_sorts()
            return parts
        if r < 2 * (P - 1) ** 2:
            raise ScheduleError(
                f"column sort needs r >= 2(s-1)**2 rows per column: "
                f"r={r}, s={P} (approximately N >= 2 P**3) — use the smart "
                "bitonic sort instead"
            )
        if r % 2:
            raise ScheduleError("column sort needs an even column length")

        N = P * r
        blocked = blocked_layout(N, P)
        cyclic = cyclic_layout(N, P)

        # Steps 1-2: sort columns, transpose (blocked -> cyclic remap).
        local_sorts()
        parts[:] = perform_remap(machine, parts, blocked, cyclic, fused=True)
        # Steps 3-4: sort columns, untranspose (cyclic -> blocked remap).
        local_sorts()
        parts[:] = perform_remap(machine, parts, cyclic, blocked, fused=True)
        # Step 5: sort columns.
        local_sorts()

        # Step 6: shift down r/2 — column j's bottom half moves to j+1;
        # virtual -inf above column 0 and +inf below column s-1.
        half = r // 2
        messages = [
            Message(src=j, dst=j + 1, payload=parts[j][half:])
            for j in range(P - 1)
        ]
        delivered = machine.exchange(messages)
        machine.barrier()

        # Step 7: sort the shifted columns.  Column 0's virtual -inf keep
        # its real top-half entries in its bottom positions; the virtual
        # last column (bottom of s-1 plus +inf) sorts locally on s-1.
        shifted: List[np.ndarray] = [None] * P  # type: ignore[list-item]
        shifted[0] = radix_sort(parts[0][:half], key_bits=self.key_bits,
                                radix_bits=self.radix_bits)
        machine.charge_compute(0, "local_sort", half, costs.radix_pass,
                               passes=passes)
        for j in range(1, P):
            incoming = delivered[j][0].payload
            shifted[j] = radix_sort(np.concatenate([incoming, parts[j][:half]]),
                                    key_bits=self.key_bits,
                                    radix_bits=self.radix_bits)
            machine.charge_compute(j, "local_sort", r, costs.radix_pass,
                                   passes=passes)
        tail = radix_sort(parts[P - 1][half:], key_bits=self.key_bits,
                          radix_bits=self.radix_bits)
        machine.charge_compute(P - 1, "local_sort", half, costs.radix_pass,
                               passes=passes)

        # Step 8: unshift — final column j is the bottom half of shifted
        # column j followed by the top half of shifted column j+1.
        back = [
            Message(src=j + 1, dst=j, payload=shifted[j + 1][:half])
            for j in range(P - 1)
        ]
        returned = machine.exchange(back)
        machine.barrier()
        out: List[np.ndarray] = []
        for j in range(P - 1):
            upper = shifted[j][half:] if j > 0 else shifted[0]
            out.append(np.concatenate([upper, returned[j][0].payload]))
        out.append(np.concatenate([shifted[P - 1][half:], tail]))
        return out
