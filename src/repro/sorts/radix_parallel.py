"""Long-message parallel radix sort ([AISS95], used in Figures 5.7/5.8).

Classic LSD parallel radix: for each digit (least-significant first) every
processor histograms its keys, the histograms are combined into global digit
offsets (an all-gather of ``2**radix_bits`` counters per processor), and
each key is shipped to the processor that owns its global rank — a full
all-to-all of (almost) all data per pass, packed into long messages with
packing fused into the local permutation as in [AISS95].

Stability of each pass makes the final result globally sorted after
``ceil(key_bits / radix_bits)`` passes.  The per-key cost is essentially
independent of ``P`` (each pass moves ``n (1 - 1/P)`` keys regardless),
which is why bitonic sort — whose cost grows with ``lg P`` — beats radix at
small ``P`` but loses at large ``P`` and large ``n`` (§5.5).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.machine.message import Message
from repro.machine.simulator import Machine
from repro.sorts.base import ParallelSort

__all__ = ["ParallelRadixSort"]


class ParallelRadixSort(ParallelSort):
    """LSD parallel radix sort with long messages ([AISS95])."""

    name = "radix"

    def __init__(self, spec=None, *, key_bits: int = 32, radix_bits: int = 8):
        if spec is None:
            from repro.model.machines import MEIKO_CS2

            spec = MEIKO_CS2
        super().__init__(spec)
        self.key_bits = key_bits
        self.radix_bits = radix_bits

    def _run_parts(self, machine: Machine, parts: List[np.ndarray]) -> List[np.ndarray]:
        P = machine.P
        n = parts[0].size
        costs = machine.spec.compute
        radix = 1 << self.radix_bits
        passes = -(-self.key_bits // self.radix_bits)

        # [AISS95]'s radix passes are digit-bucketed for cache locality
        # (each pass streams through per-digit buckets that fit in cache),
        # so — unlike the bitonic sorts' whole-array local phases — its
        # per-key local cost stays flat as n outgrows the cache.  We model
        # that by charging its local passes at an in-cache working set.
        in_cache = machine.spec.cache.capacity_keys

        for p in range(passes):
            shift = p * self.radix_bits
            digit_of = lambda a: (a >> shift) & a.dtype.type(radix - 1)

            # Local histograms (one linear pass per processor).
            counts = np.zeros((P, radix), dtype=np.int64)
            for r in range(P):
                counts[r] = np.bincount(digit_of(parts[r]), minlength=radix)
                machine.charge_compute(r, "local_sort", n, costs.radix_pass,
                                       working_set=in_cache)

            if P > 1:
                # All-gather of the histograms (small long messages).
                hist_msgs = [
                    Message(src=r, dst=q, payload=counts[r])
                    for r in range(P)
                    for q in range(P)
                    if q != r
                ]
                machine.exchange(hist_msgs, mode="long", count_remap=False)

            # Global rank of the first key of every (processor, digit) bin:
            # all lower digits everywhere, then the same digit on lower
            # ranks (this is the scan every processor computes after the
            # all-gather).
            digit_totals = counts.sum(axis=0)
            digit_base = np.concatenate([[0], np.cumsum(digit_totals)[:-1]])
            proc_within = np.cumsum(counts, axis=0) - counts  # exclusive
            offsets = digit_base[None, :] + proc_within

            # Each key's destination: global position -> (proc, slot).
            new_parts = [np.empty_like(parts[r]) for r in range(P)]
            messages: List[Message] = []
            recv_slots: dict = {}
            for r in range(P):
                d = digit_of(parts[r])
                order = np.argsort(d, kind="stable")
                sorted_d = d[order]
                within = np.arange(n) - np.searchsorted(sorted_d, sorted_d, side="left")
                pos = offsets[r][sorted_d] + within
                dproc = pos // n
                dslot = pos % n
                # Rank computation + permutation into send buffers: the
                # random-access half of the pass (bucketed, so in-cache).
                machine.charge_compute(r, "local_sort", n, costs.radix_permute,
                                       working_set=in_cache)
                machine.charge_compute(r, "address", n, costs.address,
                                       working_set=in_cache)
                machine.charge_compute(r, "pack", n, costs.fused_pack,
                                       working_set=in_cache)
                keep = dproc == r
                new_parts[r][dslot[keep]] = parts[r][order][keep]
                for q in np.unique(dproc[~keep]):
                    sel = dproc == q
                    messages.append(
                        Message(src=r, dst=int(q), payload=parts[r][order][sel])
                    )
                    recv_slots[(r, int(q))] = dslot[sel]
            if messages:
                delivered = machine.exchange(messages, mode="long")
                for q, inbox in delivered.items():
                    for msg in inbox:
                        slots = recv_slots[(msg.src, q)]
                        new_parts[q][slots] = msg.payload
                        # The receive side cannot fuse: arrivals scatter to
                        # rank-determined slots (bucketed, so in-cache).
                        machine.charge_compute(
                            q, "unpack", msg.num_elements, costs.unpack,
                            working_set=in_cache,
                        )
            machine.barrier()
            parts = new_parts
        return parts
