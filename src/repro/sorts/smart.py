"""Algorithm 1: Smart-layout parallel bitonic sort.

The first ``lg n`` stages of the network run entirely locally under the
initial blocked layout and are replaced by one local radix sort per
processor (ascending on even processors, descending on odd ones — Lemma 6).
The last ``lg P`` stages follow a smart remap schedule
(:func:`repro.layouts.schedule.build_schedule`): remap to the smart layout
of the current column, execute ``lg n`` steps locally, repeat.  That is the
provably minimal number of remaps (Theorem 1).

Two local-computation engines are available:

``"merge"`` (default — Chapter 4's optimization)
    Each phase's compare-exchange steps are replaced by linear-work merges:

    * *inside* phase — the local partition is one bitonic sequence and ends
      fully sorted (Theorem 2): one bitonic merge sort (Algorithm 2 minimum
      + two-way merge);
    * *crossing* phase — viewed as a ``2**b x 2**a`` matrix, first the rows
      (bitonic, length ``2**a``) are sorted to finish stage ``lg n + k``,
      then the columns (bitonic, length ``2**b``) to open stage
      ``lg n + k + 1`` (Theorem 3);
    * *last* phase — under the final blocked layout the partition is
      ``n / 2**s`` bitonic runs of length ``2**s``; a batched bitonic merge
      finishes them (all ascending — the final stage is one ascending
      merge).

    Phases whose shape fits none of these (only possible with the tail /
    middle remap placements of Lemma 5, whose first phase is truncated)
    fall back to step simulation for that phase alone.

``"simulate"``
    Execute every network column with vectorized compare-exchange — the
    unoptimized computation the paper improves upon.  Used as a correctness
    oracle and for the Chapter 4 ablation benchmark.

Message handling is ``"long"`` (packed bulk messages; default) or
``"short"`` (element-at-a-time, §3.3); with long messages, ``fused=True``
additionally folds the pack/unpack passes into the local sorts (§4.3) —
the fully optimized configuration measured as "Smart" in Table 5.1.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.layouts.base import BitFieldLayout
from repro.layouts.schedule import RemapPhase, build_schedule
from repro.layouts.smart import SmartParams, smart_params
from repro.localsort.bitonic_merge_sort import batched_bitonic_merge, sort_bitonic
from repro.localsort.radix import num_passes, radix_sort
from repro.machine.simulator import Machine
from repro.network.steps import compare_exchange_local
from repro.remap.exchange import perform_remap
from repro.sorts.base import ParallelSort
from repro.utils.bits import bit_of, ilog2

__all__ = ["SmartBitonicSort"]


class SmartBitonicSort(ParallelSort):
    """The paper's optimized parallel bitonic sort (Algorithm 1)."""

    def __init__(
        self,
        spec=None,
        *,
        mode: str = "long",
        fused: bool = True,
        local: str = "merge",
        strategy: str = "head",
        key_bits: int = 32,
        radix_bits: int = 8,
    ):
        if spec is None:
            from repro.model.machines import MEIKO_CS2

            spec = MEIKO_CS2
        super().__init__(spec)
        if mode not in ("long", "short"):
            raise ConfigurationError(f"mode must be 'long' or 'short', got {mode!r}")
        if local not in ("merge", "simulate"):
            raise ConfigurationError(
                f"local must be 'merge' or 'simulate', got {local!r}"
            )
        if fused and mode == "short":
            raise ConfigurationError("fused pack/unpack requires long messages")
        self.mode = mode
        self.fused = fused
        self.local = local
        self.strategy = strategy
        self.key_bits = key_bits
        self.radix_bits = radix_bits
        bits = []
        if mode != "long":
            bits.append("short-msg")
        if not fused and mode == "long":
            bits.append("unfused")
        if local != "merge":
            bits.append("simulated-compute")
        if strategy != "head":
            bits.append(strategy)
        self.name = "smart" + ("[" + ",".join(bits) + "]" if bits else "")

    # -- the algorithm ----------------------------------------------------

    def _run_parts(self, machine: Machine, parts: List[np.ndarray]) -> List[np.ndarray]:
        P = machine.P
        n = parts[0].size
        N = P * n
        costs = machine.spec.compute
        if P == 1:
            parts = [radix_sort(parts[0], key_bits=self.key_bits, radix_bits=self.radix_bits)]
            machine.charge_compute(
                0, "local_sort", n, costs.radix_pass,
                passes=num_passes(self.key_bits, self.radix_bits),
            )
            return parts

        schedule = build_schedule(N, P, strategy=self.strategy)
        lgn = ilog2(n)

        # First lg n stages: one local radix sort per processor, alternating
        # direction (processor r produces run r of Lemma 6's stage input).
        passes = num_passes(self.key_bits, self.radix_bits)
        for r in range(P):
            parts[r] = radix_sort(
                parts[r],
                ascending=(r % 2 == 0),
                key_bits=self.key_bits,
                radix_bits=self.radix_bits,
            )
            machine.charge_compute(r, "local_sort", n, costs.radix_pass, passes=passes)

        # Last lg P stages: remap, run lg n steps locally, repeat.
        layout = schedule.initial_layout
        for phase in schedule.phases:
            parts = perform_remap(
                machine, parts, layout, phase.layout,
                mode=self.mode, fused=(self.fused and self.mode == "long"),
            )
            layout = phase.layout
            if self.local == "simulate":
                self._simulate_phase(machine, parts, layout, phase)
            else:
                self._merge_phase(machine, parts, layout, phase, lgn)
        return parts

    # -- local computation engines -----------------------------------------

    def _simulate_phase(
        self,
        machine: Machine,
        parts: List[np.ndarray],
        layout: BitFieldLayout,
        phase: RemapPhase,
    ) -> None:
        """Execute the phase's columns by direct compare-exchange."""
        costs = machine.spec.compute
        for r in range(machine.P):
            absaddr = layout.absolute_addresses(r)
            for stage, step in phase.columns:
                lb = layout.local_bit_of_abs_bit(step - 1)
                compare_exchange_local(parts[r], absaddr, stage, step, lb)
            machine.charge_compute(
                r, "compare_exchange", parts[r].size, costs.compare_exchange,
                passes=len(phase.columns),
            )

    def _merge_phase(
        self,
        machine: Machine,
        parts: List[np.ndarray],
        layout: BitFieldLayout,
        phase: RemapPhase,
        lgn: int,
    ) -> None:
        """Execute the phase with Chapter 4's merge-based computation."""
        N, P = layout.N, layout.P
        stage0, step0 = phase.columns[0]
        params = smart_params(N, P, stage0, step0)
        canonical = len(phase.columns) == (
            params.s if params.is_last else lgn
        )
        if not canonical:
            # Truncated phase (tail/middle placements): fall back to
            # simulation for this phase only.
            self._simulate_phase(machine, parts, layout, phase)
            return
        costs = machine.spec.compute
        # One linear-work local sort per phase (§4.3, Figure 4.5): for the
        # usual case — an initial inside remap followed by crossing remaps —
        # the whole phase reduces to sorting the local data once.
        for r in range(machine.P):
            parts[r] = self._merge_local(parts[r], layout, params, lgn, r)
            machine.charge_compute(r, "merge", parts[r].size, costs.merge)

    @staticmethod
    def _merge_local(
        data: np.ndarray,
        layout: BitFieldLayout,
        params: SmartParams,
        lgn: int,
        rank: int,
    ) -> np.ndarray:
        """One processor's merge-based phase (Theorems 2/3)."""
        a, b = params.a, params.b
        stage = lgn + params.k
        base_abs = int(layout.to_absolute(rank, 0))
        if params.is_last:
            # Final blocked phase: n / 2**s ascending bitonic runs of
            # length 2**s (the last stage's direction bit is always 0).
            runs = data.reshape(-1, 1 << params.s)
            return batched_bitonic_merge(runs, True, axis=1).reshape(-1)
        if not params.is_crossing:
            # Inside phase: one bitonic sequence, ends fully sorted
            # (Theorem 2); direction from the stage's direction bit, which
            # is fixed across the processor.
            asc = bit_of(base_abs, stage) == 0
            return sort_bitonic(data, ascending=bool(asc))
        # Crossing phase (Theorem 3): rows finish stage lg n + k, columns
        # open stage lg n + k + 1.
        m = data.reshape(1 << b, 1 << a)
        # Row directions: the stage's direction bit (lg n + k) is the top
        # bit of the B field, i.e. of the row index.
        rows = np.arange(1 << b)
        asc_rows = (rows >> (b - 1)) & 1 == 0
        m = batched_bitonic_merge(m, asc_rows, axis=1)
        # Column direction: bit lg n + k + 1 of the absolute address, fixed
        # across the processor (it lives in the A field).
        asc_col = bit_of(base_abs, stage + 1) == 0
        m = batched_bitonic_merge(m, bool(asc_col), axis=0)
        return m.reshape(-1)
