"""Plain-text renderings of the paper's diagrams.

:func:`render_network` draws the bitonic sorting network column by column
(Figure 2.4); :func:`render_communication` shades each compare-exchange
step local/remote under a given data layout (Figures 2.5/2.6);
:func:`render_schedule_map` draws a remap schedule across the network's
communication region (Figure 3.3).  All output is ASCII so it works in
docstrings, terminals and test assertions alike.
"""

from repro.viz.gantt import render_gantt
from repro.viz.network import (
    render_communication,
    render_network,
    render_schedule_map,
    step_locality,
)

__all__ = [
    "render_network",
    "render_communication",
    "render_schedule_map",
    "render_gantt",
    "step_locality",
]
