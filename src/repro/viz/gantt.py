"""ASCII Gantt charts of simulated runs.

Renders each processor's timeline as a row of time buckets, each bucket
labelled with the category that dominated it:

========  ==========================
``S``     local_sort (radix)
``m``     merge phases
``c``     compare-exchange simulation
``a``     address computation
``p`` / ``u``  pack / unpack
``t``     transfer (wire time)
``.``     waiting / idle
========  ==========================

Useful for *seeing* the paper's claims: the smart sort's timeline is a tight
alternation of sort and transfer bars with little idle; the short-message
version is one long transfer smear; load imbalance in sample sort shows up
as one long row and many dotted ones.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.machine.processor import TraceEvent

__all__ = ["render_gantt", "CATEGORY_GLYPHS"]

CATEGORY_GLYPHS: Dict[str, str] = {
    "local_sort": "S",
    "merge": "m",
    "compare_exchange": "c",
    "address": "a",
    "pack": "p",
    "unpack": "u",
    "transfer": "t",
    "retransmit": "r",
    "wait": ".",
}


def render_gantt(
    traces: Sequence[List[TraceEvent]],
    width: int = 100,
    legend: bool = True,
) -> str:
    """Render per-processor traces into ``width`` time buckets.

    Each bucket shows the glyph of the category with the most busy time in
    that bucket (idle wins only if nothing else happened).
    """
    if not traces:
        raise ConfigurationError("no traces to render (run with trace=True)")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    horizon = max((ev[1] for tr in traces for ev in tr), default=0.0)
    if horizon <= 0:
        raise ConfigurationError("traces are empty")
    bucket = horizon / width
    lines = [f"0 us {'-' * max(width - 12, 1)} {horizon:,.0f} us"]
    for rank, tr in enumerate(traces):
        weights = [dict() for _ in range(width)]  # type: List[Dict[str, float]]
        for start, end, cat in tr:
            b0 = min(int(start / bucket), width - 1)
            b1 = min(int(end / bucket - 1e-12), width - 1)
            for b in range(b0, b1 + 1):
                lo = max(start, b * bucket)
                hi = min(end, (b + 1) * bucket)
                if hi > lo:
                    weights[b][cat] = weights[b].get(cat, 0.0) + (hi - lo)
        row = []
        for w in weights:
            if not w:
                row.append(" ")
                continue
            busy = {c: t for c, t in w.items() if c != "wait"}
            top = max(busy, key=busy.get) if busy else "wait"
            row.append(CATEGORY_GLYPHS.get(top, "?"))
        lines.append(f"P{rank:<3} {''.join(row)}")
    if legend:
        lines.append(
            "      " + "  ".join(f"{g}={c}" for c, g in CATEGORY_GLYPHS.items())
        )
    return "\n".join(lines)
