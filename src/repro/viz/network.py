"""ASCII renderings of the bitonic sorting network and its layouts.

The paper communicates its core ideas through diagrams: the butterfly
structure of the network (Figure 2.4), which arcs are remote under the
blocked/cyclic layouts (Figures 2.5/2.6), and where the smart schedule
remaps (Figure 3.3).  These functions reproduce those diagrams as text.

A network column is drawn as one character per row:

* ``|`` — this row is not compared at this step (never happens in a full
  bitonic network; kept for partial renderings);
* ``m`` / ``M`` — the row receives the minimum / maximum of its pair;
* upper-case (``M``) vs lower-case encodes min/max exactly as the paper's
  shaded/unshaded nodes do.

In communication renderings, a step's marker is replaced by ``*`` when the
compared pair spans two processors (a remote arc — the paper's black arcs).
"""

from __future__ import annotations

from typing import List, Optional

from repro.layouts.base import BitFieldLayout
from repro.layouts.schedule import RemapSchedule
from repro.network.addressing import compare_bit, is_ascending, network_columns
from repro.utils.bits import bit_of, ilog2
from repro.utils.validation import require_power_of_two

__all__ = [
    "render_network",
    "render_communication",
    "render_schedule_map",
    "step_locality",
]


def _column_markers(N: int, stage: int, step: int) -> List[str]:
    """Per-row min/max markers for one network column."""
    cb = compare_bit(step)
    out = []
    for r in range(N):
        asc = bool(is_ascending(r, stage))
        low = bit_of(r, cb) == 0
        takes_min = asc == low
        out.append("m" if takes_min else "M")
    return out


def step_locality(layout: BitFieldLayout, step: int) -> bool:
    """True iff ``step`` executes without communication under ``layout``
    (the compared absolute bit is a local-address bit)."""
    return layout.step_is_local(step)


def render_network(N: int, max_rows: int = 32) -> str:
    """Draw the full bitonic sorting network for ``N`` rows (Figure 2.4).

    Columns are labelled ``stage.step``; each column shows, for every row,
    whether it keeps the minimum (``m``) or maximum (``M``) of its pair.
    """
    require_power_of_two(N, "N")
    if N > max_rows:
        raise ValueError(
            f"refusing to draw {N} rows (> {max_rows}); pass max_rows to override"
        )
    cols = list(network_columns(N))
    header = ["row"] + [f"{s}.{j}" for s, j in cols]
    widths = [max(3, len(h)) for h in header]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    markers = [_column_markers(N, s, j) for s, j in cols]
    for r in range(N):
        cells = [str(r)] + [m[r] for m in markers]
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def render_communication(
    layout: BitFieldLayout, max_rows: int = 32
) -> str:
    """Draw which steps are local (``.``) vs remote (``*``) under a fixed
    ``layout``, one cell per (stage, step) — the content of Figures 2.5/2.6
    reduced to its communication pattern.

    Each row of the rendering is one stage; remote steps are exactly those
    comparing an absolute bit held in the processor part of the address.
    """
    N = layout.N
    lgN = ilog2(N)
    lines = [
        f"{layout.name} layout, N={N}, P={layout.P}  "
        f"(. = local step, * = remote step)"
    ]
    lines.append("stage  steps (stage .. 1)")
    for stage in range(1, lgN + 1):
        cells = []
        for step in range(stage, 0, -1):
            cells.append("." if step_locality(layout, step) else "*")
        lines.append(f"{stage:>5}  {' '.join(cells)}")
    remote = sum(
        0 if step_locality(layout, step) else 1
        for stage in range(1, lgN + 1)
        for step in range(stage, 0, -1)
    )
    lines.append(f"remote steps: {remote} of {lgN * (lgN + 1) // 2}")
    return "\n".join(lines)


def render_schedule_map(schedule: RemapSchedule) -> str:
    """Draw a remap schedule across the communication region (Figure 3.3):
    one row per stage, one cell per step, with ``R<i>`` marking the column
    at which remap ``i`` occurs and ``.`` marking locally executed steps."""
    lgN = ilog2(schedule.N)
    lgn = ilog2(schedule.N // schedule.P)
    remap_at = {}
    for i, ph in enumerate(schedule.phases):
        remap_at[ph.columns[0]] = i
    lines = [
        f"smart schedule map, N={schedule.N}, P={schedule.P} "
        f"({schedule.num_remaps} remaps; stages 1..{lgn} run under the "
        f"initial blocked layout)"
    ]
    for stage in range(lgn + 1, lgN + 1):
        cells = []
        for step in range(stage, 0, -1):
            i = remap_at.get((stage, step))
            cells.append(f"R{i}" if i is not None else " .")
        lines.append(f"stage {stage:>2}: " + " ".join(cells))
    return "\n".join(lines)
