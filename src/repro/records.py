"""Sorting records (key + payload) with any of the parallel sorts.

The paper's algorithms sort bare 32-bit keys.  Real workloads attach a
payload to each key; the classic coarse-grained technique is to sort
``(key, origin-index)`` composites and gather the payloads afterwards,
which keeps the network kernels operating on flat integer arrays and
charges communication honestly for the wider elements (8 bytes instead
of 4 — the composite is what actually travels).

:func:`sort_records` packs each 31-bit key and its origin index into one
``uint64`` (key in the high half), runs the chosen algorithm on the
composites — unique indices make the composite order total, so ties on the
key are broken stably by origin position — and returns the sorted keys,
the payloads in key order, and the run's :class:`~repro.machine.metrics.
RunStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, VerificationError
from repro.machine.metrics import RunStats
from repro.sorts.base import ParallelSort

__all__ = ["RecordSortResult", "sort_records"]

#: Bits reserved for the origin index in the composite.
_INDEX_BITS = 32
_INDEX_MASK = (1 << _INDEX_BITS) - 1


@dataclass
class RecordSortResult:
    """Outcome of one record sort."""

    algorithm: str
    sorted_keys: np.ndarray
    sorted_values: np.ndarray
    stats: RunStats


def sort_records(
    algorithm: ParallelSort,
    keys: np.ndarray,
    values: np.ndarray,
    P: int,
    verify: bool = False,
) -> RecordSortResult:
    """Sort ``values`` by ``keys`` on ``P`` simulated processors.

    Parameters
    ----------
    algorithm:
        Any configured :class:`~repro.sorts.base.ParallelSort`.  A copy is
        reconfigured for 63-bit composites (the key occupies bits 32–62) and
        8-byte communication accounting.
    keys:
        Unsigned integers below ``2**31`` (the paper's key range), one per
        record.
    values:
        Payload array; ``values[i]`` belongs to ``keys[i]``.  Any dtype and
        trailing shape — only its leading axis must match ``keys``.
    verify:
        Re-check end to end that keys come out sorted and each payload
        still sits next to its key.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.ndim != 1:
        raise ConfigurationError(f"keys must be 1-D, got {keys.ndim}-D")
    if values.shape[:1] != keys.shape:
        raise ConfigurationError(
            f"values leading axis {values.shape[:1]} does not match "
            f"{keys.size} keys"
        )
    if not np.issubdtype(keys.dtype, np.integer):
        raise ConfigurationError(f"keys must be integers, got {keys.dtype}")
    if keys.size and int(keys.max()) >= (1 << 31):
        raise ConfigurationError("keys must be below 2**31 (the paper's range)")
    if keys.size >= (1 << _INDEX_BITS):
        raise ConfigurationError(
            f"record sort supports up to 2**{_INDEX_BITS} records"
        )

    composite = (keys.astype(np.uint64) << np.uint64(_INDEX_BITS)) | np.arange(
        keys.size, dtype=np.uint64
    )

    # Reconfigure a copy of the algorithm for the wider element: the
    # composite needs 63 significant bits, and each transferred element is
    # 8 bytes on the wire.
    algo = _with_record_config(algorithm)

    result = algo.run(composite, P)
    sorted_comp = result.sorted_keys
    out_keys = (sorted_comp >> np.uint64(_INDEX_BITS)).astype(keys.dtype)
    origin = (sorted_comp & np.uint64(_INDEX_MASK)).astype(np.int64)
    out_values = values[origin]

    if verify:
        if not np.array_equal(out_keys, np.sort(keys, kind="stable")):
            raise VerificationError(f"{algo.name}: record keys not sorted")
        # Each output key must still carry the payload it started with.
        expect_origin = np.argsort(keys, kind="stable")
        if not np.array_equal(origin, expect_origin):
            raise VerificationError(
                f"{algo.name}: payloads detached from their keys"
            )

    return RecordSortResult(
        algorithm=algo.name,
        sorted_keys=out_keys,
        sorted_values=out_values,
        stats=result.stats,
    )


def _with_record_config(algorithm: ParallelSort) -> ParallelSort:
    """A shallow copy of ``algorithm`` configured for 63-bit composites and
    8-byte elements."""
    import copy

    algo = copy.copy(algorithm)
    algo.spec = replace(algorithm.spec, key_bytes=8)
    if hasattr(algo, "key_bits"):
        algo.key_bits = 63
    return algo
