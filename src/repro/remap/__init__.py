"""Remap implementation: moving data between two layouts (§3.3).

A remap has three phases (Figure 3.17): *pack* elements bound for the same
destination into one long message, *transfer* the long messages, and
*unpack* each received message into its slots on the destination processor.
:mod:`repro.remap.masks` derives the pack/unpack masks of §3.3.1 from the
two layouts' bit patterns; :mod:`repro.remap.plan` turns them into concrete
vectorized gather/scatter plans; :mod:`repro.remap.cache` memoizes those
plans by layout value so repeated sorts and SPMD phases never rebuild the
same index algebra; :mod:`repro.remap.exchange` executes a remap on the
simulated machine in long- or short-message mode, with or without
pack/unpack fused into the local computation (§4.3);
:mod:`repro.remap.groups` derives the Lemma-4 communication groups that
let the executable backends scope each exchange to ``2**N_BitsChanged``
ranks instead of the world.
"""

from repro.remap.masks import changed_local_bits, pack_mask, unpack_mask
from repro.remap.groups import (
    destination_procs,
    remap_group,
    remap_group_partition,
)
from repro.remap.plan import RemapPlan, build_remap_plan
from repro.remap.cache import PLAN_CACHE, RemapPlanCache, cached_remap_plan
from repro.remap.exchange import perform_remap

__all__ = [
    "changed_local_bits",
    "pack_mask",
    "unpack_mask",
    "destination_procs",
    "remap_group",
    "remap_group_partition",
    "RemapPlan",
    "build_remap_plan",
    "RemapPlanCache",
    "cached_remap_plan",
    "PLAN_CACHE",
    "perform_remap",
]
