"""Pack and unpack masks (§3.3.1, Figures 3.18–3.21).

The *pack mask* marks, in the source layout's local address, the bits that
become part of the processor number under the destination layout — the
"shaded" positions of Figure 3.18.  The values of those bits give the
destination processor's offset within its communication group (Lemma 4);
the remaining ("unshaded") bits enumerate the element's position inside the
long message.  The *unpack mask* is the same construction with the two
layouts' roles exchanged: the destination layout's local bits that were
processor bits at the source, whose values identify the sender and whose
complement places each received element (Figure 3.19).
"""

from __future__ import annotations

from typing import Tuple

from repro.layouts.base import BitFieldLayout
from repro.errors import LayoutError

__all__ = ["changed_local_bits", "pack_mask", "unpack_mask"]


def _check_pair(old: BitFieldLayout, new: BitFieldLayout) -> None:
    if (old.N, old.P) != (new.N, new.P):
        raise LayoutError(
            f"layouts describe different machines: "
            f"({old.N},{old.P}) vs ({new.N},{new.P})"
        )


def changed_local_bits(old: BitFieldLayout, new: BitFieldLayout) -> Tuple[int, ...]:
    """Positions (in ``old``'s local address, LSB = 0) whose absolute-address
    bits move into the processor part under ``new`` — the shaded positions
    of the pack mask.  Its length is the remap's ``N_BitsChanged``."""
    _check_pair(old, new)
    moved = old.local_source_bits & new.proc_source_bits
    return tuple(sorted(old.local_bit_of_abs_bit(b) for b in moved))


def pack_mask(old: BitFieldLayout, new: BitFieldLayout) -> str:
    """The pack mask as a string over ``old``'s local address, MSB first:
    ``S`` for a shaded (destination-offset) bit, ``.`` for an unshaded
    (message-position) bit — Figure 3.18."""
    shaded = set(changed_local_bits(old, new))
    return "".join(
        "S" if b in shaded else "." for b in range(old.lgn - 1, -1, -1)
    )


def unpack_mask(old: BitFieldLayout, new: BitFieldLayout) -> str:
    """The unpack mask over ``new``'s local address, MSB first: ``S`` for a
    bit whose absolute-address bit was a processor bit under ``old`` (it
    identifies the sender), ``.`` otherwise — Figure 3.19."""
    return pack_mask(new, old)
