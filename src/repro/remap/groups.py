"""Communication groups of a remap (Lemma 4).

A remap ``old -> new`` never shuffles data across the whole machine: an
element on processor ``r`` can only land on processors whose number agrees
with ``r`` on every bit that *stays* a processor bit across the remap.
The free bits are exactly the ``N_BitsChanged`` positions fed by bits that
cross between the local and processor parts, so the machine partitions
into groups of ``2**N_BitsChanged`` processors that exchange data only
among themselves — Lemma 4.

This module derives that partition from the layout algebra alone (no
per-element work): :func:`destination_procs` enumerates, in
``O(2**N_BitsChanged)`` integer operations, the processors rank ``r`` can
send to, and :func:`remap_group_partition` closes the send relation into
the group partition with a union-find over the ``P`` ranks.  Every rank of
an SPMD world computes the same partition independently — pure index
algebra, no coordination — which is what lets the executable backends
scope their per-stage ``alltoallv`` barriers and descriptor scans to the
group instead of the world (:meth:`repro.runtime.api.Comm.group_alltoallv`).

Partitions are memoized per layout pair (layouts hash by value), so the
cost is paid once per ``(N, P, schedule phase)`` shape for the life of the
process, exactly like :mod:`repro.remap.cache` does for plans.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, List, Tuple

from repro.errors import LayoutError
from repro.layouts.base import BitFieldLayout

__all__ = ["destination_procs", "remap_group_partition", "remap_group"]


def _check_pair(old: BitFieldLayout, new: BitFieldLayout) -> None:
    if (old.N, old.P) != (new.N, new.P):
        raise LayoutError(
            f"layouts describe different machines: "
            f"({old.N},{old.P}) vs ({new.N},{new.P})"
        )


def destination_procs(
    old: BitFieldLayout, new: BitFieldLayout, rank: int
) -> FrozenSet[int]:
    """Processor numbers rank ``rank`` can send to across ``old -> new``.

    Each destination's processor number takes its bits from the absolute
    address: bits that are processor bits under *both* layouts are pinned
    by ``rank``; bits arriving from ``old``'s local part are free and
    enumerate the ``2**N_BitsChanged`` members of the destination span.
    """
    _check_pair(old, new)
    if not 0 <= rank < old.P:
        raise LayoutError(f"rank {rank} out of range [0, {old.P})")
    fixed = 0
    free_positions: List[int] = []
    for b in new.proc_source_bits:
        j = new.proc_bit_of_abs_bit(b)
        i = old.proc_bit_of_abs_bit(b)
        if i is not None:
            fixed |= ((rank >> i) & 1) << j
        else:
            free_positions.append(j)
    dests = set()
    for combo in range(1 << len(free_positions)):
        d = fixed
        for t, j in enumerate(free_positions):
            d |= ((combo >> t) & 1) << j
        dests.add(d)
    return frozenset(dests)


@lru_cache(maxsize=512)
def remap_group_partition(
    old: BitFieldLayout, new: BitFieldLayout
) -> Tuple[Tuple[int, ...], ...]:
    """The communication-group partition of ``old -> new``: disjoint,
    sorted tuples of ranks covering ``0 .. P-1``, where data moves only
    within a tuple.

    The closure of the send relation (union-find over send edges; receive
    edges are the same relation seen from the other side, so they add
    nothing).  For the paper's bit-field remaps every group has exactly
    ``2**N_BitsChanged`` members (Lemma 4); the construction itself does
    not assume that — it is checked by the tests, not imposed here.
    """
    _check_pair(old, new)
    P = old.P
    parent = list(range(P))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for r in range(P):
        root_r = find(r)
        for d in destination_procs(old, new, r):
            root_d = find(d)
            if root_d != root_r:
                parent[root_d] = root_r
    groups = {}
    for r in range(P):
        groups.setdefault(find(r), []).append(r)
    return tuple(tuple(g) for g in sorted(groups.values()))


def remap_group(
    old: BitFieldLayout, new: BitFieldLayout, rank: int
) -> Tuple[int, ...]:
    """The communication group containing ``rank`` — the only ranks it
    exchanges data with (in either direction) across ``old -> new``."""
    for group in remap_group_partition(old, new):
        if rank in group:
            return group
    raise LayoutError(f"rank {rank} out of range [0, {old.P})")
