"""Memoized remap plans.

A :class:`~repro.remap.plan.RemapPlan` is pure index algebra: for a given
``(old layout, new layout, rank)`` triple it is always the same arrays.
Yet the executors rebuilt it on every call — every simulated sort, every
SPMD phase, every repetition of a benchmark paid the O(n) address
computation and the per-call ``sorted()`` of the send lists again.

:class:`RemapPlanCache` memoizes plans by value: the key is
``(N, P, old's bit assignment, new's bit assignment, rank)`` — via
:class:`~repro.layouts.base.BitFieldLayout`'s value hash — so two
schedules that derive *equal* layouts share plans even across runs and
backends.  The cached plan also carries its derived views
(``send_sorted``, ``recv_concat``) computed at most once.

The default process-wide cache is what :func:`cached_remap_plan` uses;
both :func:`repro.remap.exchange.perform_remap` and
:func:`repro.runtime.bitonic_spmd.spmd_bitonic_sort` go through it.
Simulated *time accounting is unchanged*: the simulator still charges the
``address`` computation per remap — the cache removes redundant host work,
not modeled work (the paper's nodes, too, compute each mask once and reuse
it; §3.3.1).

Plans hold index arrays of the partition size, so a cache entry costs
O(n) memory; :meth:`RemapPlanCache.clear` releases everything, and the
eviction bound keeps long sweeps over many shapes from accumulating
unboundedly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Tuple

from repro.layouts.base import BitFieldLayout
from repro.remap.plan import RemapPlan, build_remap_plan

__all__ = ["RemapPlanCache", "cached_remap_plan", "PLAN_CACHE"]


class RemapPlanCache:
    """An LRU-bounded, thread-safe memo of remap plans.

    Thread safety matters: the threads backend runs every rank of an SPMD
    world through this cache concurrently (which is also what makes it
    effective there — ``P`` ranks crossing the same phase need ``P``
    distinct plans, each built once ever instead of once per run).
    """

    def __init__(self, max_entries: int = 4096):
        self._lock = threading.Lock()
        self._plans: "OrderedDict[Tuple, RemapPlan]" = OrderedDict()
        self._max = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, old: BitFieldLayout, new: BitFieldLayout, rank: int) -> RemapPlan:
        """The plan for ``rank`` across ``old -> new``, built on first use."""
        key = (old, new, rank)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        # Build outside the lock: construction is the expensive part, and
        # concurrent ranks miss on *different* keys almost always.  A rare
        # duplicate build for the same key is benign (plans are immutable).
        plan = build_remap_plan(old, new, rank)
        # Materialize the derived views once, while the plan is cold.
        plan.send_sorted, plan.recv_concat  # noqa: B018 — priming caches
        plan.send_concat_src, plan.send_extents  # noqa: B018 — fused views
        with self._lock:
            self._plans[key] = plan
            while len(self._plans) > self._max:
                self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: The process-wide default cache.
PLAN_CACHE = RemapPlanCache()


def cached_remap_plan(
    old: BitFieldLayout, new: BitFieldLayout, rank: int
) -> RemapPlan:
    """The memoized form of :func:`~repro.remap.plan.build_remap_plan`."""
    return PLAN_CACHE.get(old, new, rank)
