"""Concrete remap plans: vectorized gather/scatter index sets.

A :class:`RemapPlan` is the executable form of the pack/unpack masks for one
processor and one layout pair: which local slots stay (and where they land),
and, per destination, which slots are gathered into the outgoing long
message and where the corresponding incoming message scatters.

Message element order is *destination-local-address order*, so that the
receiver's scatter indices are simply the sorted destination local addresses
of the elements arriving from a given sender — derivable on either side from
the layout algebra alone, exactly as the mask construction of §3.3.1
promises (no per-element headers travel with the data).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Tuple

import numpy as np

from repro.errors import LayoutError
from repro.layouts.base import BitFieldLayout

__all__ = ["RemapPlan", "build_remap_plan"]


@dataclass(frozen=True)
class RemapPlan:
    """Gather/scatter plan for one processor across one remap.

    Attributes
    ----------
    rank:
        The processor this plan belongs to.
    keep_src, keep_dst:
        Local slots that stay on this processor: element at old local index
        ``keep_src[i]`` moves to new local index ``keep_dst[i]``.
    send:
        ``dest rank -> old local indices``, in message order (ascending
        destination local address).
    recv:
        ``source rank -> new local indices``, aligned with the sender's
        message order, so ``new_data[recv[src]] = payload``.
    """

    rank: int
    keep_src: np.ndarray
    keep_dst: np.ndarray
    send: Dict[int, np.ndarray]
    recv: Dict[int, np.ndarray]

    @property
    def elements_sent(self) -> int:
        return sum(idx.size for idx in self.send.values())

    @property
    def num_messages(self) -> int:
        return len(self.send)

    # Derived views, computed once per plan.  ``cached_property`` writes to
    # ``__dict__`` directly, which a frozen dataclass permits; plans shared
    # through :mod:`repro.remap.cache` amortize these across every caller.

    @cached_property
    def send_sorted(self) -> Tuple[Tuple[int, np.ndarray], ...]:
        """``send.items()`` in ascending destination order — the
        deterministic emission order every executor wants, sorted once."""
        return tuple(sorted(self.send.items()))

    @cached_property
    def recv_sorted(self) -> Tuple[Tuple[int, np.ndarray], ...]:
        """``recv.items()`` in ascending source order."""
        return tuple(sorted(self.recv.items()))

    @cached_property
    def send_concat_src(self) -> np.ndarray:
        """All outgoing gather indices, concatenated in ascending
        destination order — one fancy-gather through this vector packs
        every departing element in a single pass, which is what lets a
        zero-copy transport write them straight into its send window
        (the executable face of the §4.3 fused pack)."""
        if not self.send:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([idx for _, idx in self.send_sorted])

    @cached_property
    def send_extents(self) -> Tuple[Tuple[int, int, int], ...]:
        """``(destination, element offset, element count)`` per outgoing
        message, aligned with :attr:`send_concat_src`: the slice
        ``send_concat_src[offset : offset + count]`` gathers the message
        bound for ``destination``."""
        out = []
        offset = 0
        for q, idx in self.send_sorted:
            out.append((q, offset, int(idx.size)))
            offset += int(idx.size)
        return tuple(out)

    @cached_property
    def recv_concat(self) -> np.ndarray:
        """All incoming scatter indices, concatenated in ascending source
        order — lets an executor place every arrival with one fancy-index
        assignment once it concatenates the payloads in the same order."""
        if not self.recv:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([idx for _, idx in self.recv_sorted])


def build_remap_plan(
    old: BitFieldLayout, new: BitFieldLayout, rank: int
) -> RemapPlan:
    """Build the remap plan for ``rank`` moving from ``old`` to ``new``.

    Pure layout algebra — O(n) vectorized — mirroring what each node of a
    real machine computes before packing (charged as the ``address``
    category by the callers).
    """
    if (old.N, old.P) != (new.N, new.P):
        raise LayoutError(
            f"layouts describe different machines: "
            f"({old.N},{old.P}) vs ({new.N},{new.P})"
        )
    n = old.n
    local = np.arange(n, dtype=np.int64)
    # Outgoing view: where does each of my current slots go?
    abs_out = old.to_absolute(np.int64(rank), local)
    dproc = new.proc_of(abs_out)
    dlocal = new.local_of(abs_out)
    keep_mask = dproc == rank
    keep_src = local[keep_mask]
    keep_dst = dlocal[keep_mask]
    send: Dict[int, np.ndarray] = {}
    out_mask = ~keep_mask
    for q in np.unique(dproc[out_mask]):
        sel = local[dproc == q]
        order = np.argsort(dlocal[dproc == q], kind="stable")
        send[int(q)] = sel[order]
    # Incoming view: which slots of my new partition arrive from whom?
    abs_in = new.to_absolute(np.int64(rank), local)
    sproc = old.proc_of(abs_in)
    recv: Dict[int, np.ndarray] = {}
    in_mask = sproc != rank
    for q in np.unique(sproc[in_mask]):
        # Ascending destination local address == the sender's message order.
        recv[int(q)] = local[sproc == q]
    return RemapPlan(
        rank=rank, keep_src=keep_src, keep_dst=keep_dst, send=send, recv=recv
    )
