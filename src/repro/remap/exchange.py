"""Executing a remap on the simulated machine.

:func:`perform_remap` moves every processor's partition from one layout to
another: build the per-processor :class:`~repro.remap.plan.RemapPlan`
(charged as ``address`` time), gather outgoing long messages (``pack``),
exchange them through the machine (``transfer``, in long- or short-message
mode) and scatter arrivals into the new partitions (``unpack``).

When ``fused=True`` the pack and unpack passes are not charged separately:
the caller asserts that its local computation wrote directly through the
pack mask and will read merged runs directly from the receive buffers
(§4.3), so only the small per-element fusion surcharge applies — this is
what separates the fully optimized Smart sort of Table 5.1 from the
unfused long-message version of Tables 5.3/5.4.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CommunicationError
from repro.layouts.base import BitFieldLayout
from repro.machine.message import Message
from repro.machine.simulator import Machine
from repro.remap.cache import cached_remap_plan
from repro.remap.plan import RemapPlan

__all__ = ["chunk_plan", "perform_remap"]


def chunk_plan(plan: RemapPlan, chunks: int) -> "tuple[RemapPlan, ...]":
    """Split a remap plan's exchange into ``chunks`` positional sub-plans.

    Sub-plan ``c`` carries, for every pairwise message of ``plan``, the
    slice ``idx[(size * c) // K : (size * (c + 1)) // K]`` of that
    message's gather (send) and scatter (recv) indices.  Because a matched
    send/recv pair has identical element counts on both sides and message
    order is destination-local-address order, this boundary rule is pure
    per-pair algebra — sender and receiver agree on every chunk's extent
    without exchanging a byte, the same property that lets the full plans
    travel headerless (§3.3.1).  Pairs whose slice is empty are omitted
    from the sub-plan, so no zero-length messages are posted.

    The union of the sub-plans' messages is exactly ``plan``'s messages,
    element order preserved; the kept elements (``keep_src``/``keep_dst``)
    are deliberately *not* chunked — sub-plans describe only the exchange,
    and the caller performs the keep-move once (sub-plan keeps are empty).
    This is what the overlapped remap schedule pipelines on: the unpack of
    chunk ``c`` overlaps the in-flight transfer of chunk ``c + 1``.

    Results are memoized on the plan (plans are shared through
    :mod:`repro.remap.cache`, so every rank's schedule amortizes the
    slicing).
    """
    K = int(chunks)
    if K <= 1:
        return (plan,)
    key = f"_chunks_{K}"
    cached = plan.__dict__.get(key)
    if cached is not None:
        return cached
    empty = np.empty(0, dtype=np.int64)
    subs = []
    for c in range(K):
        send = {}
        for q, idx in plan.send_sorted:
            lo = (idx.size * c) // K
            hi = (idx.size * (c + 1)) // K
            if hi > lo:
                send[q] = idx[lo:hi]
        recv = {}
        for p, idx in plan.recv_sorted:
            lo = (idx.size * c) // K
            hi = (idx.size * (c + 1)) // K
            if hi > lo:
                recv[p] = idx[lo:hi]
        subs.append(
            RemapPlan(
                rank=plan.rank,
                keep_src=empty,
                keep_dst=empty,
                send=send,
                recv=recv,
            )
        )
    result = tuple(subs)
    plan.__dict__[key] = result
    return result


def perform_remap(
    machine: Machine,
    parts: Sequence[np.ndarray],
    old: BitFieldLayout,
    new: BitFieldLayout,
    mode: str = "long",
    fused: bool = False,
    plans: Optional[Sequence[RemapPlan]] = None,
    label: Optional[str] = None,
) -> List[np.ndarray]:
    """Remap all partitions from layout ``old`` to layout ``new``.

    Parameters
    ----------
    machine:
        The simulated machine (supplies time accounting and delivery).
    parts:
        One array per processor, each of length ``n``, in ``old``'s
        local-address order.
    mode:
        ``"long"`` (packed bulk messages) or ``"short"`` (element-at-a-time,
        no pack/unpack phases — §3.3).
    fused:
        Charge the §4.3 fused pack/unpack accounting instead of separate
        pack and unpack passes (long mode only).
    plans:
        Precomputed plans (one per rank); when given, the ``address``
        computation is assumed already charged by the caller.
    label:
        Phase name for fault-injection error reports (defaults to the
        machine's remap counter); see :class:`repro.faults.FaultInjector`.

    Returns the new partitions in ``new``'s local-address order.
    """
    P = machine.P
    if len(parts) != P:
        raise CommunicationError(f"got {len(parts)} partitions for {P} processors")
    if fused and mode == "short":
        raise CommunicationError("fused pack/unpack only applies to long messages")
    n = old.n
    costs = machine.spec.compute

    if plans is None:
        # Memoized across runs; the simulated machine still charges every
        # processor the full ``address`` computation per remap (the cache
        # removes redundant *host* work, not modeled work).
        plans = [cached_remap_plan(old, new, r) for r in range(P)]
        for r in range(P):
            machine.charge_compute(r, "address", n, costs.address)

    messages: List[Message] = []
    new_parts: List[np.ndarray] = []
    for r in range(P):
        part = np.asarray(parts[r])
        if part.size != n:
            raise CommunicationError(
                f"partition {r} has {part.size} keys, expected {n}"
            )
        plan = plans[r]
        sent = plan.elements_sent
        if mode == "long":
            if fused:
                machine.charge_compute(r, "pack", n, costs.fused_pack)
            else:
                machine.charge_compute(r, "pack", sent, costs.pack, working_set=n)
        for dst, idx in plan.send_sorted:
            messages.append(Message(src=r, dst=dst, payload=part[idx]))
        buf = np.empty_like(part)
        buf[plan.keep_dst] = part[plan.keep_src]
        new_parts.append(buf)

    delivered = machine.exchange(messages, mode=mode, label=label)

    for r in range(P):
        plan = plans[r]
        arrived = delivered.get(r, [])
        got = 0
        for msg in arrived:
            scatter = plan.recv.get(msg.src)
            if scatter is None or scatter.size != msg.num_elements:
                raise CommunicationError(
                    f"processor {r} received an unexpected message from "
                    f"{msg.src} ({msg.num_elements} elements)"
                )
            new_parts[r][scatter] = msg.payload
            got += msg.num_elements
        expected = sum(idx.size for idx in plan.recv.values())
        if got != expected:
            raise CommunicationError(
                f"processor {r} received {got} elements, expected {expected}"
            )
        if mode == "long" and not fused:
            machine.charge_compute(r, "unpack", got, costs.unpack, working_set=n)
    machine.barrier()
    return new_parts
