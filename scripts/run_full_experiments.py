#!/usr/bin/env python3
"""Run every experiment at the paper's full problem sizes and dump the
paper-vs-measured tables to stdout.  This is the source of EXPERIMENTS.md's
"executed at paper scale" numbers.

Run:  python scripts/run_full_experiments.py | tee full_results.txt
(takes tens of minutes: the largest runs sort 32M keys in simulation)
"""

import sys
import time

from repro.harness.cli import main as cli_main
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import format_result

ORDER = [
    "table5.1",
    "table5.2",
    "figure5.3",
    "figure5.4",
    "table5.3",
    "table5.4",
    "figure5.7",
    "figure5.8",
    "comm-counts",
    "remap-strategies",
    "bitonic-min",
    "local-compute",
]


def main() -> int:
    for ident in ORDER:
        t0 = time.time()
        result = run_experiment(ident, full=True)
        print(format_result(result))
        print(f"[{ident} took {time.time() - t0:.0f}s wall]\n", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
