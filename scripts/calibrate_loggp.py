#!/usr/bin/env python3
"""Calibrate the service planner's host profile.

Usage::

    PYTHONPATH=src python scripts/calibrate_loggp.py [--out PROFILE.json]
        [--keys 262144] [--rounds 64] [--quick]

Measures, on the machine actually running the sorts:

* **per-element compute rates** — the NumPy kernels the SPMD sort spends
  its time in (radix pass, two-way merge, pack/unpack gathers, the fused
  permutation-composed pack, address computation);
* **per-backend LogGP parameters** — a 2-rank pingpong per backend fits
  the per-message overhead ``o`` (y-intercept) and per-byte gap ``G``
  (slope); ``L`` and ``g`` are set to ``o`` (on shared memory the wire
  latency and the gap are not separable from the overhead at this
  granularity, and the closed forms price long messages by ``o`` + ``G``
  anyway);
* **serving fixed costs** — world spawn per rank, warm job
  dispatch/collect overhead, and shard-shipping bandwidth through the
  procs job pipe;
* **disk lane** — sequential write and read bandwidth plus fsync
  latency, measured through the same temp-file path the out-of-core
  external sort spills through.  These fields are the planner's
  *evidence* that the external regime can be priced: without them the
  planner never auto-chooses it (forced or budget-degraded requests
  still run, priced with conservative defaults).

The result is persisted as JSON (schema ``repro-bitonic-profile/3``) and
loaded with :meth:`repro.service.HostProfile.load`; hand it to the CLI
via ``repro-bitonic serve --profile PROFILE.json`` or to a
:class:`repro.service.Planner` directly.  See docs/SERVING.md.
"""

import argparse
import sys
import time

import numpy as np

from repro.localsort.merges import merge_sorted
from repro.localsort.radix import num_passes, radix_sort
from repro.runtime.driver import spawn_world
from repro.service.jobs import echo_nbytes_job, noop_job, pingpong_job
from repro.service.profile import BackendCosts, HostProfile, _usable_cpus


def _best_of(fn, reps=5):
    """Best-of-``reps`` wall seconds for one call of ``fn`` (the minimum
    is the least-disturbed measurement on a noisy shared host)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_compute(n, reps):
    """Per-element µs of the sort's NumPy kernels at working-set ``n``."""
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 2**31, n, dtype=np.uint32)
    half_a = np.sort(keys[: n // 2])
    half_b = np.sort(keys[n // 2 :])
    perm = rng.permutation(n)
    idx32 = perm.astype(np.int32)

    passes = num_passes(32, 8)
    radix_s = _best_of(lambda: radix_sort(keys), reps)
    merge_s = _best_of(lambda: merge_sorted(half_a, half_b), reps)
    pack_s = _best_of(lambda: keys[idx32], reps)  # gather into send order
    unpack_s = _best_of(lambda: keys.copy(), reps)  # contiguous placement
    # The fused path composes the sort permutation with the gather index
    # once, then does a single gather — its marginal per-element cost is
    # one int gather plus one key gather.
    fused_s = _best_of(lambda: keys[perm[idx32]], reps) / 2.0
    addr_s = _best_of(lambda: (perm >> 3) & 0x7, reps)

    return {
        "radix_pass_us": radix_s / passes / n * 1e6,
        "merge_us": merge_s / n * 1e6,
        "pack_us": pack_s / n * 1e6,
        "unpack_us": unpack_s / n * 1e6,
        "fused_pack_us": fused_s / n * 1e6,
        "address_us": addr_s / n * 1e6,
    }


def calibrate_disk(nbytes, reps):
    """Sequential disk write/read bandwidth (bytes/s) and fsync latency
    (s), measured through the spill tier's own directory and file idiom
    (``tofile``/``fromfile`` on the external sort's default spill root's
    parent, so the numbers reflect the filesystem spills actually hit)."""
    import os
    import tempfile

    from repro.extsort import default_spill_root

    root = os.path.dirname(default_spill_root())
    payload = np.arange(nbytes // 4, dtype=np.uint32)
    fd, path = tempfile.mkstemp(prefix="rxcal_", suffix=".bin", dir=root)
    os.close(fd)
    try:
        def write():
            payload.tofile(path)
            # Count the flush: spilled runs are durably on disk before
            # the merge reads them back, so the priced bandwidth must be
            # through-the-page-cache, not into it.
            fd = os.open(path, os.O_WRONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

        write_s = _best_of(write, reps)
        read_s = _best_of(lambda: np.fromfile(path, dtype=np.uint32), reps)

        def fsync_only():
            fd = os.open(path, os.O_WRONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

        fsync_s = _best_of(fsync_only, reps)
    finally:
        os.unlink(path)
    return {
        "disk_write_bytes_per_s": round(payload.nbytes / max(write_s, 1e-9), 0),
        "disk_read_bytes_per_s": round(payload.nbytes / max(read_s, 1e-9), 0),
        "fsync_s": round(fsync_s, 7),
    }


def calibrate_backend(backend, rounds, reps):
    """LogGP o/G plus the serving fixed costs for one SPMD backend."""
    # Spawn cost: a fresh 2-rank world, timed end to end (per rank).
    t0 = time.perf_counter()
    world = spawn_world(2, backend=backend)
    world.run(noop_job)  # the first job completes the warm-up
    spawn_s = (time.perf_counter() - t0) / 2

    # Warm job overhead: dispatch + collect of a no-op on the warm world.
    job_s = _best_of(lambda: world.run(noop_job), reps)

    # Pingpong: seconds per round at two payload sizes; the slope is G
    # (per byte), the intercept 2o (one send + one recv overhead each
    # way).  Runs inside the world so both backends use their real
    # sendrecv path.  The world has exactly 2 ranks — required, the
    # procs sendrecv is a matched world-wide step.
    small, large = 1 << 10, 1 << 18
    t_small = min(world.run(pingpong_job, rank_args=[(small, rounds)] * 2))
    t_large = min(world.run(pingpong_job, rank_args=[(large, rounds)] * 2))
    G_us = max((t_large - t_small) / (large - small) * 1e6, 1e-7)
    o_us = max((t_small * 1e6 - small * G_us) / 2.0, 1.0)

    # Shard shipping: payload bytes/second through the job pipe (procs
    # pickles the shards across; threads passes references, so the
    # measured time is pure dispatch and the bandwidth is effectively
    # infinite — keep it finite to stay JSON-serializable).
    payload = np.zeros(1 << 20, dtype=np.uint32)
    ship_s = max(_best_of(lambda: world.run(
        echo_nbytes_job, rank_args=[(payload,)] * 2), reps) - job_s, 1e-9)
    ship_bps = payload.nbytes * 2 / ship_s  # both ranks receive a copy
    world.close()

    return BackendCosts(
        L=round(o_us, 3),
        o=round(o_us, 3),
        g=round(o_us, 3),
        G=round(G_us, 7),
        spawn_per_rank_s=round(spawn_s, 6),
        job_overhead_s=round(job_s, 6),
        ship_bytes_per_s=round(min(ship_bps, 1e12), 0),
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure this host's LogGP + compute profile for the "
                    "sort service planner."
    )
    parser.add_argument("--out", default="loggp_profile.json",
                        help="output profile JSON path")
    parser.add_argument("--keys", type=int, default=1 << 18,
                        help="working-set size for the compute kernels")
    parser.add_argument("--rounds", type=int, default=64,
                        help="pingpong rounds per payload size")
    parser.add_argument("--reps", type=int, default=5,
                        help="best-of repetitions per measurement")
    parser.add_argument("--quick", action="store_true",
                        help="small working set, few rounds (CI smoke)")
    args = parser.parse_args(argv)
    if args.quick:
        args.keys, args.rounds, args.reps = 1 << 14, 8, 2

    print(f"calibrating compute kernels at n={args.keys:,} ...")
    compute = calibrate_compute(args.keys, args.reps)
    for name, us in compute.items():
        print(f"  {name:<16} {us:9.5f} us/element")

    disk_bytes = 1 << 22 if args.quick else 1 << 26
    print(f"calibrating disk lane ({disk_bytes >> 20} MiB sequential) ...")
    disk = calibrate_disk(disk_bytes, args.reps)
    print(f"  write={disk['disk_write_bytes_per_s'] / 1e6:.0f} MB/s  "
          f"read={disk['disk_read_bytes_per_s'] / 1e6:.0f} MB/s  "
          f"fsync={disk['fsync_s'] * 1e3:.2f} ms")

    backends = {}
    for backend in ("threads", "procs"):
        print(f"calibrating {backend} backend ...")
        costs = calibrate_backend(backend, args.rounds, args.reps)
        backends[backend] = costs
        print(f"  o={costs.o} us  G={costs.G} us/B  "
              f"spawn={costs.spawn_per_rank_s * 1e3:.2f} ms/rank  "
              f"job={costs.job_overhead_s * 1e3:.2f} ms  "
              f"ship={costs.ship_bytes_per_s / 1e9:.2f} GB/s")

    profile = HostProfile(
        cpus=_usable_cpus(),
        backends=backends,
        source="calibrated",
        **compute,
        **disk,
    )
    profile.save(args.out)
    print(f"profile written to {args.out} ({profile.cpus} usable cores)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
